//! Candidate blocking for the string feature.
//!
//! The dense `Ml` matrix costs `O(n·m)` Levenshtein computations — fine at
//! benchmark scale, prohibitive at the paper's full 100k×100k. Classical
//! entity-resolution *blocking* fixes this: an inverted index over name
//! tokens and character trigrams proposes candidate pairs, and the exact
//! Levenshtein ratio is computed only for them; non-candidates score 0.
//!
//! Trigram indexing keeps recall high under typos and morphology (two
//! names sharing no whole token still share most trigrams), which is what
//! the mono-lingual and close-lingual regimes need. Names in disjoint
//! scripts share nothing and are — correctly — never candidates.

use crate::levenshtein::levenshtein_ratio;
use crate::matrix::SimilarityMatrix;
use ceaff_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Blocking configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockingConfig {
    /// Minimum number of shared index keys (tokens + trigrams) for a pair
    /// to become a candidate.
    pub min_shared_keys: usize,
    /// Index whole lowercase tokens.
    pub index_tokens: bool,
    /// Index character trigrams of each token (catches typos/morphology).
    pub index_trigrams: bool,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        Self {
            min_shared_keys: 2,
            index_tokens: true,
            index_trigrams: true,
        }
    }
}

/// Statistics of one blocked similarity computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockingStats {
    /// Candidate pairs actually scored.
    pub pairs_scored: usize,
    /// Full cross product `n·m` for comparison.
    pub pairs_total: usize,
}

impl BlockingStats {
    /// Fraction of the cross product that was scored. Guards the
    /// zero-candidate case (`pairs_total == 0`, i.e. an empty source or
    /// target side) by returning `0.0` instead of dividing by zero.
    pub fn scored_fraction(&self) -> f64 {
        if self.pairs_total == 0 {
            return 0.0;
        }
        self.pairs_scored as f64 / self.pairs_total as f64
    }
}

/// The candidate structure blocking proposes: for every source row, the
/// ascending-sorted column indices that survived the shared-key filter
/// (capped at `k` per row by shared-key count, ties toward the lower
/// column). Every feature of one run scores exactly this structure, so
/// their [`SparseTopK`](crate::store::SparseTopK) stores describe the
/// same candidate pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateSet {
    targets: usize,
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
}

impl CandidateSet {
    /// Number of source rows.
    pub fn sources(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of target columns.
    pub fn targets(&self) -> usize {
        self.targets
    }

    /// Candidate columns of row `i`, ascending.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.cols[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Total number of candidate pairs.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether no pair survived blocking.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Whether `(i, j)` is a candidate pair.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.row(i).binary_search(&(j as u32)).is_ok()
    }

    /// Blocking statistics of this candidate set.
    pub fn stats(&self) -> BlockingStats {
        BlockingStats {
            pairs_scored: self.len(),
            pairs_total: self.sources() * self.targets,
        }
    }

    /// Fraction of `gold` pairs that survived blocking — the recall
    /// ceiling of every downstream stage (a dropped gold pair can never
    /// be matched). Returns `1.0` for an empty gold set.
    pub fn recall_of(&self, gold: &[(usize, usize)]) -> f64 {
        if gold.is_empty() {
            return 1.0;
        }
        let hit = gold.iter().filter(|&&(i, j)| self.contains(i, j)).count();
        hit as f64 / gold.len() as f64
    }

    /// Assemble a candidate set from per-row column lists (each ascending,
    /// exactly as [`TargetIndex::candidate_row`] produces them). This is
    /// the constructor the incremental path uses after patching only the
    /// dirty rows; the layout is identical to [`build_candidates`] run on
    /// the same rows.
    pub fn from_rows(targets: usize, rows: Vec<Vec<u32>>) -> Self {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut cols = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        row_ptr.push(0);
        for row in &rows {
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row not ascending");
            cols.extend_from_slice(row);
            row_ptr.push(cols.len());
        }
        CandidateSet {
            targets,
            row_ptr,
            cols,
        }
    }
}

/// An inverted index over target names, reusable across source rows.
///
/// [`build_candidates`] builds one per call; the incremental path keeps
/// rebuilding it per delta (cheap, `O(targets · keys)`) and recomputes
/// [`candidate_row`](TargetIndex::candidate_row) only for dirty rows —
/// the per-row logic is exactly the one `build_candidates` uses, so a
/// patched candidate set is bitwise-identical to a fresh one.
#[derive(Debug, Clone)]
pub struct TargetIndex {
    index: HashMap<String, Vec<u32>>,
    targets: usize,
    cfg: BlockingConfig,
}

impl TargetIndex {
    /// Index `targets` under `cfg`.
    pub fn build<T: AsRef<str>>(targets: &[T], cfg: &BlockingConfig) -> Self {
        assert!(
            cfg.index_tokens || cfg.index_trigrams,
            "blocking needs at least one key kind enabled"
        );
        let mut index: HashMap<String, Vec<u32>> = HashMap::new();
        for (j, t) in targets.iter().enumerate() {
            for key in keys_of(t.as_ref(), cfg) {
                index.entry(key).or_default().push(j as u32);
            }
        }
        Self {
            index,
            targets: targets.len(),
            cfg: *cfg,
        }
    }

    /// Number of indexed target columns.
    pub fn targets(&self) -> usize {
        self.targets
    }

    /// The candidate columns for one source name: targets sharing at least
    /// `min_shared_keys` keys, ranked (most shared keys first, ties toward
    /// the lower column), truncated to `k`, returned ascending.
    ///
    /// Deterministic for a given index regardless of thread count.
    pub fn candidate_row(&self, source: &str, k: usize) -> Vec<u32> {
        let mut shared: HashMap<u32, usize> = HashMap::new();
        for key in keys_of(source, &self.cfg) {
            if let Some(posting) = self.index.get(&key) {
                for &j in posting {
                    *shared.entry(j).or_insert(0) += 1;
                }
            }
        }
        let mut ranked: Vec<(u32, usize)> = shared
            .into_iter()
            .filter(|&(_, count)| count >= self.cfg.min_shared_keys)
            .collect();
        // HashMap iteration order is arbitrary; the sort below makes the
        // kept set deterministic: most shared keys first, ties toward the
        // lower column.
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        let mut cols: Vec<u32> = ranked.into_iter().map(|(j, _)| j).collect();
        cols.sort_unstable();
        cols
    }
}

/// Build the candidate set for `sources × targets` under `cfg`, keeping
/// at most `k` candidates per row (ranked by shared-key count, ties
/// toward the lower column). Rows fan out across the pool; each row's
/// ranking is sequential, so the set is identical at any thread count.
pub fn build_candidates<S: AsRef<str> + Sync, T: AsRef<str> + Sync>(
    sources: &[S],
    targets: &[T],
    cfg: &BlockingConfig,
    k: usize,
) -> CandidateSet {
    assert!(k > 0, "blocking needs k >= 1");
    let index = TargetIndex::build(targets, cfg);
    let n = sources.len();
    let row_of = |i: usize| -> Vec<u32> { index.candidate_row(sources[i].as_ref(), k) };
    let rows: Vec<Vec<u32>> = if n < 64 {
        (0..n).map(row_of).collect()
    } else {
        ceaff_parallel::par_map(n, 16, row_of)
    };
    CandidateSet::from_rows(targets.len(), rows)
}

/// The blocking keys of one name under `cfg`: lowercase tokens and/or
/// character trigrams, sorted and deduplicated. Public so the incremental
/// path can tell which source rows share a key with an edited target name.
pub fn keys_of(name: &str, cfg: &BlockingConfig) -> Vec<String> {
    let mut keys = Vec::new();
    for token in name.split(|c: char| !c.is_alphanumeric()) {
        if token.is_empty() {
            continue;
        }
        let token = token.to_lowercase();
        if cfg.index_trigrams {
            let chars: Vec<char> = token.chars().collect();
            if chars.len() >= 3 {
                for w in chars.windows(3) {
                    keys.push(w.iter().collect());
                }
            } else {
                keys.push(token.clone());
            }
        }
        if cfg.index_tokens {
            keys.push(token);
        }
    }
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Compute the string similarity matrix with inverted-index blocking.
///
/// Cells whose names share fewer than `min_shared_keys` index keys are
/// left at 0 (never scored). Returns the matrix and the blocking
/// statistics.
pub fn blocked_string_similarity_matrix<S: AsRef<str>, T: AsRef<str>>(
    sources: &[S],
    targets: &[T],
    cfg: &BlockingConfig,
) -> (SimilarityMatrix, BlockingStats) {
    assert!(
        cfg.index_tokens || cfg.index_trigrams,
        "blocking needs at least one key kind enabled"
    );
    // Inverted index over target names.
    let mut index: HashMap<String, Vec<u32>> = HashMap::new();
    for (j, t) in targets.iter().enumerate() {
        for key in keys_of(t.as_ref(), cfg) {
            index.entry(key).or_default().push(j as u32);
        }
    }

    let n = sources.len();
    let m = targets.len();
    let mut out = Matrix::zeros(n, m);
    let mut pairs_scored = 0usize;
    let mut shared: HashMap<u32, usize> = HashMap::new();
    for (i, s) in sources.iter().enumerate() {
        shared.clear();
        for key in keys_of(s.as_ref(), cfg) {
            if let Some(posting) = index.get(&key) {
                for &j in posting {
                    *shared.entry(j).or_insert(0) += 1;
                }
            }
        }
        for (&j, &count) in &shared {
            if count >= cfg.min_shared_keys {
                out[(i, j as usize)] = levenshtein_ratio(s.as_ref(), targets[j as usize].as_ref());
                pairs_scored += 1;
            }
        }
    }
    (
        SimilarityMatrix::new(out),
        BlockingStats {
            pairs_scored,
            pairs_total: n * m,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::string_similarity_matrix;

    #[test]
    fn keys_include_tokens_and_trigrams() {
        let cfg = BlockingConfig::default();
        let keys = keys_of("New York", &cfg);
        assert!(keys.contains(&"new".to_string()));
        assert!(keys.contains(&"york".to_string()));
        assert!(keys.contains(&"yor".to_string()));
        assert!(keys.contains(&"ork".to_string()));
    }

    #[test]
    fn scored_cells_match_the_dense_matrix() {
        let s = ["New York City", "Berlin", "Tokyo Tower"];
        let t = ["New York", "Berlin (city)", "Kyoto"];
        let (blocked, stats) = blocked_string_similarity_matrix(&s, &t, &BlockingConfig::default());
        let dense = string_similarity_matrix(&s, &t);
        for i in 0..3 {
            for j in 0..3 {
                let b = blocked.get(i, j);
                if b > 0.0 {
                    assert!((b - dense.get(i, j)).abs() < 1e-6, "cell ({i},{j})");
                }
            }
        }
        assert!(stats.pairs_scored < stats.pairs_total);
        assert!(stats.scored_fraction() < 1.0);
    }

    #[test]
    fn true_pairs_survive_blocking_under_typos() {
        // Typo'd counterparts still share most trigrams.
        let s = ["gavora benatil", "triskel dromvou"];
        let t = ["gavora bentail", "triskel dromvuo"];
        let (m, _) = blocked_string_similarity_matrix(&s, &t, &BlockingConfig::default());
        assert!(
            m.get(0, 0) > 0.7,
            "typo pair must be scored: {}",
            m.get(0, 0)
        );
        assert!(m.get(1, 1) > 0.7);
    }

    #[test]
    fn disjoint_scripts_are_never_candidates() {
        let s = ["gavora"];
        let t = ["佢丗凋"];
        let (m, stats) = blocked_string_similarity_matrix(&s, &t, &BlockingConfig::default());
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(stats.pairs_scored, 0);
    }

    #[test]
    fn blocking_prunes_most_of_a_realistic_cross_product() {
        let ds = ceaff_datagen::Preset::SrprsDbpWd.generate(0.2);
        let s: Vec<String> = ds
            .test_source_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let t: Vec<String> = ds
            .test_target_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let (m, stats) = blocked_string_similarity_matrix(&s, &t, &BlockingConfig::default());
        assert!(
            stats.scored_fraction() < 0.5,
            "blocking should prune over half the cross product: {}",
            stats.scored_fraction()
        );
        // And it must not lose the ground truth: the diagonal stays the
        // row maximum for almost all mono-lingual rows.
        let n = m.sources();
        let hits = (0..n).filter(|&i| m.row_argmax(i) == Some(i)).count();
        assert!(
            hits as f64 / n as f64 > 0.9,
            "blocked string H@1 collapsed: {}/{n}",
            hits
        );
    }

    #[test]
    fn scored_fraction_guards_the_zero_candidate_case() {
        let empty = BlockingStats {
            pairs_scored: 0,
            pairs_total: 0,
        };
        assert_eq!(empty.scored_fraction(), 0.0);
        let (_, stats) =
            blocked_string_similarity_matrix::<&str, &str>(&[], &[], &BlockingConfig::default());
        assert_eq!(stats.pairs_total, 0);
        assert_eq!(stats.scored_fraction(), 0.0);
    }

    #[test]
    fn candidate_set_matches_the_blocked_matrix_support() {
        let s = ["New York City", "Berlin", "Tokyo Tower"];
        let t = ["New York", "Berlin (city)", "Kyoto"];
        let cfg = BlockingConfig::default();
        let cands = build_candidates(&s, &t, &cfg, 10);
        let (blocked, stats) = blocked_string_similarity_matrix(&s, &t, &cfg);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    cands.contains(i, j),
                    blocked.get(i, j) > 0.0,
                    "cell ({i},{j})"
                );
            }
        }
        assert_eq!(cands.stats(), stats);
        assert_eq!(cands.len(), stats.pairs_scored);
    }

    #[test]
    fn candidate_cap_keeps_rows_bounded_and_deterministic() {
        let ds = ceaff_datagen::Preset::SrprsDbpWd.generate(0.2);
        let s: Vec<String> = ds
            .test_source_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let t: Vec<String> = ds
            .test_target_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let cfg = BlockingConfig::default();
        let capped = build_candidates(&s, &t, &cfg, 5);
        for i in 0..capped.sources() {
            assert!(capped.row(i).len() <= 5);
            assert!(capped.row(i).windows(2).all(|w| w[0] < w[1]));
        }
        // Identical at any thread count.
        let one = ceaff_parallel::with_threads(1, || build_candidates(&s, &t, &cfg, 5));
        let eight = ceaff_parallel::with_threads(8, || build_candidates(&s, &t, &cfg, 5));
        assert_eq!(one, capped);
        assert_eq!(eight, capped);
    }

    #[test]
    fn target_index_rows_match_build_candidates() {
        let s = ["New York City", "Berlin", "Tokyo Tower", "york minster"];
        let t = ["New York", "Berlin (city)", "Kyoto", "York"];
        let cfg = BlockingConfig::default();
        for k in [1, 3, 10] {
            let cands = build_candidates(&s, &t, &cfg, k);
            let index = TargetIndex::build(&t, &cfg);
            let rows: Vec<Vec<u32>> = (0..s.len()).map(|i| index.candidate_row(s[i], k)).collect();
            assert_eq!(CandidateSet::from_rows(t.len(), rows), cands, "k={k}");
        }
    }

    #[test]
    fn recall_counts_surviving_gold_pairs() {
        // Gold is the diagonal of a mono-lingual benchmark: blocking must
        // keep almost all of it.
        let ds = ceaff_datagen::Preset::SrprsDbpWd.generate(0.2);
        let s: Vec<String> = ds
            .test_source_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let t: Vec<String> = ds
            .test_target_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let cands = build_candidates(&s, &t, &BlockingConfig::default(), 50);
        let gold: Vec<(usize, usize)> = (0..s.len()).map(|i| (i, i)).collect();
        let recall = cands.recall_of(&gold);
        assert!(recall > 0.9, "blocking recall collapsed: {recall}");
        assert_eq!(cands.recall_of(&[]), 1.0, "empty gold set is vacuous");
    }

    #[test]
    #[should_panic(expected = "at least one key kind")]
    fn rejects_empty_key_config() {
        let cfg = BlockingConfig {
            index_tokens: false,
            index_trigrams: false,
            min_shared_keys: 1,
        };
        let _ = blocked_string_similarity_matrix(&["a"], &["b"], &cfg);
    }
}
