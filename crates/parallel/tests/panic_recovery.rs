//! The worker pool must survive panicking jobs: a panic inside one chunk
//! is re-raised on the caller, and the process-wide pool stays fully
//! usable for later dispatches — workers are persistent, so a poisoned or
//! wedged pool would silently serialize (or deadlock) everything after
//! the first bad job.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn pool_is_reusable_after_a_panicking_job() {
    ceaff_parallel::with_threads(4, || {
        // One chunk panics; the caller must observe that panic.
        let result = catch_unwind(AssertUnwindSafe(|| {
            ceaff_parallel::par_for(8, |chunk| {
                if chunk == 3 {
                    panic!("injected chunk failure");
                }
            });
        }));
        let payload = result.expect_err("the chunk panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload is the injected message");
        assert!(msg.contains("injected"), "{msg}");

        // The same pool then serves a healthy job correctly: every chunk
        // runs exactly once and the mapped output is complete and ordered.
        let ran = AtomicUsize::new(0);
        ceaff_parallel::par_for(64, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 64);

        let squares = ceaff_parallel::par_map(100, 4, |i| i * i);
        assert_eq!(squares, (0..100).map(|i| i * i).collect::<Vec<_>>());
    });
}

#[test]
fn repeated_panics_do_not_wedge_the_pool() {
    ceaff_parallel::with_threads(4, || {
        for round in 0..5 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                ceaff_parallel::par_for(16, |chunk| {
                    if chunk % 2 == 0 {
                        panic!("round {round}");
                    }
                });
            }));
            assert!(result.is_err(), "round {round} must re-raise the panic");
        }
        // After five consecutive failing jobs the pool still computes.
        let sum = ceaff_parallel::par_map(1000, 16, |i| i as u64)
            .into_iter()
            .sum::<u64>();
        assert_eq!(sum, 999 * 1000 / 2);
    });
}
