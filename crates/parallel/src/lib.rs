#![warn(missing_docs)]

//! # ceaff-parallel — the workspace's work pool
//!
//! A from-scratch, zero-dependency thread pool for CEAFF's dense kernels
//! and pairwise-similarity construction. The build environment vendors
//! every external crate, so instead of the real `rayon` this crate
//! provides the few primitives the workspace actually needs:
//!
//! * **Persistent workers.** A process-wide pool is spawned lazily on the
//!   first parallel dispatch; workers park on a condvar between jobs, so
//!   steady-state dispatch costs one mutex lock and a wakeup, not a
//!   thread spawn.
//! * **Chunked index-range scheduling.** A job is `Fn(chunk_index)`
//!   invoked once per chunk; chunks are claimed dynamically from an
//!   atomic cursor for load balance.
//! * **Deterministic fixed-chunk partitioning.** *Which indices form a
//!   chunk* is decided by the caller from the problem size alone — never
//!   from the thread count — and every chunk writes a disjoint output
//!   range. Results are therefore bitwise-identical for any thread count,
//!   including the sequential fallback. See `DESIGN.md` ("Scheduling
//!   model") for why this pins f32 accumulation order.
//!
//! ## Thread-count control
//!
//! The default width is `CEAFF_THREADS` (if set and valid) or the
//! machine's available parallelism. [`set_default_threads`] overrides it
//! process-wide (the CLI's `--threads` flag); [`with_threads`] overrides
//! it for a scope on the current thread — the hook the determinism tests
//! use to run the same kernel at 1, 2 and 8 threads in one process.
//!
//! ```
//! use ceaff_parallel::{par_chunks_mut, with_threads};
//!
//! let mut data = vec![0u64; 1024];
//! with_threads(4, || {
//!     par_chunks_mut(&mut data, 128, |chunk_idx, chunk| {
//!         for (i, v) in chunk.iter_mut().enumerate() {
//!             *v = (chunk_idx * 128 + i) as u64;
//!         }
//!     });
//! });
//! assert_eq!(data[513], 513);
//! ```

mod pool;

use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A cooperative cancellation probe: returns `true` once the dispatching
/// scope wants in-flight kernels abandoned (deadline passed, cancel
/// requested). Checked at chunk granularity by the pool.
pub type CancelProbe = Arc<dyn Fn() -> bool + Send + Sync>;

thread_local! {
    /// Scoped cancel probe installed by [`install_cancel_probe`]. Captured
    /// from the *dispatching* thread at `par_for` time and carried inside
    /// the job, because pool workers are separate OS threads that never
    /// see this thread-local.
    static CANCEL_PROBE: RefCell<Option<CancelProbe>> = const { RefCell::new(None) };
}

/// Install `probe` as the cancel probe for every parallel region
/// dispatched from this thread until the returned guard drops. Once the
/// probe returns `true`, kernels stop executing chunk bodies and return
/// early with **partially-written output** — callers own discarding the
/// result. With no probe installed (the default) dispatch behaviour is
/// bit-for-bit identical to before this hook existed.
#[must_use = "the probe is uninstalled when the guard drops"]
pub fn install_cancel_probe(probe: CancelProbe) -> CancelProbeGuard {
    let prev = CANCEL_PROBE.with(|cell| cell.replace(Some(probe)));
    CancelProbeGuard { prev }
}

/// Restores the previously-installed probe (if any) on drop; returned by
/// [`install_cancel_probe`]. Nestable, innermost wins.
pub struct CancelProbeGuard {
    prev: Option<CancelProbe>,
}

impl Drop for CancelProbeGuard {
    fn drop(&mut self) {
        CANCEL_PROBE.with(|cell| cell.replace(self.prev.take()));
    }
}

/// Whether this thread's installed cancel probe (if any) has fired.
/// Callers use this between kernel launches to decide whether the buffers
/// they just filled are trustworthy.
pub fn cancel_probe_fired() -> bool {
    CANCEL_PROBE.with(|cell| cell.borrow().as_ref().is_some_and(|probe| probe()))
}

/// Configuration for the pool, resolved from the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of OS threads a parallel region may use (including the
    /// calling thread). `1` disables parallelism entirely.
    pub threads: usize,
}

impl ParallelConfig {
    /// Resolve from `CEAFF_THREADS`, falling back to the machine's
    /// available parallelism. Invalid or zero values mean "auto".
    pub fn from_env() -> Self {
        let threads = std::env::var("CEAFF_THREADS")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(available_parallelism);
        Self {
            threads: threads.clamp(1, pool::MAX_THREADS),
        }
    }

    /// Install this configuration as the process-wide default.
    pub fn install(self) {
        set_default_threads(self.threads);
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Process-wide default width; 0 = not yet resolved.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The process-wide default number of threads (resolving `CEAFF_THREADS`
/// on first call).
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => {
            let resolved = ParallelConfig::from_env().threads;
            // Racing first calls resolve to the same value; keep whichever
            // store wins.
            let _ =
                DEFAULT_THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
            DEFAULT_THREADS.load(Ordering::Relaxed)
        }
        n => n,
    }
}

/// Set the process-wide default number of threads (e.g. from a `--threads`
/// CLI flag). Clamped to `[1, 256]`. Takes effect for every subsequent
/// parallel region without an active [`with_threads`] override.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads.clamp(1, pool::MAX_THREADS), Ordering::Relaxed);
}

/// The width the *next* parallel region dispatched from this thread will
/// use: the innermost [`with_threads`] override, or the process default.
pub fn current_threads() -> usize {
    OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(default_threads)
        .clamp(1, pool::MAX_THREADS)
}

/// Run `f` with every parallel region dispatched from this thread limited
/// to exactly `threads` OS threads. Nestable; the innermost scope wins.
/// The pool grows on demand, so a request wider than the machine still
/// runs that many OS threads (they timeslice) — which is precisely what
/// the determinism suite wants to exercise.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|cell| cell.replace(Some(threads.clamp(1, pool::MAX_THREADS))));
    let _restore = Restore(prev);
    f()
}

/// Whether splitting `len` items into fixed `chunk_size`-element chunks
/// can engage more than one thread right now: more than one chunk *and* a
/// current width above one. The partition — and therefore every result —
/// is identical either way; this is purely a "skip the dispatch
/// bookkeeping" gate for hot callers (kernels, benchmarks) that branch to
/// a plain sequential loop, or refuse to report a parallel speedup, when
/// no real parallelism can happen.
pub fn would_parallelize(len: usize, chunk_size: usize) -> bool {
    current_threads() > 1 && len.div_ceil(chunk_size.max(1)) > 1
}

/// Run `body(chunk_index)` for every index in `0..chunks` across
/// [`current_threads`] OS threads. The chunk set is the caller's fixed
/// partition of the problem; execution order across chunks is unspecified,
/// so bodies must write disjoint data (each chunk owns its output range).
pub fn par_for(chunks: usize, body: impl Fn(usize) + Sync) {
    let probe = CANCEL_PROBE.with(|cell| cell.borrow().clone());
    pool::execute(&body, chunks, current_threads(), probe);
}

/// Split `data` into consecutive `chunk_size`-element chunks (the last may
/// be shorter) and run `body(chunk_index, chunk)` for each in parallel.
///
/// The partition depends only on `data.len()` and `chunk_size`, never on
/// the thread count — the crate's determinism contract.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_size: usize,
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    let chunk_size = chunk_size.max(1);
    let len = data.len();
    let chunks = len.div_ceil(chunk_size);
    let base = SendPtr(data.as_mut_ptr());
    par_for(chunks, |c| {
        let start = c * chunk_size;
        let end = (start + chunk_size).min(len);
        // SAFETY: chunk index ranges `[start, end)` are pairwise disjoint
        // and within `data`, so each invocation gets an exclusive slice;
        // the borrow of `data` outlives the dispatch (par_for blocks).
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.add(start), end - start) };
        body(c, chunk);
    });
}

/// Shared-slice variant of [`par_chunks_mut`].
pub fn par_chunks<T: Sync>(data: &[T], chunk_size: usize, body: impl Fn(usize, &[T]) + Sync) {
    let chunk_size = chunk_size.max(1);
    let len = data.len();
    let chunks = len.div_ceil(chunk_size);
    par_for(chunks, |c| {
        let start = c * chunk_size;
        let end = (start + chunk_size).min(len);
        body(c, &data[start..end]);
    });
}

/// Split `0..len` into consecutive `grain`-sized index ranges and run
/// `body(range)` for each in parallel. Same partition contract as
/// [`par_chunks_mut`].
pub fn par_range(len: usize, grain: usize, body: impl Fn(Range<usize>) + Sync) {
    let grain = grain.max(1);
    let chunks = len.div_ceil(grain);
    par_for(chunks, |c| {
        let start = c * grain;
        body(start..(start + grain).min(len));
    });
}

/// Compute `f(i)` for every `i in 0..n` in parallel and collect the
/// results in index order. Per-index outputs land in their own slot, so
/// the result is identical for any thread count.
///
/// If an installed cancel probe fires mid-build, the chunks the pool
/// skipped leave their slots at `T::default()` — the vector is then
/// partially-written garbage that the caller owns discarding (poll
/// [`cancel_probe_fired`] after the call), exactly as with the in-place
/// kernels. With no probe, or an unfired one, every slot is computed.
pub fn par_map<T: Send + Default>(n: usize, grain: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    par_chunks_mut(&mut out, grain.max(1), |c, chunk| {
        let start = c * grain.max(1);
        for (off, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(start + off));
        }
    });
    out.into_iter()
        .map(|slot| slot.unwrap_or_default())
        .collect()
}

/// A raw pointer that may cross threads (the chunks it hands out are
/// disjoint, see [`par_chunks_mut`]). Closures must capture the wrapper,
/// not the field, so offsetting goes through a method.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    /// Same contract as `pointer::add`: `offset` must stay within the
    /// allocation the wrapped pointer came from.
    unsafe fn add(&self, offset: usize) -> *mut T {
        self.0.add(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_for_covers_every_chunk_exactly_once() {
        let hits: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
        with_threads(4, || {
            par_for(97, |c| {
                hits[c].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_mut_partitions_disjointly() {
        let mut data = vec![0usize; 1000];
        with_threads(8, || {
            par_chunks_mut(&mut data, 7, |c, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = c * 7 + i;
                }
            });
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i);
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut acc = vec![0.0f32; 513];
                par_chunks_mut(&mut acc, 64, |c, chunk| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        let idx = (c * 64 + i) as f32;
                        *v = (idx * 0.1).sin() + idx / 3.0;
                    }
                });
                acc
            })
        };
        let seq = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), seq, "thread count {threads} diverged");
        }
    }

    #[test]
    fn par_map_collects_in_index_order() {
        let out = with_threads(4, || par_map(100, 9, |i| i * i));
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn par_range_covers_len() {
        let sum = AtomicU64::new(0);
        with_threads(3, || {
            par_range(1000, 13, |r| {
                sum.fetch_add(r.map(|i| i as u64).sum(), Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn empty_and_single_chunk_inputs() {
        par_for(0, |_| panic!("must not run"));
        let mut empty: Vec<u8> = Vec::new();
        par_chunks_mut(&mut empty, 4, |_, _| panic!("must not run"));
        let mut one = vec![1u8];
        with_threads(8, || par_chunks_mut(&mut one, 4, |_, c| c[0] = 9));
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_for(32, |c| {
                    if c == 17 {
                        panic!("chunk 17 exploded");
                    }
                });
            });
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("chunk 17"), "unexpected payload: {msg}");
        // The pool must still be usable afterwards.
        let mut data = vec![0u8; 64];
        with_threads(4, || par_chunks_mut(&mut data, 8, |_, c| c.fill(1)));
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn would_parallelize_gates_on_width_and_chunk_count() {
        with_threads(1, || {
            assert!(!would_parallelize(10_000, 64), "width 1 never parallel");
        });
        with_threads(4, || {
            assert!(would_parallelize(10_000, 64));
            assert!(!would_parallelize(64, 64), "one chunk is sequential");
            assert!(!would_parallelize(0, 64), "empty input is sequential");
            // chunk_size 0 is clamped, not a division panic.
            assert!(would_parallelize(2, 0));
        });
    }

    #[test]
    fn with_threads_nests_and_restores() {
        let outer = current_threads();
        with_threads(2, || {
            assert_eq!(current_threads(), 2);
            with_threads(5, || assert_eq!(current_threads(), 5));
            assert_eq!(current_threads(), 2);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn config_clamps_to_at_least_one() {
        let cfg = ParallelConfig { threads: 0 };
        // install clamps; current_threads never reports 0.
        cfg.install();
        assert!(default_threads() >= 1);
        set_default_threads(available_parallelism());
    }

    #[test]
    fn cancel_probe_stops_chunk_execution() {
        use std::sync::atomic::AtomicBool;
        for threads in [1, 4] {
            let flag = Arc::new(AtomicBool::new(false));
            let probe_flag = flag.clone();
            let guard = install_cancel_probe(Arc::new(move || probe_flag.load(Ordering::Relaxed)));
            let executed = AtomicU64::new(0);
            with_threads(threads, || {
                par_for(1000, |c| {
                    if c == 0 {
                        flag.store(true, Ordering::Relaxed);
                    }
                    executed.fetch_add(1, Ordering::Relaxed);
                    // Give other participants time to observe the flag.
                    std::thread::yield_now();
                });
            });
            drop(guard);
            let ran = executed.load(Ordering::Relaxed);
            assert!(
                ran < 1000,
                "cancel must skip most chunks at {threads} threads, ran {ran}"
            );
            assert!(!cancel_probe_fired(), "guard must uninstall the probe");
        }
    }

    #[test]
    fn probe_guard_nests_and_restores() {
        assert!(!cancel_probe_fired());
        let g1 = install_cancel_probe(Arc::new(|| false));
        assert!(!cancel_probe_fired());
        {
            let _g2 = install_cancel_probe(Arc::new(|| true));
            assert!(cancel_probe_fired());
        }
        assert!(
            !cancel_probe_fired(),
            "inner guard must restore outer probe"
        );
        drop(g1);
        // With no probe the full chunk set runs.
        let hits = AtomicU64::new(0);
        with_threads(4, || {
            par_for(64, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn oversubscription_beyond_core_count_works() {
        // 8 threads on any machine, even single-core: workers timeslice.
        let mut data = vec![0u32; 4096];
        with_threads(8, || {
            par_chunks_mut(&mut data, 16, |c, chunk| chunk.fill(c as u32));
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize, i / 16);
        }
    }
}
