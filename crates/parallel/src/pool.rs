//! The worker pool: persistent threads, chunked index-range scheduling.
//!
//! One process-wide pool is created lazily on the first parallel dispatch
//! and lives until exit. Workers park on a condvar between jobs; a job is
//! a borrowed closure `Fn(usize)` invoked once per chunk index. Chunks are
//! claimed from a shared atomic cursor, so load-balancing is dynamic while
//! the *partitioning* (which indices form which chunk) is fixed by the
//! caller — the foundation of the crate's determinism guarantee.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard ceiling on pool size; protects against absurd `CEAFF_THREADS`
/// values and runaway `with_threads` requests.
pub(crate) const MAX_THREADS: usize = 256;

/// One dispatched parallel region.
///
/// `body` is a borrowed trait object whose lifetime has been erased; see
/// the safety argument on [`Pool::execute`] for why the raw pointer is
/// never dereferenced after `execute` returns.
struct JobCore {
    body: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed chunk index.
    cursor: AtomicUsize,
    /// Total number of chunks.
    chunks: usize,
    /// How many pool workers (beyond the caller) may participate.
    helpers: usize,
    /// Chunks not yet finished; the last finisher flips `done`.
    unfinished: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// First panic payload raised by a chunk body, if any.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Cooperative cancel probe captured from the dispatching thread.
    /// Once it fires, remaining chunks are claimed-and-skipped: the
    /// completion latch still reaches zero, but the bodies never run, so
    /// the kernel returns quickly with partially-written output that the
    /// caller must discard.
    probe: Option<crate::CancelProbe>,
    /// Set once any participant observed the probe firing; spares the
    /// other participants further probe calls.
    cancelled: AtomicBool,
}

// SAFETY: `body` points at a `Sync` closure, so invoking it from several
// threads is sound; the pointer itself is only shared, never mutated.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

impl JobCore {
    /// Whether the cancel probe (if any) has fired for this job.
    fn cancel_requested(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match &self.probe {
            Some(probe) if probe() => {
                self.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Claim and run chunks until the cursor is exhausted. Once the
    /// cancel probe fires, chunks are still claimed (the latch must reach
    /// zero for `wait` to return) but their bodies are skipped.
    fn run_chunks(&self) {
        loop {
            let c = self.cursor.fetch_add(1, Ordering::Relaxed);
            if c >= self.chunks {
                return;
            }
            if self.probe.is_none() || !self.cancel_requested() {
                // SAFETY: a chunk index below `chunks` can only be claimed
                // while `unfinished > 0`, and `Pool::execute` does not return
                // (ending the borrow of `body`) until `unfinished == 0`.
                let result =
                    std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*self.body)(c) }));
                if let Err(payload) = result {
                    let mut slot = self.panic.lock().unwrap();
                    slot.get_or_insert(payload);
                }
            }
            if self.unfinished.fetch_sub(1, Ordering::AcqRel) == 1 {
                *self.done.lock().unwrap() = true;
                self.done_cv.notify_all();
            }
        }
    }

    /// Block until every chunk has completed.
    fn wait(&self) {
        let mut finished = self.done.lock().unwrap();
        while !*finished {
            finished = self.done_cv.wait(finished).unwrap();
        }
    }
}

struct PoolState {
    /// The currently published job, tagged with its epoch.
    job: Option<(u64, Arc<JobCore>)>,
    epoch: u64,
    /// Number of worker threads spawned so far.
    spawned: usize,
}

/// The process-wide pool.
pub(crate) struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    fn get() -> &'static Pool {
        POOL.get_or_init(|| Pool {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                spawned: 0,
            }),
            work_cv: Condvar::new(),
        })
    }

    /// Park-and-serve loop of worker `idx`. Workers remember the last
    /// epoch they served so a spurious wakeup (or a job already drained by
    /// faster threads) costs nothing: claiming from an exhausted cursor
    /// touches only the atomic, never the erased closure.
    fn worker_loop(&'static self, idx: usize) {
        let mut last_epoch = 0u64;
        loop {
            let job = {
                let mut state = self.state.lock().unwrap();
                loop {
                    match &state.job {
                        Some((epoch, job)) if *epoch != last_epoch => {
                            last_epoch = *epoch;
                            break job.clone();
                        }
                        _ => state = self.work_cv.wait(state).unwrap(),
                    }
                }
            };
            if idx < job.helpers {
                job.run_chunks();
            }
        }
    }

    /// Run `body(chunk)` for every `chunk in 0..chunks` using up to
    /// `threads` OS threads (the caller plus `threads - 1` pool workers).
    ///
    /// With `threads <= 1` or `chunks <= 1` the body runs inline on the
    /// caller, in increasing chunk order, with zero synchronisation — the
    /// single-thread path is exactly the old sequential code.
    ///
    /// # Safety argument
    /// `body`'s lifetime is erased to publish it to the workers. This is
    /// sound because (a) a worker dereferences the pointer only after
    /// claiming a chunk index below `chunks`, (b) every claimed chunk is
    /// accounted for in `unfinished`, and (c) this function blocks until
    /// `unfinished` reaches zero before returning, so the borrow outlives
    /// every dereference. Panics inside chunks are caught, the latch is
    /// still released, and the first payload is re-raised on the caller.
    pub(crate) fn execute(
        body: &(dyn Fn(usize) + Sync),
        chunks: usize,
        threads: usize,
        probe: Option<crate::CancelProbe>,
    ) {
        if chunks == 0 {
            return;
        }
        if threads <= 1 || chunks <= 1 {
            match probe {
                // The probed sequential path can simply stop: nothing else
                // is waiting on a completion latch.
                Some(probe) => {
                    for c in 0..chunks {
                        if probe() {
                            return;
                        }
                        body(c);
                    }
                }
                None => {
                    for c in 0..chunks {
                        body(c);
                    }
                }
            }
            return;
        }
        let pool = Pool::get();
        let helpers = threads.min(MAX_THREADS).min(chunks) - 1;
        // SAFETY: lifetime erasure justified above — `execute` does not
        // return until all chunk executions have finished.
        let erased: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(body)
        };
        let job = Arc::new(JobCore {
            body: erased,
            cursor: AtomicUsize::new(0),
            chunks,
            helpers,
            unfinished: AtomicUsize::new(chunks),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
            probe,
            cancelled: AtomicBool::new(false),
        });
        {
            let mut state = pool.state.lock().unwrap();
            while state.spawned < helpers {
                let idx = state.spawned;
                std::thread::Builder::new()
                    .name(format!("ceaff-par-{idx}"))
                    .spawn(move || Pool::get().worker_loop(idx))
                    .expect("failed to spawn ceaff-parallel worker");
                state.spawned += 1;
            }
            state.epoch += 1;
            let epoch = state.epoch;
            state.job = Some((epoch, job.clone()));
            pool.work_cv.notify_all();
        }
        // The caller is a full participant — with a slow worker wakeup the
        // dispatch degrades gracefully towards sequential execution.
        job.run_chunks();
        job.wait();
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Entry point used by `lib.rs`.
pub(crate) fn execute(
    body: &(dyn Fn(usize) + Sync),
    chunks: usize,
    threads: usize,
    probe: Option<crate::CancelProbe>,
) {
    Pool::execute(body, chunks, threads, probe)
}
