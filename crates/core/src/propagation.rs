//! Training-free structural encoding by neighbourhood propagation — the
//! structural mode of the incremental (delta) pipeline.
//!
//! The paper's structural feature trains a GCN whose every epoch couples
//! all entities through shared weights and sampled negatives, so a single
//! edge edit invalidates the whole embedding table. This module provides a
//! *parameter-free* alternative with the locality the delta pipeline
//! needs: entity `i`'s layer-`l` vector depends only on the layer-`l−1`
//! vectors of `{i} ∪ N(i)` and on the degrees of those entities. An edit
//! therefore dirties exactly the entities within `layers` undirected hops
//! of the edited region, and [`crate::delta`] recomputes only those rows.
//!
//! The scheme is symmetrically-normalised mean propagation (the fixed
//! `D^{-1/2} (A+I) D^{-1/2}` operator of GCN folklore, without trained
//! weights): layer 0 is a deterministic hash of the entity *name*
//! (id-independent, so entity insertions that shift ids never dirty kept
//! rows), each subsequent layer sums `c_ij · H_{l-1}[j]` over
//! `j ∈ {i} ∪ N(i)` in ascending id order with
//! `c_ij = 1/√((d_i+1)(d_j+1))`, and every layer is L2-row-normalised.
//!
//! Every row is a pure function of (name, neighbour rows, degrees), and
//! the bulk encoder computes rows through the same per-row functions the
//! delta patcher calls — so a patched layer is bitwise-identical to a
//! fresh one at any thread count.

use ceaff_graph::{EntityId, KgPair, KnowledgeGraph};
use ceaff_tensor::{dot, Matrix};

use crate::gcn::GcnEncoder;

/// Rows per parallel work item in the bulk encoder.
const ROW_GRAIN: usize = 64;

/// FNV-1a hash of an entity name — the per-entity seed of layer 0.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 step: decorrelates successive draws from one seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// L2-normalise a row exactly like [`Matrix::l2_normalize_rows`] does:
/// `v / norm` with `norm = √(row · row)`, zero rows left untouched.
pub(crate) fn normalize_row(row: &mut [f32]) {
    let norm = dot(row, row).sqrt();
    if norm > 0.0 {
        for v in row.iter_mut() {
            *v /= norm;
        }
    }
}

/// The layer-0 row of an entity: `dim` pseudo-random values in `[-1, 1)`
/// seeded by the entity *name*, L2-normalised. Pure in the name, so kept
/// entities keep their row bit-for-bit across any delta.
pub fn seed_row(name: &str, dim: usize) -> Vec<f32> {
    let mut state = name_seed(name);
    let mut row: Vec<f32> = (0..dim)
        .map(|_| {
            let bits = splitmix64(&mut state) >> 40; // 24 high-quality bits
            (bits as f32 / (1u32 << 23) as f32) - 1.0
        })
        .collect();
    normalize_row(&mut row);
    row
}

/// One propagated row: `Σ c_ij · prev[j]` over `j ∈ {i} ∪ neighbors`
/// in ascending id order (`neighbors` must be sorted ascending, `i`
/// spliced at its position), L2-normalised. `degrees[j]` is the distinct
/// undirected neighbour count of `j`.
///
/// The delta patcher calls this for dirty rows with the *new* graph's
/// neighbour lists and the *patched* previous layer; the bulk encoder
/// below calls it for every row — one code path, bitwise-identical
/// results.
pub fn propagate_row(
    prev: &Matrix,
    i: usize,
    neighbors: &[EntityId],
    degrees: &[usize],
) -> Vec<f32> {
    let dim = prev.cols();
    let di = degrees[i] as f32;
    let mut row = vec![0.0f32; dim];
    let mut accumulate = |j: usize| {
        let c = 1.0 / ((di + 1.0) * (degrees[j] as f32 + 1.0)).sqrt();
        for (o, &v) in row.iter_mut().zip(prev.row(j)) {
            *o += c * v;
        }
    };
    // Members {i} ∪ N(i) in ascending id order: neighbours are sorted and
    // never contain i, so emit i at its ordered position.
    let mut self_emitted = false;
    for &n in neighbors {
        if !self_emitted && n.index() > i {
            accumulate(i);
            self_emitted = true;
        }
        accumulate(n.index());
    }
    if !self_emitted {
        accumulate(i);
    }
    normalize_row(&mut row);
    row
}

/// Sorted distinct undirected neighbour lists for every entity.
pub(crate) fn neighbor_lists(kg: &KnowledgeGraph) -> Vec<Vec<EntityId>> {
    kg.entity_ids().map(|e| kg.neighbors(e)).collect()
}

/// Assemble per-row results into a matrix (rows computed in parallel;
/// assembly order is deterministic, so the result is thread-count
/// invariant). Shared with the delta patcher.
pub(crate) fn matrix_from_par_rows(
    n: usize,
    dim: usize,
    row_of: impl Fn(usize) -> Vec<f32> + Sync,
) -> Matrix {
    let rows = ceaff_parallel::par_map(n, ROW_GRAIN, row_of);
    let mut m = Matrix::zeros(n, dim);
    for (i, row) in rows.iter().enumerate() {
        m.row_mut(i).copy_from_slice(row);
    }
    m
}

/// All propagation layers `[H₀, …, H_L]` of one graph (`L = layers`).
/// Each matrix is `num_entities × dim` with L2-normalised rows. Rows are
/// computed in parallel; every row is independent given the previous
/// layer, so the result is identical at any thread count.
pub fn propagate(kg: &KnowledgeGraph, dim: usize, layers: usize) -> Vec<Matrix> {
    let n = kg.num_entities();
    let neigh = neighbor_lists(kg);
    let degrees: Vec<usize> = neigh.iter().map(Vec::len).collect();
    let names: Vec<&str> = kg
        .entity_ids()
        .map(|e| kg.entity_name(e).expect("interned"))
        .collect();
    let mut out = Vec::with_capacity(layers + 1);
    out.push(matrix_from_par_rows(n, dim, |i| seed_row(names[i], dim)));
    for _ in 0..layers {
        let prev = out.last().expect("layer 0 pushed");
        let next = matrix_from_par_rows(n, dim, |i| propagate_row(prev, i, &neigh[i], &degrees));
        out.push(next);
    }
    out
}

/// Encode both graphs of a pair and package the final layers as a
/// [`GcnEncoder`] (empty loss curve — nothing is trained), so the
/// existing [`crate::features::StructuralFeature`] constructors apply
/// unchanged.
pub fn encode(pair: &KgPair, dim: usize, layers: usize) -> GcnEncoder {
    let zs = propagate(&pair.source, dim, layers)
        .pop()
        .expect("at least layer 0");
    let zt = propagate(&pair.target, dim, layers)
        .pop()
        .expect("at least layer 0");
    GcnEncoder {
        z_source: zs,
        z_target: zt,
        loss_curve: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        for i in 0..6 {
            kg.add_entity(&format!("e{i}"));
        }
        kg.add_fact("e0", "r", "e1");
        kg.add_fact("e1", "r", "e2");
        kg.add_fact("e2", "r", "e3");
        kg.add_fact("e3", "r", "e0");
        kg.add_fact("e4", "r", "e0");
        kg
    }

    #[test]
    fn seed_rows_are_deterministic_and_unit_norm() {
        let a = seed_row("Berlin", 32);
        let b = seed_row("Berlin", 32);
        assert_eq!(a, b);
        let n = dot(&a, &a).sqrt();
        assert!((n - 1.0).abs() < 1e-5, "norm {n}");
        assert_ne!(seed_row("Berlin", 32), seed_row("Paris", 32));
    }

    #[test]
    fn layers_have_unit_rows_and_right_shapes() {
        let kg = toy_graph();
        let layers = propagate(&kg, 16, 2);
        assert_eq!(layers.len(), 3);
        for m in &layers {
            assert_eq!(m.shape(), (6, 16));
            for r in 0..m.rows() {
                let n = m.row_norm(r);
                assert!((n - 1.0).abs() < 1e-5, "row {r} norm {n}");
            }
        }
    }

    #[test]
    fn propagation_is_thread_count_invariant() {
        let kg = toy_graph();
        let a = ceaff_parallel::with_threads(1, || propagate(&kg, 16, 2));
        let b = ceaff_parallel::with_threads(4, || propagate(&kg, 16, 2));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn bulk_rows_match_single_row_calls() {
        let kg = toy_graph();
        let layers = propagate(&kg, 8, 2);
        let neigh = neighbor_lists(&kg);
        let degrees: Vec<usize> = neigh.iter().map(Vec::len).collect();
        for l in 1..layers.len() {
            for (i, row_neigh) in neigh.iter().enumerate() {
                let fresh = propagate_row(&layers[l - 1], i, row_neigh, &degrees);
                assert_eq!(
                    layers[l].row(i),
                    &fresh[..],
                    "layer {l} row {i} differs from single-row recompute"
                );
            }
        }
    }

    #[test]
    fn isolated_entities_keep_their_seed_direction() {
        let kg = toy_graph();
        // e5 has no triples: its propagated row is c·H0[5] renormalised,
        // i.e. exactly its (already unit) seed row.
        let layers = propagate(&kg, 8, 1);
        let seed = seed_row("e5", 8);
        for (a, b) in layers[1].row(5).iter().zip(&seed) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
