//! Evaluation metrics (paper §VII-A).
//!
//! The paper's primary metric is **accuracy**: correctly aligned source
//! entities over all source entities (equivalent to Hits@1 when decisions
//! are independent). For the ranking-style evaluation of Table VI, Hits@k
//! and mean reciprocal rank (MRR) are computed from similarity matrices.
//!
//! Throughout, matrices and matchings are in *test order*: source `i`'s
//! ground-truth counterpart is target `i` (the construction of
//! [`ceaff_graph::KgPair::test_sources`] / `test_targets` guarantees this).

use crate::matching::Matching;
use ceaff_sim::{SimStore, SimilarityMatrix};

/// Accuracy of a matching against the diagonal ground truth: the number of
/// source entities matched to their true counterpart, divided by the total
/// number of source entities (`n_sources`, not just the matched ones —
/// unmatched sources count as wrong).
pub fn accuracy(matching: &Matching, n_sources: usize) -> f64 {
    if n_sources == 0 {
        return 0.0;
    }
    let correct = matching.pairs().iter().filter(|&&(i, j)| i == j).count();
    correct as f64 / n_sources as f64
}

/// Hits@k over a similarity matrix: the fraction of source rows whose
/// ground-truth target ranks within the top `k`.
pub fn hits_at_k(m: &SimilarityMatrix, k: usize) -> f64 {
    if m.sources() == 0 {
        return 0.0;
    }
    let hits = (0..m.sources())
        .filter(|&i| i < m.targets() && m.rank_of(i, i) <= k)
        .count();
    hits as f64 / m.sources() as f64
}

/// Mean reciprocal rank of the ground-truth target.
pub fn mrr(m: &SimilarityMatrix) -> f64 {
    if m.sources() == 0 {
        return 0.0;
    }
    let total: f64 = (0..m.sources())
        .map(|i| {
            if i < m.targets() {
                1.0 / m.rank_of(i, i) as f64
            } else {
                0.0
            }
        })
        .sum();
    total / m.sources() as f64
}

/// Precision / recall / F1 of a (possibly partial) matching against the
/// diagonal ground truth. With a full matching these all equal
/// [`accuracy`]; they diverge once [`crate::Matching::filter_by_threshold`]
/// abstains on low-confidence pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Correct matched pairs / all matched pairs.
    pub precision: f64,
    /// Correct matched pairs / all ground-truth pairs (`n_sources`).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Compute precision/recall/F1 against the diagonal ground truth.
pub fn precision_recall(matching: &Matching, n_sources: usize) -> PrecisionRecall {
    let correct = matching.pairs().iter().filter(|&&(i, j)| i == j).count() as f64;
    let matched = matching.len() as f64;
    let precision = if matched > 0.0 {
        correct / matched
    } else {
        0.0
    };
    let recall = if n_sources > 0 {
        correct / n_sources as f64
    } else {
        0.0
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    PrecisionRecall {
        precision,
        recall,
        f1,
    }
}

/// A bundle of the ranking metrics the paper reports in Table VI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingMetrics {
    /// Hits@1 (the accuracy of independent decisions).
    pub hits1: f64,
    /// Hits@10.
    pub hits10: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
}

/// Compute Hits@1/Hits@10/MRR in one pass.
pub fn ranking_metrics(m: &SimilarityMatrix) -> RankingMetrics {
    RankingMetrics {
        hits1: hits_at_k(m, 1),
        hits10: hits_at_k(m, 10),
        mrr: mrr(m),
    }
}

/// Hits@k over either store backend. The sparse arm ranks the ground-truth
/// cell against stored entries plus the implicit zeros
/// ([`ceaff_sim::SparseTopK::rank_of`]), so on a complete store it equals
/// the dense rank exactly; on a blocked store a truth pair pruned by the
/// candidate stage ranks behind every stored entry — blocking recall losses
/// show up in the metric instead of being silently forgiven.
pub fn hits_at_k_store(s: &SimStore, k: usize) -> f64 {
    if s.sources() == 0 {
        return 0.0;
    }
    let hits = (0..s.sources())
        .filter(|&i| i < s.targets() && s.rank_of(i, i) <= k)
        .count();
    hits as f64 / s.sources() as f64
}

/// Mean reciprocal rank over either store backend (see [`hits_at_k_store`]
/// for the sparse ranking semantics).
pub fn mrr_store(s: &SimStore) -> f64 {
    if s.sources() == 0 {
        return 0.0;
    }
    let total: f64 = (0..s.sources())
        .map(|i| {
            if i < s.targets() {
                1.0 / s.rank_of(i, i) as f64
            } else {
                0.0
            }
        })
        .sum();
    total / s.sources() as f64
}

/// Compute Hits@1/Hits@10/MRR through the store API. Dense stores
/// reproduce [`ranking_metrics`] exactly.
pub fn ranking_metrics_store(s: &SimStore) -> RankingMetrics {
    RankingMetrics {
        hits1: hits_at_k_store(s, 1),
        hits10: hits_at_k_store(s, 10),
        mrr: mrr_store(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_tensor::Matrix;

    #[test]
    fn accuracy_counts_diagonal_matches() {
        // (0,0) and (2,2) are correct; (1,2) is not.
        let m = Matching::from_pairs(vec![(0, 0), (1, 2), (2, 2)]);
        assert!((accuracy(&m, 3) - 2.0 / 3.0).abs() < 1e-9);
        // Unmatched sources lower the accuracy.
        let m = Matching::from_pairs(vec![(0, 0)]);
        assert!((accuracy(&m, 4) - 0.25).abs() < 1e-9);
        assert_eq!(accuracy(&Matching::from_pairs(vec![]), 0), 0.0);
    }

    fn toy_matrix() -> SimilarityMatrix {
        // Ground truth = diagonal. Row 0: truth ranked 1; row 1: ranked 2;
        // row 2: ranked 3.
        SimilarityMatrix::new(Matrix::from_rows(&[
            &[0.9, 0.1, 0.1],
            &[0.8, 0.5, 0.1],
            &[0.9, 0.8, 0.3],
        ]))
    }

    #[test]
    fn precision_recall_on_partial_matching() {
        // 2 matched (1 correct) out of 4 ground-truth pairs.
        let m = Matching::from_pairs(vec![(0, 0), (1, 2)]);
        let pr = precision_recall(&m, 4);
        assert!((pr.precision - 0.5).abs() < 1e-9);
        assert!((pr.recall - 0.25).abs() < 1e-9);
        assert!((pr.f1 - (2.0 * 0.5 * 0.25 / 0.75)).abs() < 1e-9);
        // Empty matching.
        let pr = precision_recall(&Matching::from_pairs(vec![]), 4);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.f1, 0.0);
        // Full correct matching: all three metrics coincide with accuracy.
        let m = Matching::from_pairs(vec![(0, 0), (1, 1)]);
        let pr = precision_recall(&m, 2);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.f1, 1.0);
    }

    #[test]
    fn hits_at_k_thresholds() {
        let m = toy_matrix();
        assert!((hits_at_k(&m, 1) - 1.0 / 3.0).abs() < 1e-9);
        assert!((hits_at_k(&m, 2) - 2.0 / 3.0).abs() < 1e-9);
        assert!((hits_at_k(&m, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mrr_matches_hand_computation() {
        let m = toy_matrix();
        let expect = (1.0 + 0.5 + 1.0 / 3.0) / 3.0;
        assert!((mrr(&m) - expect).abs() < 1e-9);
    }

    #[test]
    fn perfect_matrix_scores_one() {
        let m = SimilarityMatrix::new(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let r = ranking_metrics(&m);
        assert_eq!(r.hits1, 1.0);
        assert_eq!(r.hits10, 1.0);
        assert_eq!(r.mrr, 1.0);
    }

    #[test]
    fn empty_matrix_is_zero() {
        let m = SimilarityMatrix::zeros(0, 0);
        assert_eq!(hits_at_k(&m, 1), 0.0);
        assert_eq!(mrr(&m), 0.0);
    }

    #[test]
    fn store_metrics_match_dense_on_both_backends() {
        use ceaff_sim::SparseTopK;
        let m = toy_matrix();
        let dense = ranking_metrics(&m);
        assert_eq!(ranking_metrics_store(&SimStore::Dense(m.clone())), dense);
        // A complete sparse store ranks identically.
        let complete = SimStore::Sparse(SparseTopK::from_dense(&m, 3));
        assert_eq!(ranking_metrics_store(&complete), dense);
    }

    #[test]
    fn blocked_store_metrics_punish_pruned_truth() {
        use ceaff_sim::SparseTopK;
        // Row 1's truth cell (1,1)=0.5 survives a k=2 cut; row 2's truth
        // (2,2)=0.3 does not — it must rank behind both stored entries
        // *and* tie with the other implicit zero? No other zeros here:
        // rank = 1 + 2 stored greater = 3.
        let m = toy_matrix();
        let blocked = SimStore::Sparse(SparseTopK::from_dense(&m, 2));
        let r = ranking_metrics_store(&blocked);
        assert!((r.hits1 - 1.0 / 3.0).abs() < 1e-9);
        let expect_mrr = (1.0 + 0.5 + 1.0 / 3.0) / 3.0;
        assert!((r.mrr - expect_mrr).abs() < 1e-9);
    }
}
