//! Iterative (bootstrapped) CEAFF — an extension combining the paper's
//! framework with the self-training loop of its IPTransE/BootEA baselines
//! (§II, §VII-A): confident *collective* matches are promoted into the
//! seed alignment and the structural feature is retrained, for a fixed
//! number of rounds.
//!
//! Promotion uses the same one-to-one discipline as BootEA — but the
//! candidates come from the stable matching over the *fused* matrix, so a
//! promoted pair was already mutually preferred under all features
//! combined, which keeps the self-training noise low. Matches are promoted
//! when their fused score clears `threshold`.

use crate::features::StructuralFeature;
use crate::pipeline::{run_with_features, CeaffConfig, CeaffOutput, EaInput, FeatureSet};
use ceaff_graph::{EntityId, KgPair};
use serde::{Deserialize, Serialize};

/// Bootstrapping configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BootstrapConfig {
    /// Total rounds (1 = plain CEAFF, no promotion).
    pub rounds: usize,
    /// Minimum fused similarity (after per-feature preprocessing) for a
    /// collective match to be promoted into the seed set.
    pub threshold: f32,
    /// Cap on promotions per round as a fraction of the test set (promote
    /// the highest-scoring matches first). Guards against flooding the
    /// seed set with early noise.
    pub max_promotions_per_round: f64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            rounds: 3,
            threshold: 0.75,
            max_promotions_per_round: 0.3,
        }
    }
}

/// Result of a bootstrapped run.
#[derive(Debug)]
pub struct BootstrapOutput {
    /// The final round's pipeline output.
    pub final_output: CeaffOutput,
    /// Accuracy after each round (diagnostic).
    pub accuracy_per_round: Vec<f64>,
    /// Number of pairs promoted after each round (the last round promotes
    /// nothing).
    pub promotions_per_round: Vec<usize>,
}

/// Run CEAFF with bootstrapped seed augmentation.
///
/// Each round: compute features on a pair whose seed set is augmented with
/// the previous round's confident matches, run the full pipeline, promote.
/// The *evaluation* is always against the original test set.
pub fn run_bootstrapped(
    input: &EaInput<'_>,
    cfg: &CeaffConfig,
    boot: &BootstrapConfig,
) -> BootstrapOutput {
    assert!(boot.rounds >= 1, "need at least one round");
    let base_pair = input.pair;
    let test_sources = base_pair.test_sources();
    let test_targets = base_pair.test_targets();

    let mut extra_seeds: Vec<(EntityId, EntityId)> = Vec::new();
    let mut accuracy_per_round = Vec::with_capacity(boot.rounds);
    let mut promotions_per_round = Vec::with_capacity(boot.rounds);
    let mut last_output: Option<CeaffOutput> = None;
    // Semantic and string features depend only on names, not on seeds:
    // compute them once and retrain only the structural feature per round.
    let mut carried: Option<FeatureSet> = None;

    for round in 0..boot.rounds {
        // Build the augmented problem: same graphs and test split, seeds
        // extended with promotions. The test pairs stay identical so the
        // similarity matrices keep their index space.
        let augmented = augment_seeds(base_pair, &extra_seeds);
        let aug_input = EaInput {
            pair: &augmented,
            source_embedder: input.source_embedder,
            target_embedder: input.target_embedder,
        };
        let features = match carried.take() {
            None => FeatureSet::compute(&aug_input, cfg),
            Some(mut prev) => {
                if cfg.use_structural {
                    prev.structural =
                        Some(StructuralFeature::compute(&augmented, &cfg.gcn));
                }
                prev
            }
        };
        let output = run_with_features(&augmented, &features, cfg);
        carried = Some(features);
        accuracy_per_round.push(output.accuracy);

        if round + 1 < boot.rounds {
            // Promote confident one-to-one matches not already promoted.
            let already: std::collections::HashSet<EntityId> =
                extra_seeds.iter().map(|&(u, _)| u).collect();
            let mut candidates: Vec<(f32, EntityId, EntityId)> = output
                .matching
                .pairs()
                .iter()
                .filter_map(|&(i, j)| {
                    let score = output.fused.get(i, j);
                    let (u, v) = (test_sources[i], test_targets[j]);
                    (score >= boot.threshold && !already.contains(&u))
                        .then_some((score, u, v))
                })
                .collect();
            candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are finite"));
            let cap =
                ((test_sources.len() as f64) * boot.max_promotions_per_round).round() as usize;
            candidates.truncate(cap);
            promotions_per_round.push(candidates.len());
            extra_seeds.extend(candidates.into_iter().map(|(_, u, v)| (u, v)));
        } else {
            promotions_per_round.push(0);
        }
        last_output = Some(output);
    }

    BootstrapOutput {
        final_output: last_output.expect("at least one round ran"),
        accuracy_per_round,
        promotions_per_round,
    }
}

/// Clone `pair` with `extra` appended to its seed list (test split kept).
fn augment_seeds(pair: &KgPair, extra: &[(EntityId, EntityId)]) -> KgPair {
    let mut seeds = pair.seeds().to_vec();
    seeds.extend_from_slice(extra);
    let split = ceaff_graph::SeedSplit::from_parts(seeds, pair.test_pairs().to_vec());
    KgPair {
        source: pair.source.clone(),
        target: pair.target.clone(),
        alignment: pair.alignment.clone(),
        split,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcn::GcnConfig;
    use ceaff_datagen::{GenConfig, NameChannel};

    fn dataset() -> ceaff_datagen::GeneratedDataset {
        ceaff_datagen::generate(&GenConfig {
            aligned_entities: 150,
            extra_frac: 0.1,
            avg_degree: 8.0,
            overlap: 0.8,
            channel: NameChannel::DistantLingual,
            lexicon_coverage: 0.6,
            semantic_noise: 0.25,
            vocab_size: 400,
            ..GenConfig::default()
        })
    }

    fn fast_cfg() -> CeaffConfig {
        CeaffConfig {
            gcn: GcnConfig {
                dim: 32,
                epochs: 40,
                ..GcnConfig::default()
            },
            embed_dim: 32,
            ..CeaffConfig::default()
        }
    }

    #[test]
    fn bootstrapping_never_loses_much_and_usually_gains() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput {
            pair: &ds.pair,
            source_embedder: &src,
            target_embedder: &tgt,
        };
        let cfg = fast_cfg();
        let out = run_bootstrapped(&input, &cfg, &BootstrapConfig::default());
        assert_eq!(out.accuracy_per_round.len(), 3);
        assert_eq!(out.promotions_per_round.len(), 3);
        assert_eq!(out.promotions_per_round[2], 0, "final round promotes nothing");
        let first = out.accuracy_per_round[0];
        let last = *out.accuracy_per_round.last().unwrap();
        assert!(
            last >= first - 0.05,
            "bootstrapping degraded badly: {first} -> {last}"
        );
        assert!(out.promotions_per_round[0] > 0, "confident matches should exist");
    }

    #[test]
    fn single_round_equals_plain_ceaff() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput {
            pair: &ds.pair,
            source_embedder: &src,
            target_embedder: &tgt,
        };
        let cfg = fast_cfg();
        let plain = crate::pipeline::run(&input, &cfg);
        let boot = run_bootstrapped(
            &input,
            &cfg,
            &BootstrapConfig {
                rounds: 1,
                ..BootstrapConfig::default()
            },
        );
        assert!((plain.accuracy - boot.final_output.accuracy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let ds = dataset();
        let src = ds.source_embedder(16);
        let tgt = ds.target_embedder(16);
        let input = EaInput {
            pair: &ds.pair,
            source_embedder: &src,
            target_embedder: &tgt,
        };
        let _ = run_bootstrapped(
            &input,
            &fast_cfg(),
            &BootstrapConfig {
                rounds: 0,
                ..BootstrapConfig::default()
            },
        );
    }
}
