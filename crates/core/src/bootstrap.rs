//! Iterative (bootstrapped) CEAFF — an extension combining the paper's
//! framework with the self-training loop of its IPTransE/BootEA baselines
//! (§II, §VII-A): confident *collective* matches are promoted into the
//! seed alignment and the structural feature is retrained, for a fixed
//! number of rounds.
//!
//! Promotion uses the same one-to-one discipline as BootEA — but the
//! candidates come from the stable matching over the *fused* matrix, so a
//! promoted pair was already mutually preferred under all features
//! combined, which keeps the self-training noise low. Matches are promoted
//! when their fused score clears `threshold`.

use crate::error::CeaffError;
use crate::features::StructuralFeature;
use crate::pipeline::{try_run_with_features, CeaffConfig, CeaffOutput, EaInput, FeatureSet};
use ceaff_graph::{EntityId, KgPair};
use serde::{Deserialize, Serialize};

/// Bootstrapping configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BootstrapConfig {
    /// Total rounds (1 = plain CEAFF, no promotion).
    pub rounds: usize,
    /// Minimum fused similarity (after per-feature preprocessing) for a
    /// collective match to be promoted into the seed set.
    pub threshold: f32,
    /// Cap on promotions per round as a fraction of the test set (promote
    /// the highest-scoring matches first). Guards against flooding the
    /// seed set with early noise.
    pub max_promotions_per_round: f64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            rounds: 3,
            threshold: 0.75,
            max_promotions_per_round: 0.3,
        }
    }
}

/// Result of a bootstrapped run.
#[derive(Debug)]
pub struct BootstrapOutput {
    /// The final round's pipeline output (its
    /// [`CeaffOutput::trace`] covers the final round).
    pub final_output: CeaffOutput,
    /// Accuracy after each round (diagnostic).
    pub accuracy_per_round: Vec<f64>,
    /// Number of pairs promoted after each round (the last round promotes
    /// nothing).
    pub promotions_per_round: Vec<usize>,
}

/// Run CEAFF with bootstrapped seed augmentation.
///
/// Each round: compute features on a pair whose seed set is augmented with
/// the previous round's confident matches, run the full pipeline, promote.
/// The *evaluation* is always against the original test set.
///
/// Per-round progress is reported to `input.telemetry` as `bootstrap`
/// gauges (`extra_seeds` at round start, `promotions` after the round);
/// because every round drains the trace into its own [`CeaffOutput`],
/// those gauges land in that round's trace.
pub fn try_run_bootstrapped(
    input: &EaInput<'_>,
    cfg: &CeaffConfig,
    boot: &BootstrapConfig,
) -> Result<BootstrapOutput, CeaffError> {
    if boot.rounds == 0 {
        return Err(CeaffError::InvalidConfig(
            "bootstrapping needs at least one round".into(),
        ));
    }
    cfg.validate()?;
    let telemetry = &input.telemetry;
    let base_pair = input.pair;
    let test_sources = base_pair.test_sources();
    let test_targets = base_pair.test_targets();

    let mut extra_seeds: Vec<(EntityId, EntityId)> = Vec::new();
    let mut accuracy_per_round = Vec::with_capacity(boot.rounds);
    let mut promotions_per_round = Vec::with_capacity(boot.rounds);
    let mut last_output: Option<CeaffOutput> = None;
    // Semantic and string features depend only on names, not on seeds:
    // compute them once and retrain only the structural feature per round.
    let mut carried: Option<FeatureSet> = None;

    for round in 0..boot.rounds {
        telemetry.gauge(
            "bootstrap",
            "extra_seeds",
            Some(round as u64),
            extra_seeds.len() as f64,
        );
        // Build the augmented problem: same graphs and test split, seeds
        // extended with promotions. The test pairs stay identical so the
        // similarity matrices keep their index space.
        let augmented = augment_seeds(base_pair, &extra_seeds);
        let aug_input = EaInput::new(&augmented, input.source_embedder, input.target_embedder)
            .with_telemetry(telemetry.clone());
        let features = match carried.take() {
            None => FeatureSet::compute(&aug_input, cfg),
            Some(mut prev) => {
                if cfg.use_structural {
                    prev.structural = Some(StructuralFeature::compute_traced(
                        &augmented, &cfg.gcn, telemetry,
                    ));
                }
                prev
            }
        };
        let output = try_run_with_features(&augmented, &features, cfg, telemetry)?;
        carried = Some(features);
        accuracy_per_round.push(output.accuracy);

        if round + 1 < boot.rounds {
            // Promote confident one-to-one matches not already promoted.
            let already: std::collections::HashSet<EntityId> =
                extra_seeds.iter().map(|&(u, _)| u).collect();
            let mut candidates: Vec<(f32, EntityId, EntityId)> = output
                .matching
                .pairs()
                .iter()
                .filter_map(|&(i, j)| {
                    let score = output.fused.get(i, j);
                    let (u, v) = (test_sources[i], test_targets[j]);
                    (score >= boot.threshold && !already.contains(&u)).then_some((score, u, v))
                })
                .collect();
            candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are finite"));
            let cap =
                ((test_sources.len() as f64) * boot.max_promotions_per_round).round() as usize;
            candidates.truncate(cap);
            promotions_per_round.push(candidates.len());
            telemetry.gauge(
                "bootstrap",
                "promotions",
                Some(round as u64),
                candidates.len() as f64,
            );
            extra_seeds.extend(candidates.into_iter().map(|(_, u, v)| (u, v)));
        } else {
            promotions_per_round.push(0);
        }
        last_output = Some(output);
    }

    Ok(BootstrapOutput {
        final_output: last_output.expect("at least one round ran"),
        accuracy_per_round,
        promotions_per_round,
    })
}

/// Deprecated panicking shim over [`try_run_bootstrapped`].
///
/// # Panics
/// Panics when `boot.rounds == 0` or on an invalid configuration.
#[deprecated(since = "0.1.0", note = "use `try_run_bootstrapped` instead")]
pub fn run_bootstrapped(
    input: &EaInput<'_>,
    cfg: &CeaffConfig,
    boot: &BootstrapConfig,
) -> BootstrapOutput {
    try_run_bootstrapped(input, cfg, boot).unwrap_or_else(|e| panic!("{e}"))
}

/// Clone `pair` with `extra` appended to its seed list (test split kept).
fn augment_seeds(pair: &KgPair, extra: &[(EntityId, EntityId)]) -> KgPair {
    let mut seeds = pair.seeds().to_vec();
    seeds.extend_from_slice(extra);
    let split = ceaff_graph::SeedSplit::from_parts(seeds, pair.test_pairs().to_vec());
    KgPair {
        source: pair.source.clone(),
        target: pair.target.clone(),
        alignment: pair.alignment.clone(),
        split,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcn::GcnConfig;
    use ceaff_datagen::{GenConfig, NameChannel};
    use ceaff_telemetry::Telemetry;

    fn dataset() -> ceaff_datagen::GeneratedDataset {
        ceaff_datagen::generate(&GenConfig {
            aligned_entities: 150,
            extra_frac: 0.1,
            avg_degree: 8.0,
            overlap: 0.8,
            channel: NameChannel::DistantLingual,
            lexicon_coverage: 0.6,
            semantic_noise: 0.25,
            vocab_size: 400,
            ..GenConfig::default()
        })
    }

    fn fast_cfg() -> CeaffConfig {
        CeaffConfig {
            gcn: GcnConfig {
                dim: 32,
                epochs: 40,
                ..GcnConfig::default()
            },
            embed_dim: 32,
            ..CeaffConfig::default()
        }
    }

    #[test]
    fn bootstrapping_never_loses_much_and_usually_gains() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let cfg = fast_cfg();
        let out = try_run_bootstrapped(&input, &cfg, &BootstrapConfig::default()).expect("runs");
        assert_eq!(out.accuracy_per_round.len(), 3);
        assert_eq!(out.promotions_per_round.len(), 3);
        assert_eq!(
            out.promotions_per_round[2], 0,
            "final round promotes nothing"
        );
        let first = out.accuracy_per_round[0];
        let last = *out.accuracy_per_round.last().unwrap();
        assert!(
            last >= first - 0.05,
            "bootstrapping degraded badly: {first} -> {last}"
        );
        assert!(
            out.promotions_per_round[0] > 0,
            "confident matches should exist"
        );
        // The final round's trace carries stage timings as usual.
        assert!(out.final_output.trace.stage_seconds("matcher").is_some());
    }

    #[test]
    fn single_round_equals_plain_ceaff() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let cfg = fast_cfg();
        let plain = crate::pipeline::try_run(&input, &cfg).expect("runs");
        let boot = try_run_bootstrapped(
            &input,
            &cfg,
            &BootstrapConfig {
                rounds: 1,
                ..BootstrapConfig::default()
            },
        )
        .expect("runs");
        assert!((plain.accuracy - boot.final_output.accuracy).abs() < 1e-9);
    }

    #[test]
    fn zero_rounds_is_an_error() {
        let ds = dataset();
        let src = ds.source_embedder(16);
        let tgt = ds.target_embedder(16);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let err = try_run_bootstrapped(
            &input,
            &fast_cfg(),
            &BootstrapConfig {
                rounds: 0,
                ..BootstrapConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CeaffError::InvalidConfig(_)));
        assert!(err.to_string().contains("at least one round"));
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "at least one round")]
    fn deprecated_shim_panics_on_zero_rounds() {
        let ds = dataset();
        let src = ds.source_embedder(16);
        let tgt = ds.target_embedder(16);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let _ = run_bootstrapped(
            &input,
            &fast_cfg(),
            &BootstrapConfig {
                rounds: 0,
                ..BootstrapConfig::default()
            },
        );
    }

    #[test]
    fn enabled_telemetry_reports_bootstrap_rounds() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let sink = std::sync::Arc::new(ceaff_telemetry::InMemorySink::default());
        let input =
            EaInput::new(&ds.pair, &src, &tgt).with_telemetry(Telemetry::with_sink(sink.clone()));
        let cfg = fast_cfg();
        let out = try_run_bootstrapped(
            &input,
            &cfg,
            &BootstrapConfig {
                rounds: 2,
                ..BootstrapConfig::default()
            },
        )
        .expect("runs");
        // The sink saw every round's events, including the bootstrap
        // gauges the per-round traces were drained around.
        let events = sink.snapshot();
        let rounds: Vec<u64> = events
            .iter()
            .filter(|e| e.stage == "bootstrap" && e.name == "extra_seeds")
            .filter_map(|e| e.step)
            .collect();
        assert_eq!(rounds, vec![0, 1]);
        assert!(
            events
                .iter()
                .any(|e| e.stage == "bootstrap" && e.name == "promotions"),
            "promotions gauge expected"
        );
        assert!(out.final_output.trace.stage_seconds("gcn").is_some());
    }
}
