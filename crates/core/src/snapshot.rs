//! Warm-state snapshots of a [`DeltaState`] (the durability layer's
//! payload format — ROADMAP item 3's warm restart applied to the
//! incremental serving path).
//!
//! A snapshot captures everything [`DeltaState`] caches — the evolved
//! pair, the raw feature stores, the propagation layers, the last
//! pipeline output, and the chained fingerprint — in the same
//! little-endian fixed-width codec the checkpoint artifacts use, so
//! every `f32`/`f64` round-trips bitwise and a decoded state is
//! *indistinguishable* from the state that was encoded. Nothing is
//! recomputed on decode: that is what makes a warm restart cheap (no
//! feature extraction, no fusion) and provable (bit-identical answers).
//!
//! Integrity discipline mirrors [`crate::checkpoint`]:
//!
//! * a magic + version header fails loudly on a foreign or future file,
//! * the configuration is pinned by its [`config_fingerprint`] — the
//!   caller rebuilds [`CeaffConfig`] from its own flags and decode
//!   *verifies* it matches the one the snapshot was taken under,
//! * every read is bounds-checked, so truncated or bit-flipped payloads
//!   fail with a typed [`CeaffError::Checkpoint`], never a panic — the
//!   outer file framing (CRC32, atomic rename) is the WAL layer's job.
//!
//! Wall-clock telemetry ([`RunTrace`]) is deliberately *not* captured:
//! it is the one non-deterministic field of a [`CeaffOutput`], and a
//! restored state reports a fresh (empty) trace instead of replaying
//! stale timings.

use ceaff_graph::{Alignment, EntityId, KgPair, KnowledgeGraph, RelationId, SeedSplit, Triple};
use ceaff_sim::{SimStore, SimilarityMatrix, SparseTopK};
use ceaff_telemetry::RunTrace;

use crate::checkpoint::{config_fingerprint, ByteReader, ByteWriter};
use crate::delta::DeltaState;
use crate::error::CeaffError;
use crate::eval::RankingMetrics;
use crate::features::{Feature, SemanticFeature, StringFeature, StructuralFeature};
use crate::fusion::FusionReport;
use crate::matching::Matching;
use crate::pipeline::{CeaffConfig, CeaffOutput, FeatureSet};

/// `b"CSNP"` — CEAFF warm-state snapshot.
const MAGIC: u32 = u32::from_le_bytes(*b"CSNP");
/// Layout version; bumped on any change so old readers fail loudly.
const VERSION: u32 = 1;

fn snap_err(reason: impl Into<String>) -> CeaffError {
    CeaffError::Checkpoint {
        file: "warm-snapshot".into(),
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

fn put_store(w: &mut ByteWriter, store: &SimStore) {
    match store {
        SimStore::Dense(m) => {
            w.u8(0);
            w.matrix(m.as_matrix());
        }
        SimStore::Sparse(sp) => {
            w.u8(1);
            w.usize(sp.targets());
            w.usize(sp.k());
            w.usize(sp.sources());
            for i in 0..sp.sources() {
                let (cols, vals) = sp.row_entries(i);
                w.u32s(cols);
                w.f32s(vals);
            }
        }
    }
}

fn put_links(w: &mut ByteWriter, links: &[(EntityId, EntityId)]) {
    w.usize(links.len());
    for &(u, v) in links {
        w.u32(u.0);
        w.u32(v.0);
    }
}

fn put_graph(w: &mut ByteWriter, g: &KnowledgeGraph) {
    w.usize(g.num_entities());
    for id in g.entity_ids() {
        w.str(g.entity_name(id).expect("dense ids"));
    }
    w.usize(g.num_relations());
    for id in g.relation_ids() {
        w.str(g.relation_name(id).expect("dense ids"));
    }
    w.usize(g.num_triples());
    for t in g.triples() {
        w.u32(t.head.0);
        w.u32(t.relation.0);
        w.u32(t.tail.0);
    }
}

/// Binary pair codec. Names in intern order plus triples in insertion
/// order are the graph's whole identity: rebuilding through
/// `add_entity`/`add_relation`/`add_triple` regenerates the per-entity
/// edge indexes exactly (they are kept in the built-from-scratch layout
/// even under deltas), so the decoded pair is `==` the encoded one
/// without shipping the derived indexes. This path used to round-trip
/// the pair through JSON, which dominated warm-restart latency at
/// scale 1 (~1.1 s of `Value`-tree allocation vs ~20 ms here).
fn put_pair(w: &mut ByteWriter, pair: &KgPair) {
    put_graph(w, &pair.source);
    put_graph(w, &pair.target);
    put_links(w, pair.alignment.pairs());
    put_links(w, pair.split.seed());
    put_links(w, pair.split.test());
}

fn put_fusion_report(w: &mut ByteWriter, report: &FusionReport) {
    w.f32s(&report.weights);
    w.usize(report.candidates_per_feature.len());
    for &c in &report.candidates_per_feature {
        w.usize(c);
    }
    w.usize(report.retained_per_feature.len());
    for &r in &report.retained_per_feature {
        w.usize(r);
    }
    w.u8(report.fallback_equal as u8);
}

/// Serialize a [`DeltaState`] into a self-describing snapshot payload.
///
/// Fails (typed) if the state carries `extra` features: those are
/// arbitrary trait objects the codec cannot round-trip, and the serving
/// path — the only producer of snapshots — never sets them.
pub fn encode_delta_state(state: &DeltaState) -> Result<Vec<u8>, CeaffError> {
    let features = state.features();
    if !features.extra.is_empty() {
        return Err(snap_err(
            "states with extra (plugin) features cannot be snapshotted",
        ));
    }
    let mut w = ByteWriter::new();
    w.u32(MAGIC);
    w.u32(VERSION);
    w.u32(config_fingerprint(state.config())?);
    w.u32(state.fingerprint());
    w.u64(state.step() as u64);

    put_pair(&mut w, state.pair());

    let (prop_source, prop_target) = state.prop_layers();
    for layers in [prop_source, prop_target] {
        w.usize(layers.len());
        for m in layers {
            w.matrix(m);
        }
    }

    match &features.structural {
        None => w.u8(0),
        Some(f) => {
            w.u8(1);
            w.matrix(f.source_embeddings());
            w.matrix(f.target_embeddings());
            w.f32s(&f.loss_curve);
            put_store(&mut w, f.test_store());
        }
    }
    match &features.semantic {
        None => w.u8(0),
        Some(f) => {
            w.u8(1);
            w.matrix(f.source_embeddings());
            w.matrix(f.target_embeddings());
            put_store(&mut w, f.test_store());
        }
    }
    match &features.string {
        None => w.u8(0),
        Some(f) => {
            w.u8(1);
            put_store(&mut w, f.test_store());
        }
    }

    let output = state.output();
    put_store(&mut w, &output.fused);
    w.usize(output.matching.pairs().len());
    for &(i, j) in output.matching.pairs() {
        w.usize(i);
        w.usize(j);
    }
    w.f64(output.accuracy);
    w.f64(output.ranking.hits1);
    w.f64(output.ranking.hits10);
    w.f64(output.ranking.mrr);
    for report in [&output.textual_fusion, &output.final_fusion] {
        match report {
            None => w.u8(0),
            Some(r) => {
                w.u8(1);
                put_fusion_report(&mut w, r);
            }
        }
    }
    match &output.flat_weights {
        None => w.u8(0),
        Some(ws) => {
            w.u8(1);
            w.f32s(ws);
        }
    }
    Ok(w.into_bytes())
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

fn get_links(r: &mut ByteReader<'_>) -> Result<Vec<(EntityId, EntityId)>, String> {
    let n = r.usize()?;
    let mut links = Vec::with_capacity(n);
    for _ in 0..n {
        let u = EntityId::new(r.u32()?);
        let v = EntityId::new(r.u32()?);
        links.push((u, v));
    }
    Ok(links)
}

fn get_graph(r: &mut ByteReader<'_>) -> Result<KnowledgeGraph, String> {
    let mut g = KnowledgeGraph::new();
    let n_entities = r.usize()?;
    for i in 0..n_entities {
        let id = g.add_entity(&r.str()?);
        if id.index() != i {
            return Err(format!("duplicate entity name at interned id {i}"));
        }
    }
    let n_relations = r.usize()?;
    for i in 0..n_relations {
        let id = g.add_relation(&r.str()?);
        if id.index() != i {
            return Err(format!("duplicate relation name at interned id {i}"));
        }
    }
    let n_triples = r.usize()?;
    for _ in 0..n_triples {
        let head = EntityId::new(r.u32()?);
        let relation = RelationId::new(r.u32()?);
        let tail = EntityId::new(r.u32()?);
        g.add_triple(Triple::new(head, relation, tail))
            .map_err(|e| format!("cannot rebuild triple: {e}"))?;
    }
    Ok(g)
}

fn get_pair(r: &mut ByteReader<'_>) -> Result<KgPair, String> {
    let source = get_graph(r)?;
    let target = get_graph(r)?;
    let alignment =
        Alignment::new(get_links(r)?).map_err(|e| format!("cannot rebuild alignment: {e}"))?;
    let seed = get_links(r)?;
    let test = get_links(r)?;
    Ok(KgPair {
        source,
        target,
        alignment,
        split: SeedSplit::from_parts(seed, test),
    })
}

fn get_store(r: &mut ByteReader<'_>) -> Result<SimStore, String> {
    match r.u8()? {
        0 => Ok(SimStore::Dense(SimilarityMatrix::new(r.matrix()?))),
        1 => {
            let targets = r.usize()?;
            let k = r.usize()?;
            let sources = r.usize()?;
            let mut rows = Vec::with_capacity(sources);
            for _ in 0..sources {
                let cols = r.u32s()?;
                let vals = r.f32s()?;
                if cols.len() != vals.len() {
                    return Err("sparse row column/value length mismatch".into());
                }
                rows.push(cols.into_iter().zip(vals).collect());
            }
            // `from_rows` keeps already-canonical rows (score-desc,
            // col-asc ties) untouched, so the rebuilt store is bitwise
            // the encoded one — and it re-registers the tensor-ledger
            // bytes the serde skip dropped.
            Ok(SimStore::Sparse(SparseTopK::from_rows(targets, k, rows)))
        }
        tag => Err(format!("unknown store tag {tag}")),
    }
}

fn get_fusion_report(r: &mut ByteReader<'_>) -> Result<FusionReport, String> {
    let weights = r.f32s()?;
    let n = r.usize()?;
    let candidates_per_feature = (0..n).map(|_| r.usize()).collect::<Result<_, _>>()?;
    let n = r.usize()?;
    let retained_per_feature = (0..n).map(|_| r.usize()).collect::<Result<_, _>>()?;
    let fallback_equal = r.u8()? != 0;
    Ok(FusionReport {
        weights,
        candidates_per_feature,
        retained_per_feature,
        fallback_equal,
    })
}

/// Reassemble a [`DeltaState`] from a snapshot payload.
///
/// `cfg` is the configuration the caller is serving under (rebuilt from
/// its own flags); decode verifies it fingerprints to the configuration
/// the snapshot was taken with and fails typed otherwise — restoring
/// warm state under a different configuration would silently change
/// every answer.
pub fn decode_delta_state(bytes: &[u8], cfg: &CeaffConfig) -> Result<DeltaState, CeaffError> {
    decode_inner(bytes, cfg).map_err(snap_err)
}

fn decode_inner(bytes: &[u8], cfg: &CeaffConfig) -> Result<DeltaState, String> {
    let mut r = ByteReader::new(bytes);
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(format!("bad magic {magic:#010x} (not a snapshot)"));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(format!(
            "snapshot layout version {version} (this build reads {VERSION})"
        ));
    }
    let saved_cfg_crc = r.u32()?;
    let live_cfg_crc = config_fingerprint(cfg).map_err(|e| e.to_string())?;
    if saved_cfg_crc != live_cfg_crc {
        return Err(format!(
            "snapshot was taken under a different configuration \
             (saved crc {saved_cfg_crc:#010x}, serving under {live_cfg_crc:#010x})"
        ));
    }
    let fingerprint = r.u32()?;
    let step = usize::try_from(r.u64()?).map_err(|_| "step exceeds address space".to_owned())?;

    let pair = get_pair(&mut r)?;

    let mut prop = [Vec::new(), Vec::new()];
    for layers in &mut prop {
        let n = r.usize()?;
        for _ in 0..n {
            layers.push(r.matrix()?);
        }
    }
    let [prop_source, prop_target] = prop;

    let structural = match r.u8()? {
        0 => None,
        _ => {
            let z_source = r.matrix()?;
            let z_target = r.matrix()?;
            let loss_curve = r.f32s()?;
            let test = get_store(&mut r)?;
            Some(StructuralFeature::from_store_parts(
                z_source, z_target, test, loss_curve,
            ))
        }
    };
    let semantic = match r.u8()? {
        0 => None,
        _ => {
            let n_source = r.matrix()?;
            let n_target = r.matrix()?;
            let test = get_store(&mut r)?;
            Some(SemanticFeature::from_store_parts(n_source, n_target, test))
        }
    };
    let string = match r.u8()? {
        0 => None,
        _ => {
            let test = get_store(&mut r)?;
            Some(StringFeature::from_store(&pair, test))
        }
    };
    let features = FeatureSet {
        structural,
        semantic,
        string,
        extra: Vec::new(),
    };

    let fused = get_store(&mut r)?;
    let n = r.usize()?;
    let mut pairs = Vec::with_capacity(n.min(bytes.len() / 16));
    for _ in 0..n {
        pairs.push((r.usize()?, r.usize()?));
    }
    let matching = Matching::from_pairs(pairs);
    let accuracy = r.f64()?;
    let ranking = RankingMetrics {
        hits1: r.f64()?,
        hits10: r.f64()?,
        mrr: r.f64()?,
    };
    let mut reports = [None, None];
    for slot in &mut reports {
        if r.u8()? != 0 {
            *slot = Some(get_fusion_report(&mut r)?);
        }
    }
    let [textual_fusion, final_fusion] = reports;
    let flat_weights = match r.u8()? {
        0 => None,
        _ => Some(r.f32s()?),
    };
    let output = CeaffOutput {
        fused,
        matching,
        accuracy,
        ranking,
        textual_fusion,
        final_fusion,
        flat_weights,
        trace: RunTrace::default(),
    };

    Ok(DeltaState::from_parts(
        cfg.clone(),
        pair,
        features,
        prop_source,
        prop_target,
        output,
        fingerprint,
        step,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcn::GcnConfig;
    use crate::pipeline::EaInput;
    use ceaff_graph::{DeltaOp, KgDelta, Side};

    fn dataset() -> ceaff_datagen::GeneratedDataset {
        ceaff_datagen::generate(&ceaff_datagen::GenConfig {
            aligned_entities: 60,
            channel: ceaff_datagen::NameChannel::Identical { typo_rate: 0.05 },
            ..ceaff_datagen::GenConfig::default()
        })
    }

    fn cfg(blocked: bool) -> CeaffConfig {
        let mut c = CeaffConfig::builder()
            .gcn(GcnConfig {
                dim: 16,
                ..GcnConfig::default()
            })
            .embed_dim(32)
            .build()
            .expect("valid config")
            .with_propagation(2);
        if blocked {
            c = c.with_blocking(8);
        }
        c
    }

    fn assert_states_bitwise_equal(a: &DeltaState, b: &DeltaState) {
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.step(), b.step());
        assert_eq!(a.pair(), b.pair());
        assert_eq!(a.output().matching.pairs(), b.output().matching.pairs());
        assert_eq!(a.output().accuracy.to_bits(), b.output().accuracy.to_bits());
        match (&a.output().fused, &b.output().fused) {
            (SimStore::Dense(x), SimStore::Dense(y)) => {
                let (xs, ys) = (x.as_matrix().as_slice(), y.as_matrix().as_slice());
                assert_eq!(xs.len(), ys.len());
                for (p, q) in xs.iter().zip(ys) {
                    assert_eq!(p.to_bits(), q.to_bits(), "fused store diverged");
                }
            }
            (SimStore::Sparse(x), SimStore::Sparse(y)) => assert_eq!(x, y),
            _ => panic!("store kinds diverged"),
        }
        // The strongest check: re-encoding the decoded state reproduces
        // the exact byte stream, so *every* captured field round-tripped.
        assert_eq!(
            encode_delta_state(a).unwrap(),
            encode_delta_state(b).unwrap(),
            "re-encoded snapshots must be byte-identical"
        );
    }

    fn roundtrip(blocked: bool) {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let cfg = cfg(blocked);
        let mut state =
            DeltaState::new(&EaInput::new(&ds.pair, &src, &tgt), &cfg).expect("warm state");
        // Advance one step so fingerprint/step are non-trivial.
        let (u, _) = ds.pair.test_pairs()[0];
        let anchor = ds.pair.source.entity_name(u).expect("interned").to_owned();
        let rel = ds.pair.source.triples()[0].relation;
        let rel = ds
            .pair
            .source
            .relation_name(rel)
            .expect("interned")
            .to_owned();
        let delta = KgDelta::new(vec![
            DeltaOp::AddEntity {
                side: Side::Source,
                name: "snap_fresh".into(),
                at: None,
            },
            DeltaOp::AddTriple {
                side: Side::Source,
                head: "snap_fresh".into(),
                relation: rel,
                tail: anchor,
                at: None,
            },
        ]);
        state.apply(&delta, &src, &tgt).expect("delta applies");

        let bytes = encode_delta_state(&state).expect("encode");
        let restored = decode_delta_state(&bytes, &cfg).expect("decode");
        assert_states_bitwise_equal(&state, &restored);

        // A restored state must keep evolving exactly like the original.
        let delta2 = KgDelta::new(vec![DeltaOp::AddEntity {
            side: Side::Target,
            name: "snap_fresh_2".into(),
            at: None,
        }]);
        let mut live = state;
        let mut warm = restored;
        live.apply(&delta2, &src, &tgt).expect("live applies");
        warm.apply(&delta2, &src, &tgt).expect("warm applies");
        assert_states_bitwise_equal(&live, &warm);
    }

    #[test]
    fn snapshot_roundtrip_is_bitwise_dense() {
        roundtrip(false);
    }

    #[test]
    fn snapshot_roundtrip_is_bitwise_blocked() {
        roundtrip(true);
    }

    #[test]
    fn decode_rejects_a_different_configuration() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let state = DeltaState::new(&EaInput::new(&ds.pair, &src, &tgt), &cfg(false)).unwrap();
        let bytes = encode_delta_state(&state).unwrap();
        let err = decode_delta_state(&bytes, &cfg(true))
            .map(|_| ())
            .expect_err("config mismatch must be rejected");
        match err {
            CeaffError::Checkpoint { reason, .. } => {
                assert!(reason.contains("different configuration"), "{reason}")
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn every_corrupt_byte_fails_typed_never_panics() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let cfg = cfg(true);
        let state = DeltaState::new(&EaInput::new(&ds.pair, &src, &tgt), &cfg).unwrap();
        let bytes = encode_delta_state(&state).unwrap();
        // Truncations at a spread of prefixes: typed error or — never — a
        // panic. (Bit flips may legitimately decode if they land in f32
        // payload bytes; the outer file CRC catches those. Truncation
        // must always be caught structurally.)
        for cut in [0, 3, 7, 11, bytes.len() / 2, bytes.len() - 1] {
            let res = decode_delta_state(&bytes[..cut], &cfg);
            assert!(res.is_err(), "truncation at {cut} must fail");
        }
        // A flipped header/magic byte is always structural.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(decode_delta_state(&bad, &cfg).is_err());
    }
}
