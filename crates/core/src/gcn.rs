//! The 2-layer GCN structural encoder (paper §IV-A).
//!
//! Two GCNs — one per KG — **share** their layer weights `W1, W2 ∈ R^{d×d}`
//! and are trained to place seed-aligned entities close under L1 distance
//! via the margin-based ranking loss of Eq. 1, with negative pairs obtained
//! by corrupting seeds (5 uniform corruptions per positive by default).
//! Input features `X` are sampled from a truncated normal and L2-normalised
//! on rows ("to capture pure structural signal"); the adjacency follows
//! GCN-Align's relation-functionality weighting.
//!
//! One deliberate deviation from the paper's complexity paragraph (which
//! counts only `2·d²` parameters): like the GCN-Align implementation the
//! paper builds on, the input feature matrices are trainable by default —
//! with frozen random inputs the shared `d×d` weights alone cannot align
//! two disjoint random feature spaces. Set
//! [`GcnConfig::train_input`] `= false` for the strictly-literal variant.

use crate::budget::ExecBudget;
use crate::checkpoint::{self, Checkpointer, GcnTrainState};
use crate::error::CeaffError;
use ceaff_graph::{build_adjacency, AdjacencyKind, KgPair};
use ceaff_telemetry::Telemetry;
use ceaff_tensor::{init, Adam, Graph, Matrix, Optimizer, ParamSet, Sgd};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::rc::Rc;

/// Bounded numeric-recovery attempts before training gives up with
/// [`CeaffError::NumericDivergence`]. A module constant (not a
/// [`GcnConfig`] field) so existing serialized configurations stay valid.
pub const MAX_NUMERIC_RETRIES: usize = 3;

/// Epoch cadence of the in-memory rollback snapshot when no checkpoint
/// interval is armed; with [`crate::checkpoint::CheckpointPolicy::EveryNEpochs`]
/// the snapshot follows the checkpoint cadence instead.
const RECOVERY_SNAPSHOT_INTERVAL: usize = 10;

/// Inter-layer activation of the GCN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit (the paper's choice).
    Relu,
    /// No activation (linear propagation).
    Linear,
}

/// Which optimizer trains the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimKind {
    /// Plain stochastic gradient descent (the paper's choice).
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Adam — steadier on the scaled-down single-core configuration.
    Adam {
        /// Learning rate.
        lr: f32,
    },
}

/// GCN training configuration. Paper values: `ds = 300`, `γ = 3`,
/// 300 epochs, 5 negatives per positive (§VII-A); dimension and epochs are
/// scaled down by default for the single-core environment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GcnConfig {
    /// Embedding dimensionality `ds` (kept equal across layers, as in the
    /// paper).
    pub dim: usize,
    /// Training epochs (full-batch over the seed set).
    pub epochs: usize,
    /// Margin `γ` of the ranking loss.
    pub margin: f32,
    /// Negative samples per positive seed pair.
    pub negatives: usize,
    /// Optimizer.
    pub optimizer: OptimKind,
    /// Adjacency construction strategy.
    pub adjacency: AdjacencyKind,
    /// Whether the input feature matrices are trained (see module docs).
    pub train_input: bool,
    /// Tie the input features of seed-aligned entity pairs after every
    /// optimizer step (averaging the two rows). This is the "fusing the
    /// training corpus" technique of §II — several of the paper's cited
    /// methods project both KGs into one space by merging seeds — and it
    /// substantially strengthens the structural signal when the seed set
    /// is small. Disable for the strictly-GCN-Align-literal encoder.
    pub tie_seed_inputs: bool,
    /// Initialise the shared layer weights as the identity instead of
    /// Xavier noise, so the untrained forward pass is pure neighbourhood
    /// propagation (which already carries the seed-anchor overlap signal)
    /// and training only refines it.
    pub identity_weights: bool,
    /// Inter-layer activation. The paper's GCN uses ReLU; with the
    /// seed-anchored signed anchors a linear first layer preserves twice
    /// the signal, so `Linear` is the default here (deviation documented).
    pub activation: Activation,
    /// Sample negatives from the `hard_negative_pool` nearest entities of
    /// the corrupted side (recomputed every `hard_negative_refresh`
    /// epochs) instead of uniformly — BootEA's ε-truncated negative
    /// sampling, which the margin loss needs to discriminate among
    /// near-duplicates. `0` disables (uniform corruption only).
    pub hard_negative_pool: usize,
    /// Epochs between hard-negative pool refreshes.
    pub hard_negative_refresh: usize,
    /// Fraction of the seed alignment held out for early stopping: every
    /// `validate_every` epochs the current embeddings are scored by Hits@1
    /// of the held-out pairs (cosine, against all target entities) and the
    /// best snapshot is returned. Small seed sets overfit the margin loss
    /// quickly; validation-based selection keeps whatever amount of
    /// training actually helps. `0.0` disables (the last epoch wins).
    pub validation_fraction: f64,
    /// Epochs between validation snapshots.
    pub validate_every: usize,
    /// RNG seed for init and negative sampling.
    pub seed: u64,
}

impl GcnConfig {
    /// Number of *weight* parameters: `2 · ds²` — the paper's complexity
    /// analysis ("the total number of parameters is 2 × ds × ds", §IV-A),
    /// which counts only the shared layer matrices `W1, W2`.
    pub fn num_weight_parameters(&self) -> usize {
        2 * self.dim * self.dim
    }

    /// Total trainable parameters for a given KG pair, including the input
    /// feature matrices when `train_input` is on — the count the
    /// implementation actually optimises.
    pub fn num_trainable_parameters(&self, n_source: usize, n_target: usize) -> usize {
        let weights = self.num_weight_parameters();
        if self.train_input {
            weights + (n_source + n_target) * self.dim
        } else {
            weights
        }
    }
}

impl Default for GcnConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            epochs: 100,
            margin: 3.0,
            negatives: 5,
            optimizer: OptimKind::Adam { lr: 0.02 },
            adjacency: AdjacencyKind::Functionality,
            train_input: true,
            tie_seed_inputs: true,
            identity_weights: true,
            activation: Activation::Linear,
            hard_negative_pool: 20,
            hard_negative_refresh: 20,
            validation_fraction: 0.1,
            validate_every: 10,
            seed: 0x0067_636e,
        }
    }
}

/// A trained encoder: final structural embeddings of both KGs (rows indexed
/// by entity id).
#[derive(Debug, Clone)]
pub struct GcnEncoder {
    /// Source-KG embeddings `Z₁` (`|E1| × d`).
    pub z_source: Matrix,
    /// Target-KG embeddings `Z₂` (`|E2| × d`).
    pub z_target: Matrix,
    /// Training-loss trajectory (one value per epoch), for diagnostics.
    pub loss_curve: Vec<f32>,
}

struct Layers {
    x1: ceaff_tensor::ParamId,
    x2: ceaff_tensor::ParamId,
    w1: ceaff_tensor::ParamId,
    w2: ceaff_tensor::ParamId,
}

fn forward(
    g: &mut Graph,
    adj: &Rc<ceaff_graph::CsrMatrix>,
    x: ceaff_tensor::Var,
    w1: ceaff_tensor::Var,
    w2: ceaff_tensor::Var,
    activation: Activation,
) -> ceaff_tensor::Var {
    let h = g.spmm(Rc::clone(adj), x);
    let h = g.matmul(h, w1);
    let h = match activation {
        Activation::Relu => g.relu(h),
        Activation::Linear => h,
    };
    let h = g.spmm(Rc::clone(adj), h);
    g.matmul(h, w2)
}

/// Identity matrix initialiser for the shared layer weights.
fn identity(dim: usize) -> Matrix {
    let mut m = Matrix::zeros(dim, dim);
    for i in 0..dim {
        m[(i, i)] = 1.0;
    }
    m
}

/// Train the shared-weight GCN pair on `pair`'s seed alignment.
pub fn train(pair: &KgPair, cfg: &GcnConfig) -> GcnEncoder {
    train_traced(pair, cfg, &Telemetry::disabled())
}

/// [`train`] with telemetry: the whole run is timed under the `"gcn"`
/// stage, and with an active event stream every epoch emits an
/// `epoch_loss` and a `grad_norm` gauge.
pub fn train_traced(pair: &KgPair, cfg: &GcnConfig, telemetry: &Telemetry) -> GcnEncoder {
    assert!(
        cfg.dim > 0 && cfg.negatives > 0,
        "invalid GCN configuration"
    );
    try_train_traced(pair, cfg, telemetry, None).expect("GCN training failed")
}

/// Capture everything needed to re-enter the training loop at an epoch
/// boundary — used both for the on-disk checkpoint artifact and for the
/// in-memory numeric-recovery rollback snapshot.
#[allow(clippy::too_many_arguments)]
fn capture_state(
    next_epoch: usize,
    retries: usize,
    params: &ParamSet,
    layers: &Layers,
    opt: &dyn Optimizer,
    rng: &ChaCha8Rng,
    loss_curve: &[f32],
    pool_u: &[Vec<u32>],
    pool_v: &[Vec<u32>],
    best: &Option<(f64, Matrix, Matrix)>,
) -> GcnTrainState {
    GcnTrainState {
        next_epoch,
        retries,
        params: [layers.x1, layers.x2, layers.w1, layers.w2]
            .iter()
            .map(|&id| params.get(id).clone())
            .collect(),
        opt: opt.state(),
        rng_words: rng.state_words(),
        loss_curve: loss_curve.to_vec(),
        pool_u: pool_u.to_vec(),
        pool_v: pool_v.to_vec(),
        best: best.clone(),
    }
}

/// Overwrite the live training state with a snapshot. The prologue
/// (splits, adjacencies, index lists) is deterministic and already
/// replayed by the caller; only the mutable trajectory is restored here.
#[allow(clippy::too_many_arguments)]
fn restore_state(
    state: &GcnTrainState,
    params: &mut ParamSet,
    layers: &Layers,
    opt: &mut dyn Optimizer,
    rng: &mut ChaCha8Rng,
    loss_curve: &mut Vec<f32>,
    pool_u: &mut Vec<Vec<u32>>,
    pool_v: &mut Vec<Vec<u32>>,
    best: &mut Option<(f64, Matrix, Matrix)>,
) -> Result<(), CeaffError> {
    let ids = [layers.x1, layers.x2, layers.w1, layers.w2];
    if state.params.len() != ids.len() {
        return Err(CeaffError::Checkpoint {
            file: checkpoint::TRAIN_FILE.into(),
            reason: format!(
                "expected {} parameter matrices, found {}",
                ids.len(),
                state.params.len()
            ),
        });
    }
    for (&id, saved) in ids.iter().zip(&state.params) {
        let live = params.get(id);
        if (live.rows(), live.cols()) != (saved.rows(), saved.cols()) {
            return Err(CeaffError::Checkpoint {
                file: checkpoint::TRAIN_FILE.into(),
                reason: format!(
                    "parameter shape {}x{} does not match the run's {}x{}",
                    saved.rows(),
                    saved.cols(),
                    live.rows(),
                    live.cols()
                ),
            });
        }
        *params.get_mut(id) = saved.clone();
    }
    opt.restore(&state.opt)
        .map_err(|reason| CeaffError::Checkpoint {
            file: checkpoint::TRAIN_FILE.into(),
            reason,
        })?;
    *rng = ChaCha8Rng::from_state_words(state.rng_words);
    *loss_curve = state.loss_curve.clone();
    *pool_u = state.pool_u.clone();
    *pool_v = state.pool_v.clone();
    *best = state.best.clone();
    Ok(())
}

/// Fallible, checkpoint-aware training (the fault-tolerant entry point).
///
/// With a [`Checkpointer`] whose policy has an epoch interval, the full
/// training state (parameters, optimizer moments, RNG stream, loss curve,
/// negative pools, early-stopping snapshot) is atomically saved every `N`
/// epochs; a later call on the same run directory replays the
/// deterministic prologue and then continues from the saved boundary,
/// producing **bitwise-identical** embeddings to an uninterrupted run.
///
/// Every epoch's loss and gradients are scanned for non-finite values. On
/// the first bad value the loop rolls back to the last good in-memory
/// snapshot, halves the learning rate, and bumps the `numeric_recovery`
/// telemetry counter; after [`MAX_NUMERIC_RETRIES`] failed recoveries it
/// returns [`CeaffError::NumericDivergence`].
pub fn try_train_traced(
    pair: &KgPair,
    cfg: &GcnConfig,
    telemetry: &Telemetry,
    checkpointer: Option<&Checkpointer>,
) -> Result<GcnEncoder, CeaffError> {
    try_train_budgeted(pair, cfg, telemetry, checkpointer, &ExecBudget::unlimited())
}

/// [`try_train_traced`] under an execution budget. The granule is one
/// epoch: each epoch boundary consumes a budget step, polls the memory
/// cap, and reports a progress heartbeat. When the budget stops the run
/// before `cfg.epochs`, training ends at the last *completed* epoch, the
/// epilogue returns the best validation snapshot so far (exactly as if
/// `epochs` had been configured lower), and a `"gcn"` [`Degradation`]
/// record is registered with `telemetry`. A cancel or deadline that
/// fires *inside* an epoch's kernels leaves partially-written gradient
/// buffers behind — that epoch is discarded wholesale (no optimizer
/// step, no loss-curve entry) so corrupt data never reaches the
/// parameters.
///
/// An unlimited budget is bitwise-identical to [`try_train_traced`].
///
/// [`Degradation`]: ceaff_telemetry::Degradation
pub fn try_train_budgeted(
    pair: &KgPair,
    cfg: &GcnConfig,
    telemetry: &Telemetry,
    checkpointer: Option<&Checkpointer>,
    budget: &ExecBudget,
) -> Result<GcnEncoder, CeaffError> {
    if cfg.dim == 0 || cfg.negatives == 0 {
        return Err(CeaffError::InvalidConfig(
            "gcn.dim and gcn.negatives must be positive".into(),
        ));
    }
    let _span = telemetry.span("gcn");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let n1 = pair.source.num_entities();
    let n2 = pair.target.num_entities();

    // Hold out part of the seed alignment for early stopping. Held-out
    // pairs take no part in anchoring, tying, or the loss.
    let mut all_seeds: Vec<(ceaff_graph::EntityId, ceaff_graph::EntityId)> = pair.seeds().to_vec();
    use rand::seq::SliceRandom;
    all_seeds.shuffle(&mut rng);
    let n_val =
        ((all_seeds.len() as f64) * cfg.validation_fraction.clamp(0.0, 0.5)).round() as usize;
    let val_seeds: Vec<_> = all_seeds.split_off(all_seeds.len() - n_val.min(all_seeds.len()));
    let train_seeds = all_seeds;
    let a1 = Rc::new(build_adjacency(&pair.source, cfg.adjacency));
    let a2 = Rc::new(build_adjacency(&pair.target, cfg.adjacency));

    let mut params = ParamSet::new();
    let mut x1_init = init::truncated_normal(n1, cfg.dim, 1.0, &mut rng);
    x1_init.l2_normalize_rows();
    let mut x2_init = init::truncated_normal(n2, cfg.dim, 1.0, &mut rng);
    x2_init.l2_normalize_rows();
    if cfg.tie_seed_inputs {
        // Seed-anchored initialisation: non-seed rows start at zero and
        // every seed pair shares one unit-norm random row, so the first
        // propagation already carries the seed-neighbourhood-overlap
        // signal instead of burying it under uncorrelated random features.
        // (A deliberate strengthening over the paper's plain random init —
        // see the module docs and DESIGN.md; disable via
        // `tie_seed_inputs: false` for the literal variant.)
        x1_init.fill_zero();
        x2_init.fill_zero();
        let mut anchor = init::truncated_normal(train_seeds.len().max(1), cfg.dim, 1.0, &mut rng);
        anchor.l2_normalize_rows();
        for (i, &(u, v)) in train_seeds.iter().enumerate() {
            x1_init.row_mut(u.index()).copy_from_slice(anchor.row(i));
            x2_init.row_mut(v.index()).copy_from_slice(anchor.row(i));
        }
    }
    let (w1_init, w2_init) = if cfg.identity_weights {
        (identity(cfg.dim), identity(cfg.dim))
    } else {
        (
            init::xavier_uniform(cfg.dim, cfg.dim, &mut rng),
            init::xavier_uniform(cfg.dim, cfg.dim, &mut rng),
        )
    };
    let layers = Layers {
        x1: params.add(x1_init),
        x2: params.add(x2_init),
        w1: params.add(w1_init),
        w2: params.add(w2_init),
    };
    let mut opt: Box<dyn Optimizer> = match cfg.optimizer {
        OptimKind::Sgd { lr } => Box::new(Sgd::new(lr)),
        OptimKind::Adam { lr } => Box::new(Adam::new(lr)),
    };

    let seeds: &[(ceaff_graph::EntityId, ceaff_graph::EntityId)] = &train_seeds;
    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    if seeds.is_empty() {
        // Nothing to train on: return the (normalised) random propagation.
        let (z1, z2) = final_forward(&params, &layers, &a1, &a2, cfg.activation);
        return Ok(GcnEncoder {
            z_source: z1,
            z_target: z2,
            loss_curve,
        });
    }

    // Positive index lists, repeated once per negative sample.
    let pos_u: Vec<usize> = seeds.iter().map(|&(u, _)| u.index()).collect();
    let pos_v: Vec<usize> = seeds.iter().map(|&(_, v)| v.index()).collect();
    let rep_u: Rc<Vec<usize>> = Rc::new(
        pos_u
            .iter()
            .flat_map(|&u| std::iter::repeat_n(u, cfg.negatives))
            .collect(),
    );
    let rep_v: Rc<Vec<usize>> = Rc::new(
        pos_v
            .iter()
            .flat_map(|&v| std::iter::repeat_n(v, cfg.negatives))
            .collect(),
    );

    // Hard-negative pools: for each seed, the nearest entities to its two
    // endpoints under the current embeddings (ε-truncated sampling).
    let mut pool_u: Vec<Vec<u32>> = Vec::new();
    let mut pool_v: Vec<Vec<u32>> = Vec::new();

    // Early-stopping state: best validation score and its embeddings.
    let mut best: Option<(f64, Matrix, Matrix)> = None;
    let validate = |params: &ParamSet, best: &mut Option<(f64, Matrix, Matrix)>| {
        if val_seeds.is_empty() {
            return;
        }
        let (z1, z2) = final_forward(params, &layers, &a1, &a2, cfg.activation);
        let score = validation_hits1(&z1, &z2, &val_seeds);
        if best.as_ref().is_none_or(|(b, _, _)| score > *b) {
            *best = Some((score, z1, z2));
        }
    };

    // Resume: the prologue above replayed every deterministic draw from a
    // fresh seeded RNG; a verified training checkpoint now overwrites the
    // whole mutable trajectory, continuing the run at the saved boundary.
    let mut start_epoch = 0usize;
    let mut retries = 0usize;
    let mut resumed = false;
    if let Some(ck) = checkpointer {
        if let Some(bytes) = ck.load(checkpoint::TRAIN_FILE)? {
            let state = checkpoint::decode_train_state(&bytes).map_err(|reason| {
                CeaffError::Checkpoint {
                    file: checkpoint::TRAIN_FILE.into(),
                    reason,
                }
            })?;
            restore_state(
                &state,
                &mut params,
                &layers,
                &mut *opt,
                &mut rng,
                &mut loss_curve,
                &mut pool_u,
                &mut pool_v,
                &mut best,
            )?;
            start_epoch = state.next_epoch.min(cfg.epochs);
            retries = state.retries;
            resumed = true;
            telemetry.counter_add("checkpoint", "train_resumed", 1);
        }
    }
    if !resumed {
        // Only a fresh run scores the initial parameters: the resumed
        // trajectory already contains every validation snapshot up to the
        // boundary, and an extra comparison would change which epoch wins.
        validate(&params, &mut best);
    }

    let disk_interval = checkpointer.and_then(|c| c.policy().epoch_interval());
    let snap_interval = disk_interval.unwrap_or(RECOVERY_SNAPSHOT_INTERVAL).max(1);
    // The rollback target for numeric recovery (always armed, even without
    // a run directory — recovery is in-memory).
    let mut snap = capture_state(
        start_epoch,
        retries,
        &params,
        &layers,
        &*opt,
        &rng,
        &loss_curve,
        &pool_u,
        &pool_v,
        &best,
    );

    let mut epoch = start_epoch;
    let mut stopped = None;
    while epoch < cfg.epochs {
        ceaff_faultinject::abort_point(epoch);
        ceaff_faultinject::sigint_point(epoch);
        ceaff_faultinject::sigterm_point(epoch);
        if ceaff_faultinject::simulated_crash(epoch) {
            return Err(CeaffError::Checkpoint {
                file: checkpoint::TRAIN_FILE.into(),
                reason: format!("fault injection: simulated crash at epoch {epoch}"),
            });
        }
        if let Some(reason) = budget.consume_step() {
            stopped = Some(reason);
            break;
        }
        budget.check_mem("gcn")?;
        telemetry.progress("gcn", epoch as u64, cfg.epochs as u64);
        if cfg.hard_negative_pool > 0
            && (epoch == 0 || epoch.is_multiple_of(cfg.hard_negative_refresh.max(1)))
            && epoch + 1 < cfg.epochs
        {
            let (z1, z2) = final_forward(&params, &layers, &a1, &a2, cfg.activation);
            pool_u = nearest_pools(&z1, &pos_u, cfg.hard_negative_pool);
            pool_v = nearest_pools(&z2, &pos_v, cfg.hard_negative_pool);
        }
        // Fresh corruptions each epoch (S′ in Eq. 1): mostly hard
        // negatives from the pools, mixed with uniform exploration.
        let mut neg_u = Vec::with_capacity(rep_u.len());
        let mut neg_v = Vec::with_capacity(rep_v.len());
        for i in 0..rep_u.len() {
            let seed_idx = i / cfg.negatives;
            let hard = !pool_u.is_empty() && rng.gen_bool(0.8);
            if rng.gen_bool(0.5) {
                let cand = if hard {
                    let pool = &pool_u[seed_idx];
                    pool[rng.gen_range(0..pool.len())] as usize
                } else {
                    rng.gen_range(0..n1)
                };
                neg_u.push(cand);
                neg_v.push(rep_v[i]);
            } else {
                let cand = if hard {
                    let pool = &pool_v[seed_idx];
                    pool[rng.gen_range(0..pool.len())] as usize
                } else {
                    rng.gen_range(0..n2)
                };
                neg_u.push(rep_u[i]);
                neg_v.push(cand);
            }
        }
        let neg_u = Rc::new(neg_u);
        let neg_v = Rc::new(neg_v);

        let mut g = Graph::new();
        let x1 = g.leaf(params.get(layers.x1).clone());
        let x2 = g.leaf(params.get(layers.x2).clone());
        let w1 = g.leaf(params.get(layers.w1).clone());
        let w2 = g.leaf(params.get(layers.w2).clone());
        let z1 = forward(&mut g, &a1, x1, w1, w2, cfg.activation);
        let z2 = forward(&mut g, &a2, x2, w1, w2, cfg.activation);

        let pu = g.gather_rows(z1, Rc::clone(&rep_u));
        let pv = g.gather_rows(z2, Rc::clone(&rep_v));
        let nu = g.gather_rows(z1, neg_u);
        let nv = g.gather_rows(z2, neg_v);
        let pos_dist = g.row_l1_diff(pu, pv);
        let neg_dist = g.row_l1_diff(nu, nv);
        let loss = g.margin_ranking_loss(pos_dist, neg_dist, cfg.margin);
        let mut loss_value = g.value(loss)[(0, 0)];
        if ceaff_faultinject::nan_loss(epoch) {
            loss_value = f32::NAN;
        }

        let mut grads: Vec<(ceaff_tensor::ParamId, &Matrix)> = Vec::with_capacity(4);
        let healthy = loss_value.is_finite() && {
            g.backward(loss);
            if cfg.train_input {
                if let Some(gx) = g.grad(x1) {
                    grads.push((layers.x1, gx));
                }
                if let Some(gx) = g.grad(x2) {
                    grads.push((layers.x2, gx));
                }
            }
            if let Some(gw) = g.grad(w1) {
                grads.push((layers.w1, gw));
            }
            if let Some(gw) = g.grad(w2) {
                grads.push((layers.w2, gw));
            }
            grads.iter().all(|(_, m)| m.all_finite())
        };
        if budget.interrupt_reason().is_some() {
            // A cancel or deadline fired while this epoch's kernels ran:
            // abandoned chunks leave partially-written loss/gradient
            // buffers (which look finite), so nothing from this epoch may
            // touch the parameters, loss curve, or recovery bookkeeping.
            // The top-of-loop check turns the stop into a degradation.
            drop(grads);
            continue;
        }
        if !healthy {
            // Non-finite loss or gradient: roll back to the last good
            // boundary, halve the learning rate, and replay — bounded by
            // MAX_NUMERIC_RETRIES before the typed divergence error.
            drop(grads);
            retries += 1;
            telemetry.counter_add("gcn", "numeric_recovery", 1);
            if retries > MAX_NUMERIC_RETRIES {
                return Err(CeaffError::NumericDivergence {
                    stage: "gcn".into(),
                    epoch,
                    retries: retries - 1,
                });
            }
            restore_state(
                &snap,
                &mut params,
                &layers,
                &mut *opt,
                &mut rng,
                &mut loss_curve,
                &mut pool_u,
                &mut pool_v,
                &mut best,
            )?;
            let halved = opt.learning_rate() * 0.5;
            opt.set_learning_rate(halved);
            // Re-capture so a second rollback to this boundary keeps the
            // decayed learning rate instead of undoing it.
            snap = capture_state(
                snap.next_epoch,
                retries,
                &params,
                &layers,
                &*opt,
                &rng,
                &loss_curve,
                &pool_u,
                &pool_v,
                &best,
            );
            epoch = snap.next_epoch;
            continue;
        }
        loss_curve.push(loss_value);
        telemetry.gauge("gcn", "epoch_loss", Some(epoch as u64), loss_value as f64);
        if telemetry.is_enabled() {
            // Global gradient L2 norm across every trained parameter —
            // only computed when someone is listening.
            let sq: f64 = grads
                .iter()
                .map(|(_, m)| {
                    m.as_slice()
                        .iter()
                        .map(|&v| (v as f64) * (v as f64))
                        .sum::<f64>()
                })
                .sum();
            telemetry.gauge("gcn", "grad_norm", Some(epoch as u64), sq.sqrt());
        }
        opt.step(&mut params, &grads);

        if cfg.tie_seed_inputs && cfg.train_input {
            tie_seeds(&mut params, &layers, seeds);
        }
        if epoch + 1 == cfg.epochs || (epoch + 1).is_multiple_of(cfg.validate_every.max(1)) {
            validate(&params, &mut best);
        }
        epoch += 1;
        if epoch.is_multiple_of(snap_interval) || epoch == cfg.epochs {
            snap = capture_state(
                epoch,
                retries,
                &params,
                &layers,
                &*opt,
                &rng,
                &loss_curve,
                &pool_u,
                &pool_v,
                &best,
            );
            if disk_interval.is_some() {
                if let Some(ck) = checkpointer {
                    ck.save(
                        checkpoint::TRAIN_FILE,
                        &checkpoint::encode_train_state(&snap),
                    )?;
                    telemetry.counter_add("checkpoint", "train_saved", 1);
                }
            }
        }
    }

    if let Some(reason) = stopped {
        budget.record_degradation(
            telemetry,
            "gcn",
            reason,
            epoch as u64,
            (cfg.epochs - epoch) as f64 / cfg.epochs.max(1) as f64,
        );
    } else {
        telemetry.progress("gcn", cfg.epochs as u64, cfg.epochs as u64);
    }
    let (z_source, z_target) = match best {
        Some((_, z1, z2)) => (z1, z2),
        None => final_forward(&params, &layers, &a1, &a2, cfg.activation),
    };
    Ok(GcnEncoder {
        z_source,
        z_target,
        loss_curve,
    })
}

/// Hits@1 of held-out pairs: each validation source must rank its true
/// counterpart first among *all* target entities under cosine similarity.
fn validation_hits1(
    z1: &Matrix,
    z2: &Matrix,
    val: &[(ceaff_graph::EntityId, ceaff_graph::EntityId)],
) -> f64 {
    let n1 = z1.l2_normalized_rows();
    let n2 = z2.l2_normalized_rows();
    let mut hits = 0usize;
    for &(u, v) in val {
        let row = n1.row(u.index());
        let truth = ceaff_tensor::dot(row, n2.row(v.index()));
        let beaten = (0..n2.rows())
            .filter(|&j| j != v.index())
            .all(|j| ceaff_tensor::dot(row, n2.row(j)) < truth);
        if beaten {
            hits += 1;
        }
    }
    hits as f64 / val.len().max(1) as f64
}

/// For each anchor entity, the `k` nearest other entities of its own KG
/// under cosine similarity — the hard-negative candidate pools.
fn nearest_pools(z: &Matrix, anchors: &[usize], k: usize) -> Vec<Vec<u32>> {
    let normed = z.l2_normalized_rows();
    anchors
        .iter()
        .map(|&a| {
            let row = normed.row(a);
            let mut scored: Vec<(f32, u32)> = (0..normed.rows())
                .filter(|&e| e != a)
                .map(|e| (ceaff_tensor::dot(row, normed.row(e)), e as u32))
                .collect();
            let k = k.min(scored.len());
            if k == 0 {
                return Vec::new();
            }
            scored.select_nth_unstable_by(k - 1, |x, y| {
                y.0.partial_cmp(&x.0).expect("cosines are finite")
            });
            scored.truncate(k);
            scored.into_iter().map(|(_, e)| e).collect()
        })
        .collect()
}

/// Average the input-feature rows of every seed pair across the two KGs.
fn tie_seeds(
    params: &mut ParamSet,
    layers: &Layers,
    seeds: &[(ceaff_graph::EntityId, ceaff_graph::EntityId)],
) {
    // Collect the averaged rows first to keep the borrow checker happy.
    let dim = params.get(layers.x1).cols();
    let mut avg = vec![0.0f32; dim];
    for &(u, v) in seeds {
        {
            let x1 = params.get(layers.x1);
            let x2 = params.get(layers.x2);
            for ((a, &p), &q) in avg.iter_mut().zip(x1.row(u.index())).zip(x2.row(v.index())) {
                *a = 0.5 * (p + q);
            }
        }
        params
            .get_mut(layers.x1)
            .row_mut(u.index())
            .copy_from_slice(&avg);
        params
            .get_mut(layers.x2)
            .row_mut(v.index())
            .copy_from_slice(&avg);
    }
}

fn final_forward(
    params: &ParamSet,
    layers: &Layers,
    a1: &Rc<ceaff_graph::CsrMatrix>,
    a2: &Rc<ceaff_graph::CsrMatrix>,
    activation: Activation,
) -> (Matrix, Matrix) {
    let mut g = Graph::new();
    let x1 = g.leaf(params.get(layers.x1).clone());
    let x2 = g.leaf(params.get(layers.x2).clone());
    let w1 = g.leaf(params.get(layers.w1).clone());
    let w2 = g.leaf(params.get(layers.w2).clone());
    let z1 = forward(&mut g, a1, x1, w1, w2, activation);
    let z2 = forward(&mut g, a2, x2, w1, w2, activation);
    (g.value(z1).clone(), g.value(z2).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_datagen::{GenConfig, NameChannel};

    fn small_dataset() -> ceaff_datagen::GeneratedDataset {
        ceaff_datagen::generate(&GenConfig {
            aligned_entities: 150,
            extra_frac: 0.0,
            avg_degree: 8.0,
            overlap: 0.85,
            channel: NameChannel::Identical { typo_rate: 0.0 },
            vocab_size: 500,
            ..GenConfig::default()
        })
    }

    fn small_cfg() -> GcnConfig {
        GcnConfig {
            dim: 32,
            epochs: 60,
            ..GcnConfig::default()
        }
    }

    #[test]
    fn training_reduces_loss() {
        let ds = small_dataset();
        let enc = train(&ds.pair, &small_cfg());
        let first = enc.loss_curve[0];
        let last = *enc.loss_curve.last().unwrap();
        assert!(
            last < first * 0.5,
            "loss should at least halve: {first} -> {last}"
        );
    }

    #[test]
    fn embeddings_have_expected_shapes() {
        let ds = small_dataset();
        let enc = train(&ds.pair, &small_cfg());
        assert_eq!(enc.z_source.shape(), (ds.pair.source.num_entities(), 32));
        assert_eq!(enc.z_target.shape(), (ds.pair.target.num_entities(), 32));
    }

    #[test]
    fn aligned_test_pairs_beat_random_pairs_structurally() {
        let ds = small_dataset();
        let enc = train(&ds.pair, &small_cfg());
        let tests = ds.pair.test_pairs();
        let mut aligned = 0.0f64;
        let mut random = 0.0f64;
        let k = tests.len().min(60);
        for i in 0..k {
            let (u, v) = tests[i];
            let (_, v2) = tests[(i + 11) % k];
            aligned +=
                ceaff_sim::cosine(enc.z_source.row(u.index()), enc.z_target.row(v.index())) as f64;
            random +=
                ceaff_sim::cosine(enc.z_source.row(u.index()), enc.z_target.row(v2.index())) as f64;
        }
        assert!(
            aligned > random + 0.05 * k as f64,
            "aligned mean {} vs random mean {}",
            aligned / k as f64,
            random / k as f64
        );
    }

    #[test]
    fn no_seeds_still_produces_embeddings() {
        let mut ds = small_dataset();
        // Rebuild the pair with a 0% seed split.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        ds.pair = ceaff_graph::KgPair::new(
            ds.pair.source.clone(),
            ds.pair.target.clone(),
            ds.pair.alignment.clone(),
            0.0,
            &mut rng,
        );
        let enc = train(&ds.pair, &small_cfg());
        assert!(enc.loss_curve.is_empty());
        assert_eq!(enc.z_source.rows(), ds.pair.source.num_entities());
    }

    #[test]
    fn paper_literal_configuration_runs() {
        // The strictly-literal variant of §IV-A: random trainable inputs,
        // Xavier weights, ReLU, uniform negatives, no early stopping.
        let ds = small_dataset();
        let cfg = GcnConfig {
            dim: 16,
            epochs: 20,
            tie_seed_inputs: false,
            identity_weights: false,
            activation: Activation::Relu,
            hard_negative_pool: 0,
            validation_fraction: 0.0,
            optimizer: OptimKind::Sgd { lr: 0.5 },
            ..GcnConfig::default()
        };
        let enc = train(&ds.pair, &cfg);
        assert_eq!(enc.loss_curve.len(), 20);
        assert_eq!(enc.z_source.rows(), ds.pair.source.num_entities());
        // Loss must decrease under the literal setting too.
        assert!(enc.loss_curve.last().unwrap() < enc.loss_curve.first().unwrap());
    }

    #[test]
    fn early_stopping_never_hurts_structural_quality() {
        // With validation the returned embeddings are at least as good on
        // the held-out criterion as the final epoch's.
        let ds = small_dataset();
        let with_val = train(
            &ds.pair,
            &GcnConfig {
                dim: 16,
                epochs: 60,
                validation_fraction: 0.1,
                ..GcnConfig::default()
            },
        );
        let without_val = train(
            &ds.pair,
            &GcnConfig {
                dim: 16,
                epochs: 60,
                validation_fraction: 0.0,
                ..GcnConfig::default()
            },
        );
        // Compare test-pair separation (diagnostic, loose).
        let sep = |enc: &GcnEncoder| -> f64 {
            let tests = ds.pair.test_pairs();
            let k = tests.len().min(40);
            (0..k)
                .map(|i| {
                    let (u, v) = tests[i];
                    ceaff_sim::cosine(enc.z_source.row(u.index()), enc.z_target.row(v.index()))
                        as f64
                })
                .sum::<f64>()
                / k as f64
        };
        assert!(
            sep(&with_val) >= sep(&without_val) - 0.15,
            "early stopping should not collapse separation: {} vs {}",
            sep(&with_val),
            sep(&without_val)
        );
    }

    #[test]
    fn parameter_counts_match_the_papers_complexity_paragraph() {
        let cfg = GcnConfig {
            dim: 300,
            ..GcnConfig::default()
        };
        // The paper's claim: 2 x ds x ds with ds = 300.
        assert_eq!(cfg.num_weight_parameters(), 2 * 300 * 300);
        // The literal variant optimises exactly that many.
        let literal = GcnConfig {
            train_input: false,
            ..cfg
        };
        assert_eq!(literal.num_trainable_parameters(1000, 1200), 2 * 300 * 300);
        // The default (GCN-Align-style) variant also trains the inputs.
        assert_eq!(
            cfg.num_trainable_parameters(1000, 1200),
            2 * 300 * 300 + 2200 * 300
        );
    }

    #[test]
    fn sgd_variant_also_trains() {
        let ds = small_dataset();
        let cfg = GcnConfig {
            dim: 32,
            epochs: 60,
            optimizer: OptimKind::Sgd { lr: 0.5 },
            ..GcnConfig::default()
        };
        let enc = train(&ds.pair, &cfg);
        let first = enc.loss_curve[0];
        let last = *enc.loss_curve.last().unwrap();
        assert!(last < first, "SGD should make progress: {first} -> {last}");
    }
}
