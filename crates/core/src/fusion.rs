//! Adaptive feature fusion (paper §V).
//!
//! Given `k` feature similarity matrices, the strategy assigns each feature
//! a weight *without training data*, in five stages:
//!
//! 1. **Candidate correspondence generation** — a cell that is maximal both
//!    along its row and its column of feature `k`'s matrix is a *candidate
//!    confident correspondence* of feature `k`;
//! 2. **Candidate filtering** — (a) if features disagree about a source
//!    entity, all of that entity's candidates are dropped; (b) a candidate
//!    shared by *all* `k` features is dropped (it cannot characterise any
//!    feature);
//! 3. **Correspondence weights** — an occurrence of a correspondence found
//!    by `n` features weighs `1/n`; an occurrence whose score exceeds `θ1`
//!    weighs `θ2` instead (capping runaway features so "less effective
//!    features can always contribute", §VII-E);
//! 4. **Feature weights** — feature `k`'s weighting score is the sum of its
//!    retained occurrence weights; weights are the normalised scores (equal
//!    weights when nothing is retained);
//! 5. **Fusion** — the weighted sum of the matrices.
//!
//! [`two_stage_fuse`] applies the paper's composition: semantic and string
//! matrices fuse into a textual matrix first, which then fuses with the
//! structural matrix (§V, "Feature Fusion with Adaptive Weight").

use ceaff_sim::{SimStore, SimilarityMatrix};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Thresholds of the adaptive strategy. Paper defaults: `θ1 = 0.98`,
/// `θ2 = 0.1`, tuned on a validation set (§VII-A).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FusionConfig {
    /// Scores above this are considered "extremely high" and down-weighted.
    pub theta1: f32,
    /// The weight assigned to such extremely-high-score occurrences.
    pub theta2: f32,
    /// Disables the θ1/θ2 cap (the "w/o θ1, θ2" ablation of Table V).
    pub cap_enabled: bool,
}

impl Default for FusionConfig {
    fn default() -> Self {
        Self {
            theta1: 0.98,
            theta2: 0.1,
            cap_enabled: true,
        }
    }
}

/// One candidate confident correspondence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Source row.
    pub source: usize,
    /// Target column.
    pub target: usize,
    /// The score in the producing feature's matrix.
    pub score: f32,
}

/// Diagnostic record of one fusion run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FusionReport {
    /// Final normalised feature weights (sum to 1).
    pub weights: Vec<f32>,
    /// Candidate counts per feature before filtering.
    pub candidates_per_feature: Vec<usize>,
    /// Retained (post-filter) occurrence counts per feature.
    pub retained_per_feature: Vec<usize>,
    /// Whether the equal-weight fallback fired (nothing retained).
    pub fallback_equal: bool,
}

/// Stage 1: the candidate confident correspondences of one feature matrix —
/// cells maximal along both their row and their column. The double-max
/// constraint is deliberately strong; such cells are very likely correct
/// matches (§V).
pub fn confident_correspondences(m: &SimilarityMatrix) -> Vec<Candidate> {
    if m.sources() == 0 || m.targets() == 0 {
        return Vec::new();
    }
    let row_best = m.row_argmaxes();
    let col_best = m.col_argmaxes();
    (0..m.sources())
        .filter_map(|i| {
            let j = row_best[i];
            (col_best[j] == i).then(|| Candidate {
                source: i,
                target: j,
                score: m.get(i, j),
            })
        })
        .collect()
}

/// Stage 1 over either backend. The dense arm is the exact
/// [`confident_correspondences`]; the sparse arm reads row maxima from the
/// stored rows (first entry — canonical order) and column maxima from a
/// single pass over the stored cells, so it costs `O(nnz)` instead of
/// `O(sources × targets)`. Tie-breaks match the dense path (lowest column
/// along a row, lowest row along a column), so a complete store yields the
/// identical candidate set.
pub fn confident_correspondences_store(s: &SimStore) -> Vec<Candidate> {
    match s {
        SimStore::Dense(m) => confident_correspondences(m),
        SimStore::Sparse(sp) => {
            if sp.sources() == 0 || sp.targets() == 0 {
                return Vec::new();
            }
            let col_best = sp.col_best();
            (0..sp.sources())
                .filter_map(|i| {
                    let j = sp.row_argmax(i)?;
                    match col_best[j] {
                        Some((bi, score)) if bi == i => Some(Candidate {
                            source: i,
                            target: j,
                            score,
                        }),
                        _ => None,
                    }
                })
                .collect()
        }
    }
}

/// Stages 2–4, shared by the matrix and store entry points: filter the
/// per-feature candidate sets and turn the retained occurrences into
/// normalised feature weights.
fn weights_from_candidates(per_feature: &[Vec<Candidate>], cfg: &FusionConfig) -> FusionReport {
    let k = per_feature.len();
    let candidates_per_feature: Vec<usize> = per_feature.iter().map(Vec::len).collect();
    if k == 1 {
        return FusionReport {
            weights: vec![1.0],
            candidates_per_feature,
            retained_per_feature: vec![0],
            fallback_equal: false,
        };
    }

    // Stage 2a: drop every candidate of a source entity on which features
    // conflict (propose different targets).
    let mut target_of: HashMap<usize, usize> = HashMap::new();
    let mut conflicted: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for cands in per_feature {
        for c in cands {
            match target_of.get(&c.source) {
                Some(&t) if t != c.target => {
                    conflicted.insert(c.source);
                }
                _ => {
                    target_of.insert(c.source, c.target);
                }
            }
        }
    }
    // Stage 2b: count how many features produced each (source, target) pair;
    // pairs produced by all k features are dropped.
    let mut appearances: HashMap<(usize, usize), usize> = HashMap::new();
    for cands in per_feature {
        for c in cands {
            *appearances.entry((c.source, c.target)).or_insert(0) += 1;
        }
    }

    // Stages 3–4.
    let mut scores = vec![0.0f64; k];
    let mut retained_per_feature = vec![0usize; k];
    for (f, cands) in per_feature.iter().enumerate() {
        for c in cands {
            if conflicted.contains(&c.source) {
                continue;
            }
            let n = appearances[&(c.source, c.target)];
            if n == k {
                continue; // shared by every feature: characterises none
            }
            let w = if cfg.cap_enabled && c.score > cfg.theta1 {
                cfg.theta2
            } else {
                1.0 / n as f32
            };
            scores[f] += w as f64;
            retained_per_feature[f] += 1;
        }
    }
    let total: f64 = scores.iter().sum();
    let (weights, fallback_equal) = if total > 0.0 {
        (scores.iter().map(|&s| (s / total) as f32).collect(), false)
    } else {
        (vec![1.0 / k as f32; k], true)
    };
    FusionReport {
        weights,
        candidates_per_feature,
        retained_per_feature,
        fallback_equal,
    }
}

/// Stages 1–4: compute adaptive feature weights for `mats`.
///
/// Returns the normalised weights and the diagnostic report.
///
/// # Panics
/// Panics if `mats` is empty or shapes disagree.
pub fn adaptive_weights(mats: &[&SimilarityMatrix], cfg: &FusionConfig) -> FusionReport {
    assert!(!mats.is_empty(), "need at least one feature matrix");
    let shape = (mats[0].sources(), mats[0].targets());
    assert!(
        mats.iter().all(|m| (m.sources(), m.targets()) == shape),
        "all feature matrices must share one shape"
    );
    let per_feature: Vec<Vec<Candidate>> =
        mats.iter().map(|m| confident_correspondences(m)).collect();
    weights_from_candidates(&per_feature, cfg)
}

/// Stages 1–4 over stores: identical filtering and weighting, with stage 1
/// dispatched per backend by [`confident_correspondences_store`]. All-dense
/// inputs reproduce [`adaptive_weights`] bitwise.
///
/// # Panics
/// Panics if `stores` is empty or shapes disagree.
pub fn adaptive_weights_store(stores: &[&SimStore], cfg: &FusionConfig) -> FusionReport {
    assert!(!stores.is_empty(), "need at least one feature store");
    let shape = (stores[0].sources(), stores[0].targets());
    assert!(
        stores.iter().all(|s| (s.sources(), s.targets()) == shape),
        "all feature stores must share one shape"
    );
    let per_feature: Vec<Vec<Candidate>> = stores
        .iter()
        .map(|s| confident_correspondences_store(s))
        .collect();
    weights_from_candidates(&per_feature, cfg)
}

/// Stage 5: the weighted sum of the matrices.
///
/// # Panics
/// Panics if lengths or shapes disagree.
pub fn fuse(mats: &[&SimilarityMatrix], weights: &[f32]) -> SimilarityMatrix {
    assert_eq!(mats.len(), weights.len(), "one weight per matrix");
    assert!(!mats.is_empty(), "need at least one matrix");
    let mut out = SimilarityMatrix::zeros(mats[0].sources(), mats[0].targets());
    for (m, &w) in mats.iter().zip(weights) {
        out.add_scaled(m, w);
    }
    out
}

/// Stage 5 over stores. All-dense inputs take the exact dense [`fuse`]
/// (bitwise the golden path). Otherwise the result is sparse: each row is
/// the union of the inputs' stored candidates, every cell accumulated in
/// feature order — the same per-cell f32 addition sequence the dense sweep
/// performs — so complete stores fuse bitwise-identically to dense. Rows
/// fan out across the pool; per-row work is sequential, keeping the result
/// independent of thread count.
///
/// # Panics
/// Panics if lengths or shapes disagree.
pub fn fuse_store(stores: &[&SimStore], weights: &[f32]) -> SimStore {
    use ceaff_sim::{SimScores, SparseTopK};
    assert_eq!(stores.len(), weights.len(), "one weight per store");
    assert!(!stores.is_empty(), "need at least one store");
    let (n, t) = (stores[0].sources(), stores[0].targets());
    assert!(
        stores.iter().all(|s| (s.sources(), s.targets()) == (n, t)),
        "all feature stores must share one shape"
    );
    if stores.iter().all(|s| !s.is_sparse()) {
        let mats: Vec<&SimilarityMatrix> = stores
            .iter()
            .map(|s| s.as_dense().expect("all-dense checked above"))
            .collect();
        return SimStore::Dense(fuse(&mats, weights));
    }
    let build = |i: usize| -> Vec<(u32, f32)> {
        // BTreeMap keys the union of this row's candidate columns; values
        // accumulate contributions strictly in feature order.
        let mut acc: BTreeMap<u32, f32> = BTreeMap::new();
        for (s, &w) in stores.iter().zip(weights) {
            s.for_each_row_entry(i, &mut |c, v| {
                *acc.entry(c as u32).or_insert(0.0) += w * v;
            });
        }
        acc.into_iter().collect()
    };
    let rows: Vec<Vec<(u32, f32)>> = if n < 64 {
        (0..n).map(build).collect()
    } else {
        ceaff_parallel::par_map(n, 16, build)
    };
    let k = rows.iter().map(Vec::len).max().unwrap_or(0).max(1);
    SimStore::Sparse(SparseTopK::from_rows(t, k, rows))
}

/// Adaptive fusion in one call: weights from [`adaptive_weights`], result
/// from [`fuse`].
///
/// ```
/// use ceaff_core::fusion::{adaptive_fuse, FusionConfig};
/// use ceaff_sim::SimilarityMatrix;
/// use ceaff_tensor::Matrix;
///
/// // One sharp feature, one flat feature: the sharp one earns the weight.
/// let sharp = SimilarityMatrix::new(Matrix::from_rows(&[&[0.9, 0.0], &[0.0, 0.9]]));
/// let flat = SimilarityMatrix::new(Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]));
/// let (fused, report) = adaptive_fuse(&[&sharp, &flat], &FusionConfig::default());
/// assert!(report.weights[0] > report.weights[1]);
/// assert_eq!(fused.sources(), 2);
/// ```
pub fn adaptive_fuse(
    mats: &[&SimilarityMatrix],
    cfg: &FusionConfig,
) -> (SimilarityMatrix, FusionReport) {
    let report = adaptive_weights(mats, cfg);
    (fuse(mats, &report.weights), report)
}

/// Adaptive fusion over stores: weights from [`adaptive_weights_store`],
/// result from [`fuse_store`].
pub fn adaptive_fuse_store(stores: &[&SimStore], cfg: &FusionConfig) -> (SimStore, FusionReport) {
    let report = adaptive_weights_store(stores, cfg);
    (fuse_store(stores, &report.weights), report)
}

/// The paper's two-stage composition: `Mn + Ml → Mt`, then `Ms + Mt → M`.
///
/// "Compared with fusing all features simultaneously, our proposed
/// two-stage fusion framework can better adjust weight assignment" (§V).
/// Any of the three inputs may be absent (the feature ablations of
/// Table V); with a single present input it is returned unchanged.
///
/// Returns the fused matrix plus the reports of the textual and final
/// stages (when they ran).
pub fn two_stage_fuse(
    structural: Option<&SimilarityMatrix>,
    semantic: Option<&SimilarityMatrix>,
    string: Option<&SimilarityMatrix>,
    cfg: &FusionConfig,
) -> (SimilarityMatrix, Option<FusionReport>, Option<FusionReport>) {
    let textual: Option<(SimilarityMatrix, Option<FusionReport>)> = match (semantic, string) {
        (Some(n), Some(l)) => {
            let (t, rep) = adaptive_fuse(&[n, l], cfg);
            Some((t, Some(rep)))
        }
        (Some(n), None) => Some((n.clone(), None)),
        (None, Some(l)) => Some((l.clone(), None)),
        (None, None) => None,
    };
    match (structural, textual) {
        (Some(s), Some((t, trep))) => {
            let (m, rep) = adaptive_fuse(&[s, &t], cfg);
            (m, trep, Some(rep))
        }
        (Some(s), None) => (s.clone(), None, None),
        (None, Some((t, trep))) => (t, trep, None),
        (None, None) => panic!("two_stage_fuse needs at least one feature matrix"),
    }
}

/// The two-stage composition over stores: `Mn + Ml → Mt`, then
/// `Ms + Mt → M`, each stage dispatched through [`adaptive_fuse_store`].
/// All-dense inputs reproduce [`two_stage_fuse`] bitwise; sparse inputs
/// keep the result sparse end to end.
pub fn two_stage_fuse_store(
    structural: Option<&SimStore>,
    semantic: Option<&SimStore>,
    string: Option<&SimStore>,
    cfg: &FusionConfig,
) -> (SimStore, Option<FusionReport>, Option<FusionReport>) {
    let textual: Option<(SimStore, Option<FusionReport>)> = match (semantic, string) {
        (Some(n), Some(l)) => {
            let (t, rep) = adaptive_fuse_store(&[n, l], cfg);
            Some((t, Some(rep)))
        }
        (Some(n), None) => Some((n.clone(), None)),
        (None, Some(l)) => Some((l.clone(), None)),
        (None, None) => None,
    };
    match (structural, textual) {
        (Some(s), Some((t, trep))) => {
            let (m, rep) = adaptive_fuse_store(&[s, &t], cfg);
            (m, trep, Some(rep))
        }
        (Some(s), None) => (s.clone(), None, None),
        (None, Some((t, trep))) => (t, trep, None),
        (None, None) => panic!("two_stage_fuse needs at least one feature store"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_tensor::Matrix;
    use proptest::prelude::*;

    fn sm(rows: &[&[f32]]) -> SimilarityMatrix {
        SimilarityMatrix::new(Matrix::from_rows(rows))
    }

    #[test]
    fn confident_correspondences_exact() {
        // (0,0)=0.9 is maximal in both its row and its column -> candidate.
        // Row 1's max (0.7) sits in column 0, whose column max is row 0, so
        // row 1 contributes nothing: the double-max constraint is strong.
        let m = sm(&[&[0.9, 0.1], &[0.7, 0.2]]);
        let c = confident_correspondences(&m);
        assert_eq!(c.len(), 1);
        assert_eq!((c[0].source, c[0].target, c[0].score), (0, 0, 0.9));

        // A diagonal-dominant matrix yields one candidate per row.
        let m = sm(&[&[0.9, 0.0], &[0.0, 0.8]]);
        let c = confident_correspondences(&m);
        assert_eq!(c.len(), 2);
    }

    /// The paper's Figure 3 walk-through, with matrices constructed to
    /// produce exactly the figure's candidate sets:
    /// Ms → {(u2,v2,1.0), (u3,v3,0.4)}, Mn → {(u1,v1,1.0), (u2,v2,1.0)},
    /// Ml → {(u1,v1,0.6), (u2,v3,0.6)}.
    ///
    /// Filtering drops all u2 candidates (Ms/Mn say v2, Ml says v3).
    /// (u3,v3) is unique to Ms → weight 1. (u1,v1) is shared by Mn and Ml →
    /// 1/2 each, but the Mn occurrence scores 1.0 > θ1 → θ2.
    /// Final scores: Ms = 1, Mn = θ2, Ml = 0.5; weights are their
    /// normalisation — exactly the figure's
    /// 1/(1+0.5+θ2), θ2/(1+0.5+θ2), 0.5/(1+0.5+θ2).
    #[test]
    fn figure3_walkthrough() {
        let ms = sm(&[&[0.6, 0.5, 0.2], &[0.7, 1.0, 0.1], &[0.2, 0.2, 0.4]]);
        let mn = sm(&[&[1.0, 0.5, 0.1], &[0.5, 1.0, 0.2], &[0.2, 0.2, 0.15]]);
        let ml = sm(&[&[0.6, 0.5, 0.4], &[0.1, 0.3, 0.6], &[0.4, 0.4, 0.3]]);
        // Verify the candidate sets match the figure.
        let cs: Vec<_> = confident_correspondences(&ms)
            .iter()
            .map(|c| (c.source, c.target))
            .collect();
        assert_eq!(cs, vec![(1, 1), (2, 2)]);
        let cn: Vec<_> = confident_correspondences(&mn)
            .iter()
            .map(|c| (c.source, c.target))
            .collect();
        assert_eq!(cn, vec![(0, 0), (1, 1)]);
        let cl: Vec<_> = confident_correspondences(&ml)
            .iter()
            .map(|c| (c.source, c.target))
            .collect();
        assert_eq!(cl, vec![(0, 0), (1, 2)]);

        let cfg = FusionConfig::default(); // θ1 = 0.98, θ2 = 0.1
        let report = adaptive_weights(&[&ms, &mn, &ml], &cfg);
        let denom = 1.0 + 0.5 + 0.1;
        let expect = [1.0 / denom, 0.1 / denom, 0.5 / denom];
        for (w, e) in report.weights.iter().zip(expect) {
            assert!((w - e).abs() < 1e-5, "weights {:?}", report.weights);
        }
        assert!(!report.fallback_equal);
        assert_eq!(report.retained_per_feature, vec![1, 1, 1]);
    }

    #[test]
    fn cap_disabled_restores_raw_shares() {
        let ms = sm(&[&[0.6, 0.5, 0.2], &[0.7, 1.0, 0.1], &[0.2, 0.2, 0.4]]);
        let mn = sm(&[&[1.0, 0.5, 0.1], &[0.5, 1.0, 0.2], &[0.2, 0.2, 0.15]]);
        let ml = sm(&[&[0.6, 0.5, 0.4], &[0.1, 0.3, 0.6], &[0.4, 0.4, 0.3]]);
        let cfg = FusionConfig {
            cap_enabled: false,
            ..FusionConfig::default()
        };
        let report = adaptive_weights(&[&ms, &mn, &ml], &cfg);
        // Without the cap, Mn's (u1,v1) occurrence weighs 0.5 like Ml's.
        let denom = 1.0 + 0.5 + 0.5;
        let expect = [1.0 / denom, 0.5 / denom, 0.5 / denom];
        for (w, e) in report.weights.iter().zip(expect) {
            assert!((w - e).abs() < 1e-5, "weights {:?}", report.weights);
        }
    }

    #[test]
    fn correspondences_shared_by_all_features_are_dropped() {
        // Both features produce exactly (0,0): nothing characterises either.
        let a = sm(&[&[0.9, 0.1], &[0.2, 0.1]]);
        let b = sm(&[&[0.8, 0.3], &[0.1, 0.2]]);
        // b's candidates: (0,0) and (1,1) — (1,1)=0.2 is row-1 max? 0.2 > 0.1
        // yes, col-1 max? 0.3 > 0.2 no. So only (0,0).
        let report = adaptive_weights(&[&a, &b], &FusionConfig::default());
        assert!(report.fallback_equal);
        assert_eq!(report.weights, vec![0.5, 0.5]);
    }

    #[test]
    fn single_feature_gets_full_weight() {
        let a = sm(&[&[0.9, 0.1], &[0.2, 0.8]]);
        let report = adaptive_weights(&[&a], &FusionConfig::default());
        assert_eq!(report.weights, vec![1.0]);
    }

    #[test]
    fn fuse_weighted_sum() {
        let a = sm(&[&[1.0, 0.0]]);
        let b = sm(&[&[0.0, 1.0]]);
        let f = fuse(&[&a, &b], &[0.75, 0.25]);
        assert!((f.get(0, 0) - 0.75).abs() < 1e-6);
        assert!((f.get(0, 1) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn two_stage_handles_ablations() {
        let s = sm(&[&[0.9, 0.1], &[0.1, 0.8]]);
        let n = sm(&[&[0.7, 0.2], &[0.3, 0.9]]);
        let l = sm(&[&[0.8, 0.0], &[0.0, 0.6]]);
        let (full, trep, frep) =
            two_stage_fuse(Some(&s), Some(&n), Some(&l), &FusionConfig::default());
        assert!(trep.is_some());
        assert!(frep.is_some());
        assert_eq!(full.sources(), 2);

        // w/o structural: only the textual stage runs.
        let (_, trep, frep) = two_stage_fuse(None, Some(&n), Some(&l), &FusionConfig::default());
        assert!(trep.is_some());
        assert!(frep.is_none());

        // w/o semantic and string: the structural matrix passes through.
        let (only_s, trep, frep) = two_stage_fuse(Some(&s), None, None, &FusionConfig::default());
        assert_eq!(only_s, s);
        assert!(trep.is_none());
        assert!(frep.is_none());
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn two_stage_rejects_empty() {
        let _ = two_stage_fuse(None, None, None, &FusionConfig::default());
    }

    #[test]
    fn store_fusion_dense_path_is_bitwise() {
        let s = sm(&[&[0.9, 0.1], &[0.1, 0.8]]);
        let n = sm(&[&[0.7, 0.2], &[0.3, 0.9]]);
        let l = sm(&[&[0.8, 0.0], &[0.0, 0.6]]);
        let cfg = FusionConfig::default();
        let (dense, dt, df) = two_stage_fuse(Some(&s), Some(&n), Some(&l), &cfg);
        let (store, st, sf) = two_stage_fuse_store(
            Some(&SimStore::Dense(s)),
            Some(&SimStore::Dense(n)),
            Some(&SimStore::Dense(l)),
            &cfg,
        );
        assert_eq!(store.as_dense().expect("dense in, dense out"), &dense);
        assert_eq!(dt.map(|r| r.weights), st.map(|r| r.weights));
        assert_eq!(df.map(|r| r.weights), sf.map(|r| r.weights));
    }

    #[test]
    fn complete_sparse_fusion_matches_dense_bitwise() {
        use ceaff_sim::SparseTopK;
        let s = sm(&[&[0.9, 0.1, 0.3], &[0.1, 0.8, 0.2], &[0.4, 0.2, 0.7]]);
        let n = sm(&[&[0.7, 0.2, 0.1], &[0.3, 0.9, 0.4], &[0.1, 0.5, 0.6]]);
        let l = sm(&[&[0.8, 0.0, 0.2], &[0.0, 0.6, 0.1], &[0.2, 0.3, 0.9]]);
        let cfg = FusionConfig::default();
        let (dense, _, _) = two_stage_fuse(Some(&s), Some(&n), Some(&l), &cfg);
        let sp = |m: &SimilarityMatrix| SimStore::Sparse(SparseTopK::from_dense(m, 3));
        let (store, _, _) = two_stage_fuse_store(Some(&sp(&s)), Some(&sp(&n)), Some(&sp(&l)), &cfg);
        let fused = store.as_sparse().expect("sparse in, sparse out");
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    fused.get(i, j).to_bits(),
                    dense.get(i, j).to_bits(),
                    "cell ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn sparse_confident_correspondences_match_dense_on_complete_store() {
        use ceaff_sim::SparseTopK;
        let m = sm(&[&[0.6, 0.5, 0.2], &[0.7, 1.0, 0.1], &[0.2, 0.2, 0.4]]);
        let dense = confident_correspondences(&m);
        let sparse =
            confident_correspondences_store(&SimStore::Sparse(SparseTopK::from_dense(&m, 3)));
        assert_eq!(dense, sparse);
    }

    #[test]
    fn blocked_fusion_keeps_the_candidate_union() {
        use ceaff_sim::SparseTopK;
        // Two sparse features with different per-row candidate sets: the
        // fused row must hold their union, accumulated per cell.
        let a = SimStore::Sparse(SparseTopK::from_rows(
            3,
            1,
            vec![vec![(0, 0.9)], vec![(1, 0.8)]],
        ));
        let b = SimStore::Sparse(SparseTopK::from_rows(
            3,
            1,
            vec![vec![(2, 0.5)], vec![(1, 0.4)]],
        ));
        let fused = fuse_store(&[&a, &b], &[0.5, 0.5]);
        let fused = fused.as_sparse().expect("sparse in, sparse out");
        assert_eq!(fused.nnz(), 3);
        assert!((fused.get(0, 0) - 0.45).abs() < 1e-6);
        assert!((fused.get(0, 2) - 0.25).abs() < 1e-6);
        assert!((fused.get(1, 1) - 0.6).abs() < 1e-6);
        assert_eq!(fused.get(0, 1), 0.0, "never a candidate anywhere");
    }

    proptest! {
        /// Adaptive weights always lie on the probability simplex.
        #[test]
        fn weights_form_simplex(
            a in proptest::collection::vec(0.0f32..1.0, 9),
            b in proptest::collection::vec(0.0f32..1.0, 9),
            c in proptest::collection::vec(0.0f32..1.0, 9),
        ) {
            let ma = SimilarityMatrix::new(Matrix::from_vec(3, 3, a));
            let mb = SimilarityMatrix::new(Matrix::from_vec(3, 3, b));
            let mc = SimilarityMatrix::new(Matrix::from_vec(3, 3, c));
            let report = adaptive_weights(&[&ma, &mb, &mc], &FusionConfig::default());
            let sum: f32 = report.weights.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "weights {:?}", report.weights);
            prop_assert!(report.weights.iter().all(|&w| (0.0..=1.0 + 1e-6).contains(&w)));
        }

        /// Fusing a matrix with itself under any simplex weights returns it.
        #[test]
        fn self_fusion_is_identity(vals in proptest::collection::vec(0.0f32..1.0, 9), w in 0.0f32..1.0) {
            let m = SimilarityMatrix::new(Matrix::from_vec(3, 3, vals));
            let f = fuse(&[&m, &m], &[w, 1.0 - w]);
            for i in 0..3 {
                for j in 0..3 {
                    prop_assert!((f.get(i, j) - m.get(i, j)).abs() < 1e-5);
                }
            }
        }
    }
}
