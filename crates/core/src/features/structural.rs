//! The structural feature `Ms` (paper §IV-A): cosine similarity of
//! GCN-encoded entity embeddings.

use super::Feature;
use crate::budget::ExecBudget;
use crate::checkpoint::Checkpointer;
use crate::error::CeaffError;
use crate::gcn::{self, GcnConfig, GcnEncoder};
use ceaff_graph::{EntityId, KgPair};
use ceaff_sim::{cosine_similarity_matrix, CandidateSet, SimStore, SimilarityMatrix, SparseTopK};
use ceaff_telemetry::Telemetry;
use ceaff_tensor::Matrix;

/// A trained structural feature.
#[derive(Debug, Clone)]
pub struct StructuralFeature {
    /// L2-row-normalised source embeddings (all entities).
    z_source: Matrix,
    /// L2-row-normalised target embeddings (all entities).
    z_target: Matrix,
    test: SimStore,
    /// The encoder's training-loss trajectory (diagnostics).
    pub loss_curve: Vec<f32>,
}

impl StructuralFeature {
    /// Train the GCN on `pair`'s seeds and compute the test matrix.
    pub fn compute(pair: &KgPair, cfg: &GcnConfig) -> Self {
        Self::compute_traced(pair, cfg, &Telemetry::disabled())
    }

    /// [`StructuralFeature::compute`] with telemetry: encoder training is
    /// timed under the `"gcn"` stage and emits per-epoch loss gauges.
    pub fn compute_traced(pair: &KgPair, cfg: &GcnConfig, telemetry: &Telemetry) -> Self {
        let encoder = gcn::train_traced(pair, cfg, telemetry);
        Self::from_encoder(pair, encoder)
    }

    /// Fallible, checkpoint-aware variant of
    /// [`StructuralFeature::compute_traced`]: with a [`Checkpointer`] the
    /// GCN saves/resumes its training state, and numeric divergence comes
    /// back as a typed error instead of a panic.
    pub fn try_compute_traced(
        pair: &KgPair,
        cfg: &GcnConfig,
        telemetry: &Telemetry,
        checkpointer: Option<&Checkpointer>,
    ) -> Result<Self, CeaffError> {
        let encoder = gcn::try_train_traced(pair, cfg, telemetry, checkpointer)?;
        Ok(Self::from_encoder(pair, encoder))
    }

    /// [`StructuralFeature::try_compute_traced`] under an execution
    /// budget: GCN training consumes one budget step per epoch and stops
    /// early (at the best snapshot so far, with a degradation record)
    /// when the budget runs out — see
    /// [`gcn::try_train_budgeted`](crate::gcn::try_train_budgeted).
    pub fn try_compute_budgeted(
        pair: &KgPair,
        cfg: &GcnConfig,
        telemetry: &Telemetry,
        checkpointer: Option<&Checkpointer>,
        budget: &ExecBudget,
    ) -> Result<Self, CeaffError> {
        let encoder = gcn::try_train_budgeted(pair, cfg, telemetry, checkpointer, budget)?;
        Ok(Self::from_encoder(pair, encoder))
    }

    /// [`StructuralFeature::try_compute_budgeted`] scoring only the
    /// blocked candidate pairs into a sparse top-k store. Training cost is
    /// unchanged; the `O(n·t)` pairwise cosine stage shrinks to
    /// `O(|candidates|)` dot products. No checkpointer: blocked runs are
    /// cheap to restart and the checkpoint format is dense-only.
    pub fn try_compute_budgeted_blocked(
        pair: &KgPair,
        cfg: &GcnConfig,
        telemetry: &Telemetry,
        budget: &ExecBudget,
        candidates: &CandidateSet,
        k: usize,
    ) -> Result<Self, CeaffError> {
        let encoder = gcn::try_train_budgeted(pair, cfg, telemetry, None, budget)?;
        Ok(Self::from_encoder_blocked(pair, encoder, candidates, k))
    }

    /// Build from an already-trained encoder (lets callers reuse one
    /// training run across ablations).
    pub fn from_encoder(pair: &KgPair, encoder: GcnEncoder) -> Self {
        let GcnEncoder {
            mut z_source,
            mut z_target,
            loss_curve,
        } = encoder;
        z_source.l2_normalize_rows();
        z_target.l2_normalize_rows();
        let src_idx: Vec<usize> = pair.test_sources().iter().map(|e| e.index()).collect();
        let tgt_idx: Vec<usize> = pair.test_targets().iter().map(|e| e.index()).collect();
        let zs = z_source.gather_rows(&src_idx);
        let zt = z_target.gather_rows(&tgt_idx);
        let test = SimStore::Dense(cosine_similarity_matrix(&zs, &zt));
        Self {
            z_source,
            z_target,
            test,
            loss_curve,
        }
    }

    /// [`StructuralFeature::from_encoder`], scoring only the blocked
    /// candidate pairs.
    pub fn from_encoder_blocked(
        pair: &KgPair,
        encoder: GcnEncoder,
        candidates: &CandidateSet,
        k: usize,
    ) -> Self {
        let GcnEncoder {
            mut z_source,
            mut z_target,
            loss_curve,
        } = encoder;
        z_source.l2_normalize_rows();
        z_target.l2_normalize_rows();
        let src_idx: Vec<usize> = pair.test_sources().iter().map(|e| e.index()).collect();
        let tgt_idx: Vec<usize> = pair.test_targets().iter().map(|e| e.index()).collect();
        let zs = z_source.gather_rows(&src_idx);
        let zt = z_target.gather_rows(&tgt_idx);
        // Rows are unit-normalised, so the dot product is the cosine.
        let sparse = SparseTopK::from_candidates(candidates, k, |i, j| {
            ceaff_tensor::dot(zs.row(i), zt.row(j as usize))
        });
        Self {
            z_source,
            z_target,
            test: SimStore::Sparse(sparse),
            loss_curve,
        }
    }

    /// [`StructuralFeature::compute_traced`] over a blocked candidate set.
    pub fn compute_traced_blocked(
        pair: &KgPair,
        cfg: &GcnConfig,
        telemetry: &Telemetry,
        candidates: &CandidateSet,
        k: usize,
    ) -> Self {
        let encoder = gcn::train_traced(pair, cfg, telemetry);
        Self::from_encoder_blocked(pair, encoder, candidates, k)
    }

    /// Rebuild from checkpointed parts without recomputing anything.
    ///
    /// The embeddings must already be L2-row-normalised (they are saved
    /// that way): re-normalising an already-normalised matrix is *not*
    /// bitwise-stable, and a restored stage must be bit-identical to the
    /// run that saved it.
    pub fn from_saved_parts(
        z_source: Matrix,
        z_target: Matrix,
        test: SimilarityMatrix,
        loss_curve: Vec<f32>,
    ) -> Self {
        Self {
            z_source,
            z_target,
            test: SimStore::Dense(test),
            loss_curve,
        }
    }

    /// Assemble from already-patched parts (the delta pipeline's
    /// constructor). The embeddings must carry whatever normalisation
    /// [`StructuralFeature::from_encoder`] would have applied — the
    /// delta patcher reproduces it bit-for-bit.
    pub(crate) fn from_store_parts(
        z_source: Matrix,
        z_target: Matrix,
        test: SimStore,
        loss_curve: Vec<f32>,
    ) -> Self {
        Self {
            z_source,
            z_target,
            test,
            loss_curve,
        }
    }

    /// The full (all-entity) source embedding matrix.
    pub fn source_embeddings(&self) -> &Matrix {
        &self.z_source
    }

    /// The full (all-entity) target embedding matrix.
    pub fn target_embeddings(&self) -> &Matrix {
        &self.z_target
    }
}

impl Feature for StructuralFeature {
    fn name(&self) -> &'static str {
        "structural"
    }

    fn test_store(&self) -> &SimStore {
        &self.test
    }

    fn score(&self, u: EntityId, v: EntityId) -> f32 {
        // Rows are already unit-normalised; the dot product is the cosine.
        ceaff_tensor::dot(self.z_source.row(u.index()), self.z_target.row(v.index()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::test_support::{dataset, diagonal_margin};
    use ceaff_datagen::NameChannel;

    fn cfg() -> GcnConfig {
        GcnConfig {
            dim: 32,
            epochs: 60,
            ..GcnConfig::default()
        }
    }

    #[test]
    fn test_matrix_separates_ground_truth() {
        let ds = dataset(NameChannel::Identical { typo_rate: 0.0 });
        let f = StructuralFeature::compute(&ds.pair, &cfg());
        let margin = diagonal_margin(f.test_matrix());
        assert!(
            margin > 0.05,
            "structural diagonal margin too small: {margin}"
        );
    }

    #[test]
    fn score_is_consistent_with_test_matrix() {
        let ds = dataset(NameChannel::Identical { typo_rate: 0.0 });
        let f = StructuralFeature::compute(&ds.pair, &cfg());
        let sources = ds.pair.test_sources();
        let targets = ds.pair.test_targets();
        for i in [0usize, 3, 7] {
            for j in [0usize, 5] {
                let expect = f.test_matrix().get(i, j);
                let got = f.score(sources[i], targets[j]);
                assert!((expect - got).abs() < 1e-4, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn matrix_dimensions_match_test_split() {
        let ds = dataset(NameChannel::Identical { typo_rate: 0.0 });
        let f = StructuralFeature::compute(&ds.pair, &cfg());
        assert_eq!(f.test_matrix().sources(), ds.pair.test_pairs().len());
        assert_eq!(f.test_matrix().targets(), ds.pair.test_pairs().len());
    }
}
