//! The semantic feature `Mn` (paper §IV-B): cosine similarity of averaged
//! word-embedding name representations, with cross-lingual names routed
//! through a shared (MUSE-style) space by the caller's choice of embedders.

use super::Feature;
use ceaff_embed::{name_embedding_matrix, WordEmbedder};
use ceaff_graph::{EntityId, KgPair, KnowledgeGraph};
use ceaff_sim::{cosine_similarity_matrix, CandidateSet, SimStore, SimilarityMatrix, SparseTopK};
use ceaff_tensor::Matrix;

/// A computed semantic feature.
#[derive(Debug, Clone)]
pub struct SemanticFeature {
    /// L2-row-normalised name embeddings of every source entity.
    n_source: Matrix,
    /// L2-row-normalised name embeddings of every target entity.
    n_target: Matrix,
    test: SimStore,
}

fn all_names(kg: &KnowledgeGraph) -> Vec<&str> {
    kg.entity_ids()
        .map(|e| kg.entity_name(e).expect("interned entity has a name"))
        .collect()
}

impl SemanticFeature {
    /// Embed every entity name of both KGs (matrix `N` of the paper) and
    /// compute the test similarity matrix. Fully-out-of-vocabulary names
    /// get zero rows — and hence zero similarity to everything, the
    /// degradation the paper attributes to missing word-embedding entries.
    pub fn compute(
        pair: &KgPair,
        source_embedder: &dyn WordEmbedder,
        target_embedder: &dyn WordEmbedder,
    ) -> Self {
        assert_eq!(
            source_embedder.dim(),
            target_embedder.dim(),
            "embedders must share one vector space"
        );
        let mut n_source = name_embedding_matrix(source_embedder, &all_names(&pair.source));
        let mut n_target = name_embedding_matrix(target_embedder, &all_names(&pair.target));
        n_source.l2_normalize_rows();
        n_target.l2_normalize_rows();
        let src_idx: Vec<usize> = pair.test_sources().iter().map(|e| e.index()).collect();
        let tgt_idx: Vec<usize> = pair.test_targets().iter().map(|e| e.index()).collect();
        let test = SimStore::Dense(cosine_similarity_matrix(
            &n_source.gather_rows(&src_idx),
            &n_target.gather_rows(&tgt_idx),
        ));
        Self {
            n_source,
            n_target,
            test,
        }
    }

    /// Like [`SemanticFeature::compute`], but scores only the blocked
    /// candidate pairs into a sparse top-k store. Name embedding is still
    /// linear in the KG sizes; only the `O(n·t)` pairwise cosine stage is
    /// replaced by `O(|candidates|)` dot products.
    pub fn compute_blocked(
        pair: &KgPair,
        source_embedder: &dyn WordEmbedder,
        target_embedder: &dyn WordEmbedder,
        candidates: &CandidateSet,
        k: usize,
    ) -> Self {
        assert_eq!(
            source_embedder.dim(),
            target_embedder.dim(),
            "embedders must share one vector space"
        );
        let mut n_source = name_embedding_matrix(source_embedder, &all_names(&pair.source));
        let mut n_target = name_embedding_matrix(target_embedder, &all_names(&pair.target));
        n_source.l2_normalize_rows();
        n_target.l2_normalize_rows();
        let src_idx: Vec<usize> = pair.test_sources().iter().map(|e| e.index()).collect();
        let tgt_idx: Vec<usize> = pair.test_targets().iter().map(|e| e.index()).collect();
        let zs = n_source.gather_rows(&src_idx);
        let zt = n_target.gather_rows(&tgt_idx);
        // Rows are unit-normalised, so the dot product is the cosine.
        let sparse = SparseTopK::from_candidates(candidates, k, |i, j| {
            ceaff_tensor::dot(zs.row(i), zt.row(j as usize))
        });
        Self {
            n_source,
            n_target,
            test: SimStore::Sparse(sparse),
        }
    }

    /// Rebuild from checkpointed parts without recomputing anything. The
    /// embedding matrices must already be L2-row-normalised (saved that
    /// way; re-normalising is not bitwise-stable).
    pub fn from_saved_parts(n_source: Matrix, n_target: Matrix, test: SimilarityMatrix) -> Self {
        Self {
            n_source,
            n_target,
            test: SimStore::Dense(test),
        }
    }

    /// Assemble from already-patched parts (the delta pipeline's
    /// constructor). Same normalisation contract as
    /// [`SemanticFeature::from_saved_parts`], but store-shaped so both
    /// the dense and the sparse candidate strategy go through it.
    pub(crate) fn from_store_parts(n_source: Matrix, n_target: Matrix, test: SimStore) -> Self {
        Self {
            n_source,
            n_target,
            test,
        }
    }

    /// The full source name-embedding matrix `N₁`.
    pub fn source_embeddings(&self) -> &Matrix {
        &self.n_source
    }

    /// The full target name-embedding matrix `N₂`.
    pub fn target_embeddings(&self) -> &Matrix {
        &self.n_target
    }

    /// Fraction of target entities whose name embedded to zero (fully OOV).
    pub fn target_oov_fraction(&self) -> f64 {
        let zero_rows = (0..self.n_target.rows())
            .filter(|&r| self.n_target.row_norm(r) == 0.0)
            .count();
        zero_rows as f64 / self.n_target.rows().max(1) as f64
    }
}

impl Feature for SemanticFeature {
    fn name(&self) -> &'static str {
        "semantic"
    }

    fn test_store(&self) -> &SimStore {
        &self.test
    }

    fn score(&self, u: EntityId, v: EntityId) -> f32 {
        ceaff_tensor::dot(self.n_source.row(u.index()), self.n_target.row(v.index()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::test_support::{dataset, diagonal_margin};
    use ceaff_datagen::NameChannel;

    #[test]
    fn mono_lingual_names_separate_strongly() {
        let ds = dataset(NameChannel::Identical { typo_rate: 0.0 });
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let f = SemanticFeature::compute(&ds.pair, &src, &tgt);
        let margin = diagonal_margin(f.test_matrix());
        assert!(margin > 0.3, "semantic margin too small: {margin}");
    }

    #[test]
    fn distant_lingual_works_through_the_lexicon() {
        let ds = dataset(NameChannel::DistantLingual);
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let f = SemanticFeature::compute(&ds.pair, &src, &tgt);
        let margin = diagonal_margin(f.test_matrix());
        assert!(
            margin > 0.2,
            "cross-lingual semantic margin too small: {margin}"
        );
    }

    #[test]
    fn oov_fraction_grows_as_coverage_shrinks() {
        let mut lo = ceaff_datagen::GenConfig {
            aligned_entities: 120,
            channel: NameChannel::DistantLingual,
            lexicon_coverage: 0.3,
            vocab_size: 400,
            ..ceaff_datagen::GenConfig::default()
        };
        let ds_lo = ceaff_datagen::generate(&lo);
        lo.lexicon_coverage = 1.0;
        let ds_hi = ceaff_datagen::generate(&lo);
        let f_lo = SemanticFeature::compute(
            &ds_lo.pair,
            &ds_lo.source_embedder(16),
            &ds_lo.target_embedder(16),
        );
        let f_hi = SemanticFeature::compute(
            &ds_hi.pair,
            &ds_hi.source_embedder(16),
            &ds_hi.target_embedder(16),
        );
        assert!(
            f_lo.target_oov_fraction() > f_hi.target_oov_fraction(),
            "lower lexicon coverage must raise OOV: {} vs {}",
            f_lo.target_oov_fraction(),
            f_hi.target_oov_fraction()
        );
    }

    #[test]
    fn score_matches_matrix() {
        let ds = dataset(NameChannel::Identical { typo_rate: 0.02 });
        let f =
            SemanticFeature::compute(&ds.pair, &ds.source_embedder(32), &ds.target_embedder(32));
        let s = ds.pair.test_sources();
        let t = ds.pair.test_targets();
        assert!((f.test_matrix().get(2, 4) - f.score(s[2], t[4])).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "share one vector space")]
    fn dimension_mismatch_rejected() {
        let ds = dataset(NameChannel::Identical { typo_rate: 0.0 });
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(16);
        let _ = SemanticFeature::compute(&ds.pair, &src, &tgt);
    }
}
