//! An attribute-type feature `Ma` — a *fourth* feature demonstrating the
//! paper's central motivation for adaptive fusion: hand-tuning weights
//! "becomes impractical with the increase of features" (§I), while the
//! adaptive strategy extends to any number of similarity matrices
//! unchanged.
//!
//! The signal is the Jaccard overlap of attribute-**type** sets (the
//! JAPE/GCN-Align view); like real attribute data it is noisy and
//! incomplete, so fusion should assign it a modest weight — which is
//! exactly what makes it a good stress test for weight assignment.

use super::Feature;
use ceaff_graph::{AttributeTable, EntityId, KgPair};
use ceaff_sim::{SimStore, SimilarityMatrix};

/// A computed attribute feature.
#[derive(Debug, Clone)]
pub struct AttributeFeature {
    source: AttributeTable,
    target: AttributeTable,
    test: SimStore,
}

impl AttributeFeature {
    /// Compute the test-set Jaccard matrix between attribute-type sets.
    ///
    /// # Panics
    /// Panics if the tables do not cover the KGs' entities.
    pub fn compute(pair: &KgPair, source: &AttributeTable, target: &AttributeTable) -> Self {
        assert!(
            source.num_entities() >= pair.source.num_entities(),
            "source attribute table does not cover the source KG"
        );
        assert!(
            target.num_entities() >= pair.target.num_entities(),
            "target attribute table does not cover the target KG"
        );
        let sources = pair.test_sources();
        let targets = pair.test_targets();
        let mut test = SimilarityMatrix::zeros(sources.len(), targets.len());
        for (i, &u) in sources.iter().enumerate() {
            for (j, &v) in targets.iter().enumerate() {
                test.set(i, j, source.jaccard(u, target, v));
            }
        }
        Self {
            source: source.clone(),
            target: target.clone(),
            test: SimStore::Dense(test),
        }
    }
}

impl Feature for AttributeFeature {
    fn name(&self) -> &'static str {
        "attribute"
    }

    fn test_store(&self) -> &SimStore {
        &self.test
    }

    fn score(&self, u: EntityId, v: EntityId) -> f32 {
        self.source.jaccard(u, &self.target, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::test_support::{dataset, diagonal_margin};
    use ceaff_datagen::NameChannel;

    #[test]
    fn attribute_feature_carries_weak_but_real_signal() {
        let ds = dataset(NameChannel::Identical { typo_rate: 0.0 });
        let f = AttributeFeature::compute(&ds.pair, &ds.source_attributes, &ds.target_attributes);
        let margin = diagonal_margin(f.test_matrix());
        assert!(margin > 0.02, "attribute margin too small: {margin}");
        // But much weaker than the name features — the realistic profile.
        assert!(
            margin < 0.6,
            "attribute margin implausibly strong: {margin}"
        );
    }

    #[test]
    fn score_matches_matrix() {
        let ds = dataset(NameChannel::Identical { typo_rate: 0.0 });
        let f = AttributeFeature::compute(&ds.pair, &ds.source_attributes, &ds.target_attributes);
        let s = ds.pair.test_sources();
        let t = ds.pair.test_targets();
        assert_eq!(f.test_matrix().get(3, 5), f.score(s[3], t[5]));
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn rejects_undersized_tables() {
        let ds = dataset(NameChannel::Identical { typo_rate: 0.0 });
        let tiny = AttributeTable::new(1, 4);
        let _ = AttributeFeature::compute(&ds.pair, &tiny, &ds.target_attributes);
    }
}
