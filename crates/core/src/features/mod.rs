//! The paper's three representative features (§IV): structural (GCN),
//! semantic (averaged name embeddings) and string (Levenshtein ratio).
//!
//! Each computed feature exposes two views:
//!
//! * [`Feature::test_store`] — the `test-sources × test-targets`
//!   similarity store (`Ms`, `Mn`, `Ml`) consumed by fusion and matching,
//!   dense or sparse top-k depending on the candidate strategy the feature
//!   was computed under;
//! * [`Feature::score`] — the same similarity for *arbitrary* entity pairs,
//!   which the learning-based (logistic regression) weighting baseline
//!   needs to score seed pairs and their corruptions (§VII-E).

mod attribute;
mod semantic;
mod string;
mod structural;

pub use attribute::AttributeFeature;
pub use semantic::SemanticFeature;
pub use string::StringFeature;
pub use structural::StructuralFeature;

use ceaff_graph::EntityId;
use ceaff_sim::{SimStore, SimilarityMatrix};

/// A computed alignment feature.
pub trait Feature: Send + Sync {
    /// Short identifier (`"structural"`, `"semantic"`, `"string"`).
    fn name(&self) -> &'static str;

    /// The test-set similarity store (rows = test sources in test order,
    /// columns = test targets in test order) — dense for the paper's exact
    /// pipeline, sparse top-k when the feature was scored over a blocked
    /// candidate set.
    fn test_store(&self) -> &SimStore;

    /// Dense-only bridge to the pre-`SimStore` API.
    ///
    /// # Panics
    /// Panics when the feature is backed by a sparse store — callers that
    /// may see blocked features must use [`Feature::test_store`].
    fn test_matrix(&self) -> &SimilarityMatrix {
        self.test_store().as_dense().expect(
            "Feature::test_matrix needs a dense store; use test_store() for blocked features",
        )
    }

    /// Similarity between any source-KG entity and any target-KG entity.
    fn score(&self, u: EntityId, v: EntityId) -> f32;
}

#[cfg(test)]
pub(crate) mod test_support {
    use ceaff_datagen::{GenConfig, GeneratedDataset, NameChannel};

    /// A small deterministic dataset shared by the feature tests.
    pub fn dataset(channel: NameChannel) -> GeneratedDataset {
        ceaff_datagen::generate(&GenConfig {
            aligned_entities: 120,
            extra_frac: 0.1,
            avg_degree: 8.0,
            overlap: 0.85,
            channel,
            vocab_size: 400,
            lexicon_coverage: 0.95,
            semantic_noise: 0.05,
            ..GenConfig::default()
        })
    }

    /// Mean of the diagonal minus mean of the off-diagonal — a quick
    /// separation score for a feature matrix whose ground truth is the
    /// diagonal.
    pub fn diagonal_margin(m: &ceaff_sim::SimilarityMatrix) -> f64 {
        let n = m.sources().min(m.targets());
        let mut diag = 0.0f64;
        let mut off = 0.0f64;
        let mut off_n = 0usize;
        for i in 0..n {
            diag += m.get(i, i) as f64;
            for j in 0..n {
                if j != i {
                    off += m.get(i, j) as f64;
                    off_n += 1;
                }
            }
        }
        diag / n as f64 - off / off_n.max(1) as f64
    }
}
