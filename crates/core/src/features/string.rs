//! The string feature `Ml` (paper §IV-C): pairwise Levenshtein ratio
//! between entity names, with substitution cost 2 (`lev*`).
//!
//! The paper's argument for this "largely overlooked" feature: it needs no
//! external resources, has no out-of-vocabulary failure mode, and is
//! extremely effective when the two KGs share a script — mono-lingual pairs
//! and close language pairs (§VII-C, §VII-D).

use super::Feature;
use ceaff_graph::{EntityId, KgPair};
use ceaff_sim::{
    levenshtein_ratio, string_similarity_matrix, CandidateSet, SimStore, SimilarityMatrix,
    SparseTopK,
};

/// A computed string feature. Entity names are retained so arbitrary pairs
/// can be scored on demand (used by the logistic-regression baseline).
#[derive(Debug, Clone)]
pub struct StringFeature {
    source_names: Vec<String>,
    target_names: Vec<String>,
    test: SimStore,
}

fn kg_names(pair: &KgPair) -> (Vec<String>, Vec<String>) {
    let source_names: Vec<String> = pair
        .source
        .entity_ids()
        .map(|e| pair.source.entity_name(e).expect("interned").to_owned())
        .collect();
    let target_names: Vec<String> = pair
        .target
        .entity_ids()
        .map(|e| pair.target.entity_name(e).expect("interned").to_owned())
        .collect();
    (source_names, target_names)
}

impl StringFeature {
    /// Compute the dense test-set Levenshtein-ratio matrix.
    pub fn compute(pair: &KgPair) -> Self {
        let (source_names, target_names) = kg_names(pair);
        let src_test: Vec<&str> = pair
            .test_sources()
            .iter()
            .map(|e| source_names[e.index()].as_str())
            .collect();
        let tgt_test: Vec<&str> = pair
            .test_targets()
            .iter()
            .map(|e| target_names[e.index()].as_str())
            .collect();
        let test = SimStore::Dense(string_similarity_matrix(&src_test, &tgt_test));
        Self {
            source_names,
            target_names,
            test,
        }
    }

    /// Compute a sparse test store scoring only the blocked candidate
    /// pairs: `O(|candidates|)` Levenshtein calls instead of the dense
    /// `O(n·t)`. Rows keep at most `k` entries in canonical order.
    pub fn compute_blocked(pair: &KgPair, candidates: &CandidateSet, k: usize) -> Self {
        let (source_names, target_names) = kg_names(pair);
        let src_test: Vec<&str> = pair
            .test_sources()
            .iter()
            .map(|e| source_names[e.index()].as_str())
            .collect();
        let tgt_test: Vec<&str> = pair
            .test_targets()
            .iter()
            .map(|e| target_names[e.index()].as_str())
            .collect();
        let sparse = SparseTopK::from_candidates(candidates, k, |i, j| {
            levenshtein_ratio(src_test[i], tgt_test[j as usize])
        });
        Self {
            source_names,
            target_names,
            test: SimStore::Sparse(sparse),
        }
    }

    /// Rebuild from a checkpointed test matrix. Names are cheap to derive
    /// from the KG pair again; only the O(n²·len²) similarity matrix is
    /// worth saving.
    pub fn from_saved_parts(pair: &KgPair, test: SimilarityMatrix) -> Self {
        let (source_names, target_names) = kg_names(pair);
        Self {
            source_names,
            target_names,
            test: SimStore::Dense(test),
        }
    }

    /// Assemble from an already-patched store (the delta pipeline's
    /// constructor); names are re-derived from the updated pair.
    pub(crate) fn from_store(pair: &KgPair, test: SimStore) -> Self {
        let (source_names, target_names) = kg_names(pair);
        Self {
            source_names,
            target_names,
            test,
        }
    }
}

impl Feature for StringFeature {
    fn name(&self) -> &'static str {
        "string"
    }

    fn test_store(&self) -> &SimStore {
        &self.test
    }

    fn score(&self, u: EntityId, v: EntityId) -> f32 {
        levenshtein_ratio(&self.source_names[u.index()], &self.target_names[v.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::test_support::{dataset, diagonal_margin};
    use ceaff_datagen::NameChannel;

    #[test]
    fn mono_lingual_string_is_nearly_perfect() {
        let ds = dataset(NameChannel::Identical { typo_rate: 0.02 });
        let f = StringFeature::compute(&ds.pair);
        let margin = diagonal_margin(f.test_matrix());
        assert!(margin > 0.5, "mono string margin too small: {margin}");
        // Diagonal should be ~1.
        let m = f.test_matrix();
        let mean_diag: f32 =
            (0..m.sources()).map(|i| m.get(i, i)).sum::<f32>() / m.sources() as f32;
        assert!(mean_diag > 0.95, "mean diagonal {mean_diag}");
    }

    #[test]
    fn close_lingual_string_still_separates() {
        let ds = dataset(NameChannel::CloseLingual {
            morph_rate: 0.5,
            replace_rate: 0.2,
        });
        let f = StringFeature::compute(&ds.pair);
        let margin = diagonal_margin(f.test_matrix());
        assert!(margin > 0.2, "close-lingual string margin: {margin}");
    }

    #[test]
    fn distant_lingual_string_is_useless() {
        let ds = dataset(NameChannel::DistantLingual);
        let f = StringFeature::compute(&ds.pair);
        let margin = diagonal_margin(f.test_matrix());
        assert!(
            margin.abs() < 0.1,
            "distant-lingual string should carry no signal: {margin}"
        );
    }

    #[test]
    fn score_matches_matrix_and_names() {
        let ds = dataset(NameChannel::Identical { typo_rate: 0.0 });
        let f = StringFeature::compute(&ds.pair);
        let s = ds.pair.test_sources();
        let t = ds.pair.test_targets();
        assert!((f.test_matrix().get(1, 1) - f.score(s[1], t[1])).abs() < 1e-6);
        // With a zero typo rate aligned names are identical: ratio 1.
        assert_eq!(f.score(s[1], t[1]), 1.0);
    }
}
