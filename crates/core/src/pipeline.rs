//! The end-to-end CEAFF pipeline (paper Figure 2): feature generation →
//! adaptive feature fusion → collective EA — with a switch for every
//! ablation of Table V.
//!
//! The fallible entry points ([`try_run`], [`try_run_with_features`],
//! [`try_run_single_stage`]) return `Result<CeaffOutput, CeaffError>` and
//! thread a [`Telemetry`] handle through every stage; the produced
//! [`CeaffOutput::trace`] records stage timings, counters and (with an
//! active event stream) the full event sequence of the run.

use crate::budget::{ExecBudget, StopReason};
use crate::checkpoint::{self, CheckpointPolicy, Checkpointer};
use crate::error::CeaffError;
use crate::eval::{accuracy, ranking_metrics_store, RankingMetrics};
use crate::features::{Feature, SemanticFeature, StringFeature, StructuralFeature};

use crate::fusion::{
    adaptive_fuse_store, fuse_store, two_stage_fuse_store, FusionConfig, FusionReport,
};
use crate::gcn::{GcnConfig, OptimKind};
use crate::lr::{learn_weights, LrConfig};
use crate::matching::{MatcherKind, Matching};
use ceaff_embed::WordEmbedder;
use ceaff_graph::KgPair;
use ceaff_sim::{BlockingConfig, CandidateSet, SimStore, SimilarityMatrix};
use ceaff_telemetry::{Degradation, RunTrace, Telemetry};
use serde::{Deserialize, Serialize};

/// How candidate target entities are generated for each test source
/// (tentpole of the sub-quadratic redesign).
#[derive(Debug, Clone, Serialize, Default, PartialEq)]
pub enum CandidateStrategy {
    /// Score every source against every target — the paper's exact
    /// pipeline. Feature stores are dense; golden metrics are computed on
    /// this path.
    #[default]
    Dense,
    /// Generate candidates by name-trigram blocking
    /// ([`ceaff_sim::build_candidates`]) and score only those pairs.
    /// Feature stores are sparse top-k ([`ceaff_sim::SparseTopK`]); memory
    /// and similarity-stage time drop from `O(n·t)` to `O(n·k)`.
    Blocked {
        /// Per-row candidate cap kept in each sparse store.
        k: usize,
        /// Blocking-stage tuning (trigram band width etc.).
        blocking: BlockingConfig,
    },
}

impl CandidateStrategy {
    /// `true` for [`CandidateStrategy::Dense`].
    pub fn is_dense(&self) -> bool {
        matches!(self, CandidateStrategy::Dense)
    }
}

// Hand-written so configs serialized before the `candidates` field existed
// keep loading: the serde shim resolves a missing field to `Value::Null`,
// which must mean "the default" (Dense) — the `#[serde(default)]`
// semantics the shim's derive does not implement itself.
impl Deserialize for CandidateStrategy {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Null => Ok(CandidateStrategy::Dense),
            serde::Value::String(s) if s == "Dense" => Ok(CandidateStrategy::Dense),
            _ => match v.get("Blocked").map(|p| p.as_object()) {
                Some(Some(fields)) => Ok(CandidateStrategy::Blocked {
                    k: serde::de::field(fields, "k")?,
                    blocking: serde::de::field(fields, "blocking")?,
                }),
                _ => Err(serde::Error::custom(
                    "expected \"Dense\" or {\"Blocked\": {..}} for CandidateStrategy",
                )),
            },
        }
    }
}

/// How the structural feature `Ms` is encoded.
#[derive(Debug, Clone, Copy, Serialize, Default, PartialEq)]
pub enum StructuralMode {
    /// The paper's GCN, trained on the seed alignment with a margin
    /// ranking loss. Highest quality, but every epoch couples all
    /// entities through the shared weights — a single edge edit
    /// invalidates the whole embedding table, so this mode cannot be
    /// updated incrementally.
    #[default]
    Trained,
    /// Training-free neighbourhood propagation
    /// ([`crate::propagation`]): deterministic name-seeded layer 0,
    /// then `layers` rounds of symmetrically-normalised mean
    /// propagation. Entity `i`'s vector depends only on its
    /// `layers`-hop neighbourhood, which is what lets
    /// [`crate::delta::DeltaState`] recompute just the dirty region.
    Propagation {
        /// Number of propagation rounds (≥ 1); the effective receptive
        /// field of each entity is its `layers`-hop neighbourhood.
        layers: usize,
    },
}

// Hand-written for the same reason as `CandidateStrategy`: configs
// serialized before the `structural` field existed resolve the missing
// field to `Value::Null`, which must deserialize to the default
// (Trained).
impl Deserialize for StructuralMode {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Null => Ok(StructuralMode::Trained),
            serde::Value::String(s) if s == "Trained" => Ok(StructuralMode::Trained),
            _ => match v.get("Propagation").map(|p| p.as_object()) {
                Some(Some(fields)) => Ok(StructuralMode::Propagation {
                    layers: serde::de::field(fields, "layers")?,
                }),
                _ => Err(serde::Error::custom(
                    "expected \"Trained\" or {\"Propagation\": {..}} for StructuralMode",
                )),
            },
        }
    }
}

/// How feature matrices are weighted before matching.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum WeightingMode {
    /// The paper's adaptive feature fusion, composed two-stage
    /// (`Mn + Ml → Mt`, then `Ms + Mt → M`).
    Adaptive,
    /// Fixed equal weights ("w/o AFF" in Table V).
    Equal,
    /// Logistic-regression-learned weights (the "LR" baseline of §VII-E).
    LogisticRegression(LrConfig),
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CeaffConfig {
    /// GCN training configuration for the structural feature.
    pub gcn: GcnConfig,
    /// Word-embedding dimensionality for the semantic feature.
    pub embed_dim: usize,
    /// Adaptive fusion thresholds (θ1, θ2 and the cap switch).
    pub fusion: FusionConfig,
    /// Include the structural feature `Ms` (`false` = "w/o Ms").
    pub use_structural: bool,
    /// Include the semantic feature `Mn` (`false` = "w/o Mn").
    pub use_semantic: bool,
    /// Include the string feature `Ml` (`false` = "w/o Ml").
    pub use_string: bool,
    /// Weighting strategy.
    pub weighting: WeightingMode,
    /// Decision strategy (`Greedy` = "w/o C").
    pub matcher: MatcherKind,
    /// Min–max rescale each feature matrix to `[0, 1]` before fusion so
    /// features on different score scales (cosine vs ratio) are comparable.
    pub normalize_features: bool,
    /// Apply CSLS hubness correction (`Some(k)` = neighbourhood size) to
    /// each feature matrix before fusion — an extension beyond the paper
    /// attacking the many-sources-one-target pathology at similarity level
    /// rather than (only) at decision level.
    pub csls: Option<usize>,
    /// Candidate-generation strategy: dense all-pairs scoring (the paper's
    /// exact pipeline, and the default) or blocking into sparse top-k
    /// stores for sub-quadratic memory and similarity time. Defaults to
    /// [`CandidateStrategy::Dense`] when absent from serialized configs.
    #[serde(default)]
    pub candidates: CandidateStrategy,
    /// Structural encoder: the paper's trained GCN (the default) or
    /// training-free neighbourhood propagation, the mode required by the
    /// incremental delta pipeline. Defaults to
    /// [`StructuralMode::Trained`] when absent from serialized configs.
    #[serde(default)]
    pub structural: StructuralMode,
}

impl Default for CeaffConfig {
    fn default() -> Self {
        Self {
            gcn: GcnConfig::default(),
            embed_dim: 64,
            fusion: FusionConfig::default(),
            use_structural: true,
            use_semantic: true,
            use_string: true,
            weighting: WeightingMode::Adaptive,
            matcher: MatcherKind::StableMarriage,
            normalize_features: true,
            csls: None,
            candidates: CandidateStrategy::Dense,
            structural: StructuralMode::Trained,
        }
    }
}

impl CeaffConfig {
    /// Start a [`CeaffConfigBuilder`] from the default configuration.
    pub fn builder() -> CeaffConfigBuilder {
        CeaffConfigBuilder::default()
    }

    /// Check every field for values the pipeline cannot run with.
    ///
    /// Called by the fallible entry points before any work happens, so a
    /// bad configuration fails fast with [`CeaffError::InvalidConfig`]
    /// instead of panicking mid-run.
    pub fn validate(&self) -> Result<(), CeaffError> {
        if self.gcn.dim == 0 {
            return Err(CeaffError::InvalidConfig("gcn.dim must be positive".into()));
        }
        if self.gcn.negatives == 0 {
            return Err(CeaffError::InvalidConfig(
                "gcn.negatives must be positive".into(),
            ));
        }
        if self.gcn.epochs == 0 {
            return Err(CeaffError::InvalidConfig(
                "gcn.epochs must be positive".into(),
            ));
        }
        let lr = match self.gcn.optimizer {
            OptimKind::Sgd { lr } | OptimKind::Adam { lr } => lr,
        };
        if !lr.is_finite() || lr <= 0.0 {
            return Err(CeaffError::InvalidConfig(
                "gcn optimizer learning rate must be finite and positive".into(),
            ));
        }
        if !self.gcn.margin.is_finite() || self.gcn.margin <= 0.0 {
            return Err(CeaffError::InvalidConfig(
                "gcn.margin must be finite and positive".into(),
            ));
        }
        if !self.gcn.validation_fraction.is_finite()
            || self.gcn.validation_fraction < 0.0
            || self.gcn.validation_fraction >= 1.0
        {
            return Err(CeaffError::InvalidConfig(
                "gcn.validation_fraction must be finite and in [0, 1)".into(),
            ));
        }
        if self.gcn.validate_every == 0 {
            return Err(CeaffError::InvalidConfig(
                "gcn.validate_every must be positive".into(),
            ));
        }
        if self.gcn.hard_negative_pool > 0 && self.gcn.hard_negative_refresh == 0 {
            return Err(CeaffError::InvalidConfig(
                "gcn.hard_negative_refresh must be positive when hard negatives are enabled".into(),
            ));
        }
        if self.embed_dim == 0 {
            return Err(CeaffError::InvalidConfig(
                "embed_dim must be positive".into(),
            ));
        }
        if let WeightingMode::LogisticRegression(lr_cfg) = &self.weighting {
            if lr_cfg.epochs == 0 {
                return Err(CeaffError::InvalidConfig(
                    "lr weighting epochs must be positive".into(),
                ));
            }
            if lr_cfg.negatives_per_positive == 0 {
                return Err(CeaffError::InvalidConfig(
                    "lr weighting negatives_per_positive must be positive".into(),
                ));
            }
            if !lr_cfg.lr.is_finite() || lr_cfg.lr <= 0.0 {
                return Err(CeaffError::InvalidConfig(
                    "lr weighting learning rate must be finite and positive".into(),
                ));
            }
        }
        if !self.fusion.theta1.is_finite() || !self.fusion.theta2.is_finite() {
            return Err(CeaffError::InvalidConfig(
                "fusion thresholds must be finite".into(),
            ));
        }
        if self.fusion.theta2 < 0.0 {
            return Err(CeaffError::InvalidConfig(
                "fusion.theta2 must be non-negative".into(),
            ));
        }
        if self.csls == Some(0) {
            return Err(CeaffError::InvalidConfig(
                "csls neighbourhood size must be at least 1".into(),
            ));
        }
        if let CandidateStrategy::Blocked { k, blocking } = &self.candidates {
            if *k == 0 {
                return Err(CeaffError::InvalidConfig(
                    "candidates.k must be at least 1".into(),
                ));
            }
            if blocking.min_shared_keys == 0 {
                return Err(CeaffError::InvalidConfig(
                    "candidates.blocking.min_shared_keys must be at least 1".into(),
                ));
            }
            if !blocking.index_tokens && !blocking.index_trigrams {
                return Err(CeaffError::InvalidConfig(
                    "candidates.blocking must index tokens, trigrams, or both".into(),
                ));
            }
        }
        if let StructuralMode::Propagation { layers } = self.structural {
            if layers == 0 {
                return Err(CeaffError::InvalidConfig(
                    "structural propagation layers must be at least 1".into(),
                ));
            }
        }
        Ok(())
    }

    /// Builder-style: disable the structural feature.
    pub fn without_structural(mut self) -> Self {
        self.use_structural = false;
        self
    }

    /// Builder-style: disable the semantic feature.
    pub fn without_semantic(mut self) -> Self {
        self.use_semantic = false;
        self
    }

    /// Builder-style: disable the string feature.
    pub fn without_string(mut self) -> Self {
        self.use_string = false;
        self
    }

    /// Builder-style: equal weights instead of adaptive fusion ("w/o AFF").
    pub fn without_adaptive_fusion(mut self) -> Self {
        self.weighting = WeightingMode::Equal;
        self
    }

    /// Builder-style: independent greedy decisions ("w/o C").
    pub fn without_collective(mut self) -> Self {
        self.matcher = MatcherKind::Greedy;
        self
    }

    /// Builder-style: disable the θ1/θ2 cap ("w/o θ1, θ2").
    pub fn without_theta_cap(mut self) -> Self {
        self.fusion.cap_enabled = false;
        self
    }

    /// Builder-style: logistic-regression weighting (the "LR" variant).
    pub fn with_lr_weighting(mut self, lr: LrConfig) -> Self {
        self.weighting = WeightingMode::LogisticRegression(lr);
        self
    }

    /// Builder-style: enable CSLS hubness correction with neighbourhood
    /// size `k` (10 is the conventional choice).
    pub fn with_csls(mut self, k: usize) -> Self {
        self.csls = Some(k);
        self
    }

    /// Builder-style: blocked candidate generation with default blocking
    /// tuning and per-row cap `k`.
    pub fn with_blocking(mut self, k: usize) -> Self {
        self.candidates = CandidateStrategy::Blocked {
            k,
            blocking: BlockingConfig::default(),
        };
        self
    }

    /// Builder-style: training-free propagation structural encoding with
    /// the given number of layers (the mode the incremental delta
    /// pipeline requires).
    pub fn with_propagation(mut self, layers: usize) -> Self {
        self.structural = StructuralMode::Propagation { layers };
        self
    }
}

/// A complete builder over every [`CeaffConfig`] field.
///
/// [`CeaffConfigBuilder::build`] validates the result, so a configuration
/// obtained through the builder is guaranteed to pass
/// [`CeaffConfig::validate`].
///
/// ```
/// use ceaff_core::pipeline::CeaffConfig;
/// use ceaff_core::matching::MatcherKind;
///
/// let cfg = CeaffConfig::builder()
///     .embed_dim(32)
///     .matcher(MatcherKind::Hungarian)
///     .csls(10)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cfg.embed_dim, 32);
/// assert_eq!(cfg.csls, Some(10));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CeaffConfigBuilder {
    cfg: CeaffConfig,
}

impl CeaffConfigBuilder {
    /// GCN training configuration for the structural feature.
    pub fn gcn(mut self, gcn: GcnConfig) -> Self {
        self.cfg.gcn = gcn;
        self
    }

    /// Word-embedding dimensionality for the semantic feature.
    pub fn embed_dim(mut self, dim: usize) -> Self {
        self.cfg.embed_dim = dim;
        self
    }

    /// Adaptive fusion thresholds.
    pub fn fusion(mut self, fusion: FusionConfig) -> Self {
        self.cfg.fusion = fusion;
        self
    }

    /// Toggle the structural feature `Ms`.
    pub fn structural(mut self, on: bool) -> Self {
        self.cfg.use_structural = on;
        self
    }

    /// Toggle the semantic feature `Mn`.
    pub fn semantic(mut self, on: bool) -> Self {
        self.cfg.use_semantic = on;
        self
    }

    /// Toggle the string feature `Ml`.
    pub fn string(mut self, on: bool) -> Self {
        self.cfg.use_string = on;
        self
    }

    /// Feature weighting strategy.
    pub fn weighting(mut self, weighting: WeightingMode) -> Self {
        self.cfg.weighting = weighting;
        self
    }

    /// Decision strategy.
    pub fn matcher(mut self, matcher: MatcherKind) -> Self {
        self.cfg.matcher = matcher;
        self
    }

    /// Toggle per-feature min–max normalisation before fusion.
    pub fn normalize_features(mut self, on: bool) -> Self {
        self.cfg.normalize_features = on;
        self
    }

    /// Enable CSLS hubness correction with neighbourhood size `k`.
    pub fn csls(mut self, k: usize) -> Self {
        self.cfg.csls = Some(k);
        self
    }

    /// Candidate-generation strategy (dense all-pairs or blocked sparse
    /// top-k).
    pub fn candidate_strategy(mut self, candidates: CandidateStrategy) -> Self {
        self.cfg.candidates = candidates;
        self
    }

    /// Structural encoder mode (trained GCN or propagation).
    pub fn structural_mode(mut self, mode: StructuralMode) -> Self {
        self.cfg.structural = mode;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<CeaffConfig, CeaffError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// One alignment problem plus the word embedders its semantic feature
/// should use (the cross-lingual shared space).
pub struct EaInput<'a> {
    /// The KG pair with its seed/test split.
    pub pair: &'a KgPair,
    /// Embedder for source-KG entity names.
    pub source_embedder: &'a dyn WordEmbedder,
    /// Embedder for target-KG entity names (same vector space).
    pub target_embedder: &'a dyn WordEmbedder,
    /// Telemetry receiving feature-computation and pipeline events; the
    /// default ([`Telemetry::disabled`]) records stage timings and counter
    /// totals but no event stream.
    pub telemetry: Telemetry,
}

impl<'a> EaInput<'a> {
    /// Bundle an alignment problem with its embedders (telemetry
    /// disabled; use [`EaInput::with_telemetry`] to attach a handle).
    pub fn new(
        pair: &'a KgPair,
        source_embedder: &'a dyn WordEmbedder,
        target_embedder: &'a dyn WordEmbedder,
    ) -> Self {
        Self {
            pair,
            source_embedder,
            target_embedder,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; every stage run through this input
    /// reports to it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// The computed features of one problem. Computing this once and running
/// many configurations against it (see [`try_run_with_features`]) is how
/// the ablation harness avoids retraining the GCN per table row.
pub struct FeatureSet {
    /// `Ms`, when computed.
    pub structural: Option<StructuralFeature>,
    /// `Mn`, when computed.
    pub semantic: Option<SemanticFeature>,
    /// `Ml`, when computed.
    pub string: Option<StringFeature>,
    /// Additional features beyond the paper's three (e.g.
    /// [`crate::features::AttributeFeature`]). In adaptive mode these join
    /// the *textual* fusion stage (the natural slot for complementary
    /// evidence about entity identity); in Equal/LR modes they are
    /// weighted like any other feature — the paper's "increasing numbers
    /// of features" scenario.
    pub extra: Vec<Box<dyn Feature>>,
}

/// Build the blocked candidate set over the test split's entity names,
/// under a `"blocking"` telemetry span, and report the blocking gauges:
/// `blocking/recall` (fraction of diagonal gold pairs surviving blocking —
/// the recall ceiling of every downstream stage), `blocking/candidates`
/// (total candidate pairs) and `blocking/scored_fraction` (fraction of
/// the dense cross product that will be scored).
pub(crate) fn block_candidates(
    pair: &KgPair,
    blocking: &BlockingConfig,
    k: usize,
    telemetry: &Telemetry,
) -> CandidateSet {
    let _span = telemetry.span("blocking");
    let src_names: Vec<&str> = pair
        .test_sources()
        .iter()
        .map(|&e| pair.source.entity_name(e).expect("interned"))
        .collect();
    let tgt_names: Vec<&str> = pair
        .test_targets()
        .iter()
        .map(|&e| pair.target.entity_name(e).expect("interned"))
        .collect();
    let candidates = ceaff_sim::build_candidates(&src_names, &tgt_names, blocking, k);
    let gold: Vec<(usize, usize)> = (0..src_names.len().min(tgt_names.len()))
        .map(|i| (i, i))
        .collect();
    telemetry.gauge("blocking", "recall", None, candidates.recall_of(&gold));
    telemetry.gauge("blocking", "candidates", None, candidates.len() as f64);
    telemetry.gauge(
        "blocking",
        "scored_fraction",
        None,
        candidates.stats().scored_fraction(),
    );
    candidates
}

/// Compute the structural feature under the configured encoder mode:
/// GCN training for [`StructuralMode::Trained`], the deterministic
/// propagation encoder (timed under a `"propagation"` span) for
/// [`StructuralMode::Propagation`].
fn compute_structural(
    input: &EaInput<'_>,
    cfg: &CeaffConfig,
    telemetry: &Telemetry,
    blocked: Option<(&CandidateSet, usize)>,
) -> StructuralFeature {
    match cfg.structural {
        StructuralMode::Trained => match blocked {
            None => StructuralFeature::compute_traced(input.pair, &cfg.gcn, telemetry),
            Some((cands, k)) => {
                StructuralFeature::compute_traced_blocked(input.pair, &cfg.gcn, telemetry, cands, k)
            }
        },
        StructuralMode::Propagation { layers } => {
            let _span = telemetry.span("propagation");
            let encoder = crate::propagation::encode(input.pair, cfg.gcn.dim, layers);
            match blocked {
                None => StructuralFeature::from_encoder(input.pair, encoder),
                Some((cands, k)) => {
                    StructuralFeature::from_encoder_blocked(input.pair, encoder, cands, k)
                }
            }
        }
    }
}

impl FeatureSet {
    /// Compute every feature the configuration might need, reporting
    /// per-stage timings (and, with an active event stream, GCN training
    /// gauges) to `input.telemetry`. Under
    /// [`CandidateStrategy::Blocked`] the candidate set is built once and
    /// every feature scores exactly those pairs into a sparse top-k store.
    pub fn compute(input: &EaInput<'_>, cfg: &CeaffConfig) -> Self {
        let telemetry = &input.telemetry;
        telemetry.gauge(
            "parallel",
            "threads",
            None,
            ceaff_parallel::current_threads() as f64,
        );
        let blocked = match &cfg.candidates {
            CandidateStrategy::Dense => None,
            CandidateStrategy::Blocked { k, blocking } => {
                Some((block_candidates(input.pair, blocking, *k, telemetry), *k))
            }
        };
        let structural = cfg.use_structural.then(|| {
            compute_structural(
                input,
                cfg,
                telemetry,
                blocked.as_ref().map(|(c, k)| (c, *k)),
            )
        });
        let semantic = cfg.use_semantic.then(|| {
            let _span = telemetry.span("semantic");
            match &blocked {
                None => SemanticFeature::compute(
                    input.pair,
                    input.source_embedder,
                    input.target_embedder,
                ),
                Some((cands, k)) => SemanticFeature::compute_blocked(
                    input.pair,
                    input.source_embedder,
                    input.target_embedder,
                    cands,
                    *k,
                ),
            }
        });
        let string = cfg.use_string.then(|| {
            let _span = telemetry.span("string");
            match &blocked {
                None => StringFeature::compute(input.pair),
                Some((cands, k)) => StringFeature::compute_blocked(input.pair, cands, *k),
            }
        });
        Self {
            structural,
            semantic,
            string,
            extra: Vec::new(),
        }
    }

    /// Attach an additional feature (see [`FeatureSet::extra`]).
    pub fn with_extra(mut self, feature: Box<dyn Feature>) -> Self {
        self.extra.push(feature);
        self
    }

    /// Checkpoint-aware [`FeatureSet::compute`]: each stage whose verified
    /// artifact already exists in the run directory is restored *without
    /// recomputation* (counted as `checkpoint/stages_resumed`); each stage
    /// that runs saves its output on completion
    /// (`checkpoint/stages_saved`). The GCN additionally saves/resumes its
    /// epoch-level training state when the policy has an epoch interval.
    ///
    /// Restored stage outputs are bit-identical to freshly computed ones —
    /// artifacts store the *normalised* matrices, so no floating-point
    /// operation is repeated on the resume path.
    pub fn try_compute_checkpointed(
        input: &EaInput<'_>,
        cfg: &CeaffConfig,
        ck: &Checkpointer,
    ) -> Result<Self, CeaffError> {
        if !cfg.candidates.is_dense() {
            return Err(CeaffError::InvalidConfig(
                "`--checkpoint-dir` cannot be combined with `--candidates blocked`: \
                 checkpoint stage artifacts are dense-only, so checkpointing requires \
                 CandidateStrategy::Dense"
                    .into(),
            ));
        }
        let telemetry = &input.telemetry;
        telemetry.gauge(
            "parallel",
            "threads",
            None,
            ceaff_parallel::current_threads() as f64,
        );
        let stage_err = |file: &str| {
            let file = file.to_owned();
            move |reason: String| CeaffError::Checkpoint { file, reason }
        };

        let structural = if !cfg.use_structural {
            None
        } else if !matches!(cfg.structural, StructuralMode::Trained) {
            // Propagation is deterministic and cheap; recomputing beats
            // persisting an artifact, so the checkpoint store is bypassed.
            Some(compute_structural(input, cfg, telemetry, None))
        } else {
            Some(match ck.load(checkpoint::STAGE_STRUCTURAL)? {
                Some(bytes) => {
                    let (zs, zt, test, loss_curve) = checkpoint::decode_structural(&bytes)
                        .map_err(stage_err(checkpoint::STAGE_STRUCTURAL))?;
                    telemetry.counter_add("checkpoint", "stages_resumed", 1);
                    StructuralFeature::from_saved_parts(
                        zs,
                        zt,
                        SimilarityMatrix::new(test),
                        loss_curve,
                    )
                }
                None => {
                    let f = StructuralFeature::try_compute_traced(
                        input.pair,
                        &cfg.gcn,
                        telemetry,
                        Some(ck),
                    )?;
                    ck.save(
                        checkpoint::STAGE_STRUCTURAL,
                        &checkpoint::encode_structural(
                            f.source_embeddings(),
                            f.target_embeddings(),
                            f.test_matrix().as_matrix(),
                            &f.loss_curve,
                        ),
                    )?;
                    // The in-flight training state is subsumed by the
                    // completed stage artifact.
                    ck.remove(checkpoint::TRAIN_FILE)?;
                    telemetry.counter_add("checkpoint", "stages_saved", 1);
                    f
                }
            })
        };

        let semantic = if cfg.use_semantic {
            Some(match ck.load(checkpoint::STAGE_SEMANTIC)? {
                Some(bytes) => {
                    let (ns, nt, test) = checkpoint::decode_embedding_stage(&bytes)
                        .map_err(stage_err(checkpoint::STAGE_SEMANTIC))?;
                    telemetry.counter_add("checkpoint", "stages_resumed", 1);
                    SemanticFeature::from_saved_parts(ns, nt, SimilarityMatrix::new(test))
                }
                None => {
                    let f = {
                        let _span = telemetry.span("semantic");
                        SemanticFeature::compute(
                            input.pair,
                            input.source_embedder,
                            input.target_embedder,
                        )
                    };
                    ck.save(
                        checkpoint::STAGE_SEMANTIC,
                        &checkpoint::encode_embedding_stage(
                            f.source_embeddings(),
                            f.target_embeddings(),
                            f.test_matrix().as_matrix(),
                        ),
                    )?;
                    telemetry.counter_add("checkpoint", "stages_saved", 1);
                    f
                }
            })
        } else {
            None
        };

        let string = if cfg.use_string {
            Some(match ck.load(checkpoint::STAGE_STRING)? {
                Some(bytes) => {
                    let test = checkpoint::decode_matrix_stage(&bytes)
                        .map_err(stage_err(checkpoint::STAGE_STRING))?;
                    telemetry.counter_add("checkpoint", "stages_resumed", 1);
                    StringFeature::from_saved_parts(input.pair, SimilarityMatrix::new(test))
                }
                None => {
                    let f = {
                        let _span = telemetry.span("string");
                        StringFeature::compute(input.pair)
                    };
                    ck.save(
                        checkpoint::STAGE_STRING,
                        &checkpoint::encode_matrix_stage(f.test_matrix().as_matrix()),
                    )?;
                    telemetry.counter_add("checkpoint", "stages_saved", 1);
                    f
                }
            })
        } else {
            None
        };

        Ok(Self {
            structural,
            semantic,
            string,
            extra: Vec::new(),
        })
    }

    /// Budget-aware [`FeatureSet::compute`]: GCN training consumes one
    /// budget step per epoch (stopping at its best snapshot when the
    /// budget runs out), each later feature consumes one step per stage,
    /// and the memory cap is checked at every stage boundary.
    ///
    /// The first enabled feature is always computed — a run that produced
    /// no feature at all could only fail, and the point of a budget is a
    /// best-effort *result*. Later features that the exhausted budget
    /// refuses are skipped and recorded as a `"features"`
    /// [`Degradation`](ceaff_telemetry::Degradation); the
    /// semantic/string kernels run under an uninterruptible probe scope
    /// because their outputs feed fusion unconditionally (a
    /// half-written matrix is never acceptable there).
    pub fn try_compute_budgeted(
        input: &EaInput<'_>,
        cfg: &CeaffConfig,
        budget: &ExecBudget,
    ) -> Result<Self, CeaffError> {
        let telemetry = &input.telemetry;
        telemetry.gauge(
            "parallel",
            "threads",
            None,
            ceaff_parallel::current_threads() as f64,
        );
        let enabled = [cfg.use_structural, cfg.use_semantic, cfg.use_string]
            .iter()
            .filter(|&&on| on)
            .count();
        let mut computed = 0usize;
        let mut skipped = 0usize;
        let mut stop: Option<StopReason> = None;

        let blocked = match &cfg.candidates {
            CandidateStrategy::Dense => None,
            CandidateStrategy::Blocked { k, blocking } => {
                // Blocking is cheap relative to any feature; run it
                // uninterrupted and let the memory check below observe
                // the candidate structure it allocated.
                let _probe_off = crate::budget::uninterruptible_scope();
                let cands = block_candidates(input.pair, blocking, *k, telemetry);
                budget.check_mem("blocking")?;
                Some((cands, *k))
            }
        };

        let structural = if cfg.use_structural {
            budget.check_mem("features")?;
            let f = if !matches!(cfg.structural, StructuralMode::Trained) {
                // Propagation has no epoch granularity to meter; it runs
                // uninterrupted like the other closed-form features.
                let _probe_off = crate::budget::uninterruptible_scope();
                compute_structural(
                    input,
                    cfg,
                    telemetry,
                    blocked.as_ref().map(|(c, k)| (c, *k)),
                )
            } else {
                match &blocked {
                    None => StructuralFeature::try_compute_budgeted(
                        input.pair, &cfg.gcn, telemetry, None, budget,
                    )?,
                    Some((cands, k)) => StructuralFeature::try_compute_budgeted_blocked(
                        input.pair, &cfg.gcn, telemetry, budget, cands, *k,
                    )?,
                }
            };
            computed += 1;
            Some(f)
        } else {
            None
        };

        let semantic = if cfg.use_semantic {
            if computed > 0 && stop.is_none() {
                stop = budget.consume_step();
            }
            if stop.is_none() {
                budget.check_mem("features")?;
                let _probe_off = crate::budget::uninterruptible_scope();
                let _span = telemetry.span("semantic");
                computed += 1;
                Some(match &blocked {
                    None => SemanticFeature::compute(
                        input.pair,
                        input.source_embedder,
                        input.target_embedder,
                    ),
                    Some((cands, k)) => SemanticFeature::compute_blocked(
                        input.pair,
                        input.source_embedder,
                        input.target_embedder,
                        cands,
                        *k,
                    ),
                })
            } else {
                skipped += 1;
                None
            }
        } else {
            None
        };

        let string = if cfg.use_string {
            if computed > 0 && stop.is_none() {
                stop = budget.consume_step();
            }
            if stop.is_none() {
                budget.check_mem("features")?;
                let _probe_off = crate::budget::uninterruptible_scope();
                let _span = telemetry.span("string");
                computed += 1;
                Some(match &blocked {
                    None => StringFeature::compute(input.pair),
                    Some((cands, k)) => StringFeature::compute_blocked(input.pair, cands, *k),
                })
            } else {
                skipped += 1;
                None
            }
        } else {
            None
        };

        if skipped > 0 {
            let reason = stop.expect("skipping implies a stop reason");
            budget.record_degradation(
                telemetry,
                "features",
                reason,
                computed as u64,
                skipped as f64 / enabled.max(1) as f64,
            );
        }
        Ok(Self {
            structural,
            semantic,
            string,
            extra: Vec::new(),
        })
    }

    /// Budget-aware [`FeatureSet::try_compute_checkpointed`]: stages
    /// already on disk are restored for free (no budget steps), stages
    /// that run follow the same budget rules as
    /// [`FeatureSet::try_compute_budgeted`], and a stage the budget
    /// stopped *short* is **not** saved as a completed artifact — the
    /// GCN's in-flight training state stays on disk instead, so a later
    /// resume continues training rather than mistaking the degraded
    /// snapshot for the real stage output.
    pub fn try_compute_checkpointed_budgeted(
        input: &EaInput<'_>,
        cfg: &CeaffConfig,
        ck: &Checkpointer,
        budget: &ExecBudget,
    ) -> Result<Self, CeaffError> {
        if !cfg.candidates.is_dense() {
            return Err(CeaffError::InvalidConfig(
                "`--checkpoint-dir` cannot be combined with `--candidates blocked`: \
                 checkpoint stage artifacts are dense-only, so checkpointing requires \
                 CandidateStrategy::Dense"
                    .into(),
            ));
        }
        let telemetry = &input.telemetry;
        telemetry.gauge(
            "parallel",
            "threads",
            None,
            ceaff_parallel::current_threads() as f64,
        );
        let stage_err = |file: &str| {
            let file = file.to_owned();
            move |reason: String| CeaffError::Checkpoint { file, reason }
        };
        let enabled = [cfg.use_structural, cfg.use_semantic, cfg.use_string]
            .iter()
            .filter(|&&on| on)
            .count();
        let mut computed = 0usize;
        let mut skipped = 0usize;
        let mut stop: Option<StopReason> = None;

        let structural = if !cfg.use_structural {
            None
        } else if !matches!(cfg.structural, StructuralMode::Trained) {
            // Deterministic and cheap: recompute, bypassing the
            // checkpoint store (see `try_compute_checkpointed`).
            budget.check_mem("features")?;
            let f = {
                let _probe_off = crate::budget::uninterruptible_scope();
                compute_structural(input, cfg, telemetry, None)
            };
            computed += 1;
            Some(f)
        } else {
            Some(match ck.load(checkpoint::STAGE_STRUCTURAL)? {
                Some(bytes) => {
                    let (zs, zt, test, loss_curve) = checkpoint::decode_structural(&bytes)
                        .map_err(stage_err(checkpoint::STAGE_STRUCTURAL))?;
                    telemetry.counter_add("checkpoint", "stages_resumed", 1);
                    computed += 1;
                    StructuralFeature::from_saved_parts(
                        zs,
                        zt,
                        SimilarityMatrix::new(test),
                        loss_curve,
                    )
                }
                None => {
                    budget.check_mem("features")?;
                    let f = StructuralFeature::try_compute_budgeted(
                        input.pair,
                        &cfg.gcn,
                        telemetry,
                        Some(ck),
                        budget,
                    )?;
                    if budget.stop_reason().is_none() {
                        ck.save(
                            checkpoint::STAGE_STRUCTURAL,
                            &checkpoint::encode_structural(
                                f.source_embeddings(),
                                f.target_embeddings(),
                                f.test_matrix().as_matrix(),
                                &f.loss_curve,
                            ),
                        )?;
                        // The in-flight training state is subsumed by the
                        // completed stage artifact.
                        ck.remove(checkpoint::TRAIN_FILE)?;
                        telemetry.counter_add("checkpoint", "stages_saved", 1);
                    }
                    computed += 1;
                    f
                }
            })
        };

        let semantic = if cfg.use_semantic {
            match ck.load(checkpoint::STAGE_SEMANTIC)? {
                Some(bytes) => {
                    let (ns, nt, test) = checkpoint::decode_embedding_stage(&bytes)
                        .map_err(stage_err(checkpoint::STAGE_SEMANTIC))?;
                    telemetry.counter_add("checkpoint", "stages_resumed", 1);
                    computed += 1;
                    Some(SemanticFeature::from_saved_parts(
                        ns,
                        nt,
                        SimilarityMatrix::new(test),
                    ))
                }
                None => {
                    if computed > 0 && stop.is_none() {
                        stop = budget.consume_step();
                    }
                    if stop.is_none() {
                        budget.check_mem("features")?;
                        let f = {
                            let _probe_off = crate::budget::uninterruptible_scope();
                            let _span = telemetry.span("semantic");
                            SemanticFeature::compute(
                                input.pair,
                                input.source_embedder,
                                input.target_embedder,
                            )
                        };
                        if budget.stop_reason().is_none() {
                            ck.save(
                                checkpoint::STAGE_SEMANTIC,
                                &checkpoint::encode_embedding_stage(
                                    f.source_embeddings(),
                                    f.target_embeddings(),
                                    f.test_matrix().as_matrix(),
                                ),
                            )?;
                            telemetry.counter_add("checkpoint", "stages_saved", 1);
                        }
                        computed += 1;
                        Some(f)
                    } else {
                        skipped += 1;
                        None
                    }
                }
            }
        } else {
            None
        };

        let string = if cfg.use_string {
            match ck.load(checkpoint::STAGE_STRING)? {
                Some(bytes) => {
                    let test = checkpoint::decode_matrix_stage(&bytes)
                        .map_err(stage_err(checkpoint::STAGE_STRING))?;
                    telemetry.counter_add("checkpoint", "stages_resumed", 1);
                    computed += 1;
                    Some(StringFeature::from_saved_parts(
                        input.pair,
                        SimilarityMatrix::new(test),
                    ))
                }
                None => {
                    if computed > 0 && stop.is_none() {
                        stop = budget.consume_step();
                    }
                    if stop.is_none() {
                        budget.check_mem("features")?;
                        let f = {
                            let _probe_off = crate::budget::uninterruptible_scope();
                            let _span = telemetry.span("string");
                            StringFeature::compute(input.pair)
                        };
                        if budget.stop_reason().is_none() {
                            ck.save(
                                checkpoint::STAGE_STRING,
                                &checkpoint::encode_matrix_stage(f.test_matrix().as_matrix()),
                            )?;
                            telemetry.counter_add("checkpoint", "stages_saved", 1);
                        }
                        computed += 1;
                        Some(f)
                    } else {
                        skipped += 1;
                        None
                    }
                }
            }
        } else {
            None
        };

        if skipped > 0 {
            let reason = stop.expect("skipping implies a stop reason");
            budget.record_degradation(
                telemetry,
                "features",
                reason,
                computed as u64,
                skipped as f64 / enabled.max(1) as f64,
            );
        }
        Ok(Self {
            structural,
            semantic,
            string,
            extra: Vec::new(),
        })
    }

    /// Compute all three features regardless of the flags in `cfg` (for
    /// ablation sweeps that will toggle them afterwards).
    pub fn compute_all(input: &EaInput<'_>, cfg: &CeaffConfig) -> Self {
        let mut full = cfg.clone();
        full.use_structural = true;
        full.use_semantic = true;
        full.use_string = true;
        Self::compute(input, &full)
    }

    /// The active features under `cfg`, as trait objects in
    /// structural/semantic/string order.
    fn active<'s>(&'s self, cfg: &CeaffConfig) -> Vec<&'s dyn Feature> {
        let mut v: Vec<&dyn Feature> = Vec::with_capacity(3);
        if cfg.use_structural {
            if let Some(f) = &self.structural {
                v.push(f);
            }
        }
        if cfg.use_semantic {
            if let Some(f) = &self.semantic {
                v.push(f);
            }
        }
        if cfg.use_string {
            if let Some(f) = &self.string {
                v.push(f);
            }
        }
        for f in &self.extra {
            v.push(f.as_ref());
        }
        v
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct CeaffOutput {
    /// The fused similarity store `M` — dense under
    /// [`CandidateStrategy::Dense`] (bitwise-identical to the
    /// pre-`SimStore` pipeline), sparse top-k under
    /// [`CandidateStrategy::Blocked`].
    pub fused: SimStore,
    /// The alignment decision.
    pub matching: Matching,
    /// Accuracy against the diagonal ground truth (the paper's metric).
    pub accuracy: f64,
    /// Hits@1/Hits@10/MRR of the *fused matrix rows* — i.e. the ranking
    /// evaluation of "CEAFF w/o C" (Table VI); the collective matching
    /// itself produces pairs, not ranked lists.
    pub ranking: RankingMetrics,
    /// Report of the textual fusion stage (`Mn + Ml`), when it ran.
    pub textual_fusion: Option<FusionReport>,
    /// Report of the final fusion stage (`Ms + Mt`), when it ran.
    pub final_fusion: Option<FusionReport>,
    /// Weights actually applied per active feature (order: structural,
    /// semantic, string, restricted to active ones) for Equal/LR modes;
    /// `None` in two-stage adaptive mode (see the stage reports instead).
    pub flat_weights: Option<Vec<f32>>,
    /// Everything telemetry recorded for this run: stage timings, counter
    /// totals, and (with an active event stream) the ordered events.
    /// Replaces the old bare `decision_elapsed` duration — stage
    /// wall-clock lives in [`RunTrace::stages`].
    pub trace: RunTrace,
}

/// Validate the active feature set: at least one feature, all stores on
/// one shape.
fn check_features(active: &[&dyn Feature]) -> Result<(), CeaffError> {
    let Some(first) = active.first() else {
        return Err(CeaffError::EmptyFeatureSet);
    };
    let expected = (first.test_store().sources(), first.test_store().targets());
    for f in &active[1..] {
        let found = (f.test_store().sources(), f.test_store().targets());
        if found != expected {
            return Err(CeaffError::ShapeMismatch {
                feature: f.name().to_owned(),
                expected,
                found,
            });
        }
    }
    Ok(())
}

/// Gauge the chosen weights and count the correspondence statistics of one
/// fusion stage.
fn emit_fusion_report(telemetry: &Telemetry, label: &str, report: &FusionReport) {
    for (i, &w) in report.weights.iter().enumerate() {
        telemetry.gauge(
            "fusion",
            &format!("{label}_weight"),
            Some(i as u64),
            w as f64,
        );
    }
    let candidates: usize = report.candidates_per_feature.iter().sum();
    let retained: usize = report.retained_per_feature.iter().sum();
    telemetry.counter_add("fusion", "confident_candidates", candidates as u64);
    telemetry.counter_add("fusion", "retained_correspondences", retained as u64);
}

/// Gauge a flat (Equal/LR) weight vector.
fn emit_flat_weights(telemetry: &Telemetry, weights: &[f32]) {
    for (i, &w) in weights.iter().enumerate() {
        telemetry.gauge("fusion", "flat_weight", Some(i as u64), w as f64);
    }
}

/// The fusion stage shared by [`try_run_with_features`] and its budgeted
/// variant: preprocess every active feature store, then combine them
/// under the configured weighting mode. All-dense inputs take the
/// bitwise-identical dense fusion path; any sparse input routes the
/// merge through the sparse accumulator (see
/// [`fuse_store`](crate::fusion::fuse_store)).
#[allow(clippy::type_complexity)]
fn fuse_active(
    pair: &KgPair,
    features: &FeatureSet,
    active: &[&dyn Feature],
    cfg: &CeaffConfig,
) -> (
    SimStore,
    Option<FusionReport>,
    Option<FusionReport>,
    Option<Vec<f32>>,
) {
    let normalized: Vec<SimStore> = active
        .iter()
        .map(|f| preprocess_store(f.test_store(), cfg))
        .collect();

    // Map back to named slots for the two-stage composition.
    let mut slot: std::collections::HashMap<&str, &SimStore> = std::collections::HashMap::new();
    for (f, m) in active.iter().zip(&normalized) {
        slot.insert(f.name(), m);
    }

    match &cfg.weighting {
        WeightingMode::Adaptive => {
            if features.extra.is_empty() {
                let (m, t, f) = two_stage_fuse_store(
                    slot.get("structural").copied(),
                    slot.get("semantic").copied(),
                    slot.get("string").copied(),
                    &cfg.fusion,
                );
                (m, t, f, None)
            } else {
                // Extra features join the textual stage (semantic +
                // string + extras -> Mt), then Mt fuses with Ms.
                let mut textual: Vec<&SimStore> = Vec::new();
                if let Some(m) = slot.get("semantic") {
                    textual.push(m);
                }
                if let Some(m) = slot.get("string") {
                    textual.push(m);
                }
                let extra_start = active.len() - features.extra.len();
                textual.extend(normalized[extra_start..].iter());
                let (mt, trep) = adaptive_fuse_store(&textual, &cfg.fusion);
                match slot.get("structural").copied() {
                    Some(ms) => {
                        let (m, frep) = adaptive_fuse_store(&[ms, &mt], &cfg.fusion);
                        (m, Some(trep), Some(frep), None)
                    }
                    None => (mt, Some(trep), None, None),
                }
            }
        }
        WeightingMode::Equal => {
            let stores: Vec<&SimStore> = normalized.iter().collect();
            let w = vec![1.0 / stores.len() as f32; stores.len()];
            (fuse_store(&stores, &w), None, None, Some(w))
        }
        WeightingMode::LogisticRegression(lr_cfg) => {
            let lw = learn_weights(active, pair, lr_cfg);
            let stores: Vec<&SimStore> = normalized.iter().collect();
            (
                fuse_store(&stores, &lw.weights),
                None,
                None,
                Some(lw.weights),
            )
        }
    }
}

/// Run fusion + matching on precomputed features.
///
/// Fails with [`CeaffError::InvalidConfig`] on a bad configuration,
/// [`CeaffError::EmptyFeatureSet`] when `cfg` enables no feature that
/// `features` actually contains, and [`CeaffError::ShapeMismatch`] when
/// the active feature matrices disagree about the test-split shape.
///
/// Fusion and matching are timed under the `"fusion"` and `"matcher"`
/// stages of `telemetry`; the drained trace is attached to the output.
pub fn try_run_with_features(
    pair: &KgPair,
    features: &FeatureSet,
    cfg: &CeaffConfig,
    telemetry: &Telemetry,
) -> Result<CeaffOutput, CeaffError> {
    cfg.validate()?;
    let active = features.active(cfg);
    check_features(&active)?;
    telemetry.gauge(
        "parallel",
        "threads",
        None,
        ceaff_parallel::current_threads() as f64,
    );

    let fusion_span = telemetry.span("fusion");
    let (fused, textual_fusion, final_fusion, flat_weights) =
        fuse_active(pair, features, &active, cfg);
    if let Some(report) = &textual_fusion {
        emit_fusion_report(telemetry, "textual", report);
    }
    if let Some(report) = &final_fusion {
        emit_fusion_report(telemetry, "final", report);
    }
    if let Some(weights) = &flat_weights {
        emit_flat_weights(telemetry, weights);
    }
    fusion_span.finish();

    let matching = cfg.matcher.build().matching_store_traced(&fused, telemetry);
    let acc = accuracy(&matching, fused.sources());
    let ranking = ranking_metrics_store(&fused);
    telemetry.gauge("pipeline", "accuracy", None, acc);
    telemetry.gauge("pipeline", "matched_pairs", None, matching.len() as f64);
    Ok(CeaffOutput {
        fused,
        matching,
        accuracy: acc,
        ranking,
        textual_fusion,
        final_fusion,
        flat_weights,
        trace: telemetry.take_trace(),
    })
}

/// Budget-aware [`try_run_with_features`]: fusion runs uninterrupted
/// (its output feeds matching unconditionally), the matcher becomes
/// *anytime* — on deadline/cancel/step-limit it checkpoints its partial
/// assignment and completes the unmatched rows greedily, recording a
/// `"matcher"` [`Degradation`](ceaff_telemetry::Degradation) in the
/// trace — and the memory cap is checked at each stage boundary.
///
/// An unlimited budget short-circuits to [`try_run_with_features`]
/// itself, so the output is bitwise-identical to an unbudgeted run at
/// any thread count.
pub fn try_run_with_features_budgeted(
    pair: &KgPair,
    features: &FeatureSet,
    cfg: &CeaffConfig,
    telemetry: &Telemetry,
    budget: &ExecBudget,
) -> Result<CeaffOutput, CeaffError> {
    if budget.is_unlimited() {
        return try_run_with_features(pair, features, cfg, telemetry);
    }
    cfg.validate()?;
    let _armed = budget.install();
    let active = features.active(cfg);
    check_features(&active)?;
    telemetry.gauge(
        "parallel",
        "threads",
        None,
        ceaff_parallel::current_threads() as f64,
    );

    let fusion_span = telemetry.span("fusion");
    let (fused, textual_fusion, final_fusion, flat_weights) = {
        // Fusion (CSLS, normalisation, weight search) is short and
        // non-degradable: finish its kernels, let the boundary checks
        // below observe any stop.
        let _probe_off = crate::budget::uninterruptible_scope();
        fuse_active(pair, features, &active, cfg)
    };
    if let Some(report) = &textual_fusion {
        emit_fusion_report(telemetry, "textual", report);
    }
    if let Some(report) = &final_fusion {
        emit_fusion_report(telemetry, "final", report);
    }
    if let Some(weights) = &flat_weights {
        emit_flat_weights(telemetry, weights);
    }
    fusion_span.finish();
    budget.check_mem("fusion")?;

    let outcome = cfg
        .matcher
        .build()
        .matching_store_budgeted(&fused, budget, telemetry);
    budget.check_mem("matcher")?;
    let matching = outcome.matching;
    let acc = accuracy(&matching, fused.sources());
    let ranking = ranking_metrics_store(&fused);
    telemetry.gauge("pipeline", "accuracy", None, acc);
    telemetry.gauge("pipeline", "matched_pairs", None, matching.len() as f64);
    budget.emit_counters(telemetry);
    Ok(CeaffOutput {
        fused,
        matching,
        accuracy: acc,
        ranking,
        textual_fusion,
        final_fusion,
        flat_weights,
        trace: telemetry.take_trace(),
    })
}

/// What [`run_decision_budgeted`] produced: the matching plus its quality
/// metrics and the degradation record, without re-carrying the (possibly
/// large, shared) similarity store the decision ran over.
#[derive(Debug, Clone)]
pub struct DecisionOutput {
    /// The alignment decision — exact when `degradation` is `None`,
    /// otherwise the exact partial assignment completed greedily.
    pub matching: Matching,
    /// Fraction of sources matched to their ground-truth target (test
    /// splits are index-aligned, so "correct" is `i == j`).
    pub accuracy: f64,
    /// Present iff the budget cut the exact matcher short.
    pub degradation: Option<Degradation>,
    /// Source rows whose assignment came from the greedy completion
    /// rather than the exact algorithm. Empty for an exact run.
    pub degraded_rows: Vec<usize>,
    /// Stage timings, counters, and degradations drained from
    /// `telemetry`.
    pub trace: RunTrace,
}

/// Run one budgeted alignment decision over an already-fused similarity
/// store.
///
/// This is the serving-path entry point: a long-running process fuses
/// features once (via [`try_run`] or [`FeatureSet::compute`] +
/// [`try_run_with_features`]), keeps the resulting
/// [`CeaffOutput::fused`] store warm, and then answers each request with
/// this call — no feature recomputation, just the collective decision
/// under that request's own [`ExecBudget`]. The budget is installed for
/// the duration of the call (memory ledger + cancel probe on the calling
/// thread), the matcher runs in its anytime form, and the memory cap is
/// checked at the stage boundary. The warm store is only read, never
/// mutated, so a degraded or failed decision cannot poison it.
///
/// With an unlimited (or never-fired) budget the matching is
/// bitwise-identical to [`Matcher::matching_store_traced`] at any thread
/// count — the anytime path short-circuits — so repeated identical
/// requests return byte-identical responses.
pub fn run_decision_budgeted(
    fused: &SimStore,
    matcher: MatcherKind,
    budget: &ExecBudget,
    telemetry: &Telemetry,
) -> Result<DecisionOutput, CeaffError> {
    let _armed = budget.install();
    let outcome = matcher
        .build()
        .matching_store_budgeted(fused, budget, telemetry);
    budget.check_mem("matcher")?;
    let acc = accuracy(&outcome.matching, fused.sources());
    telemetry.gauge("pipeline", "accuracy", None, acc);
    telemetry.gauge(
        "pipeline",
        "matched_pairs",
        None,
        outcome.matching.len() as f64,
    );
    budget.emit_counters(telemetry);
    Ok(DecisionOutput {
        matching: outcome.matching,
        accuracy: acc,
        degradation: outcome.degradation,
        degraded_rows: outcome.degraded_rows,
        trace: telemetry.take_trace(),
    })
}

/// Per-feature store preprocessing: optional CSLS hubness correction,
/// then optional min–max normalisation (order matters — CSLS operates on
/// the raw geometry, normalisation makes scales comparable for fusion).
/// Dense stores go through the exact dense kernels
/// ([`ceaff_sim::csls_adjusted`]); sparse stores through their sparse
/// counterparts, which agree on the stored entries.
fn preprocess_store(s: &SimStore, cfg: &CeaffConfig) -> SimStore {
    let s = match cfg.csls {
        Some(k) => ceaff_sim::csls_adjusted_store(s, k),
        None => s.clone(),
    };
    if cfg.normalize_features {
        s.min_max_normalized()
    } else {
        s
    }
}

/// Compute features and run the pipeline in one call, reporting every
/// stage to `input.telemetry`.
pub fn try_run(input: &EaInput<'_>, cfg: &CeaffConfig) -> Result<CeaffOutput, CeaffError> {
    cfg.validate()?;
    let features = FeatureSet::compute(input, cfg);
    try_run_with_features(input.pair, &features, cfg, &input.telemetry)
}

/// Budget-aware [`try_run`]: the whole pipeline — GCN epochs, feature
/// stages, fusion, matching — runs under `budget`, degrading gracefully
/// on deadline/cancel/step-limit (partial-but-valid output plus
/// [`Degradation`](ceaff_telemetry::Degradation) records in the trace)
/// and failing with [`CeaffError::BudgetExceeded`] when the memory cap
/// is crossed.
///
/// An unlimited budget short-circuits to [`try_run`], so the output is
/// bitwise-identical to an unbudgeted run at any thread count.
pub fn try_run_with_budget(
    input: &EaInput<'_>,
    cfg: &CeaffConfig,
    budget: &ExecBudget,
) -> Result<CeaffOutput, CeaffError> {
    if budget.is_unlimited() {
        return try_run(input, cfg);
    }
    cfg.validate()?;
    let _armed = budget.install();
    let features = FeatureSet::try_compute_budgeted(input, cfg, budget)?;
    try_run_with_features_budgeted(input.pair, &features, cfg, &input.telemetry, budget)
}

/// [`try_run`] with crash-safe checkpointing: stage outputs (and, with
/// [`CheckpointPolicy::EveryNEpochs`], the GCN training state) are saved
/// to `dir` as the run progresses. Call [`resume_from`] on the same
/// directory after an interruption — the continued run skips completed
/// work and produces **bitwise-identical** final metrics to an
/// uninterrupted run at any thread count.
///
/// The directory is created if absent and pins the configuration: calling
/// again with a different `cfg` is a [`CeaffError::Checkpoint`] error.
pub fn try_run_checkpointed(
    input: &EaInput<'_>,
    cfg: &CeaffConfig,
    dir: impl AsRef<std::path::Path>,
    policy: CheckpointPolicy,
) -> Result<CeaffOutput, CeaffError> {
    cfg.validate()?;
    if matches!(policy, CheckpointPolicy::Off) {
        return try_run(input, cfg);
    }
    let ck = Checkpointer::create(dir, policy, cfg)?;
    let features = FeatureSet::try_compute_checkpointed(input, cfg, &ck)?;
    try_run_with_features(input.pair, &features, cfg, &input.telemetry)
}

/// Budget-aware [`try_run_checkpointed`]: checkpointing and execution
/// budgets compose — completed stages restore for free, running stages
/// obey the budget, and a stage the budget stopped short keeps its
/// in-flight training state on disk (it is *not* saved as a completed
/// artifact), so resuming later finishes the real computation.
///
/// An unlimited budget short-circuits to [`try_run_checkpointed`].
pub fn try_run_checkpointed_with_budget(
    input: &EaInput<'_>,
    cfg: &CeaffConfig,
    dir: impl AsRef<std::path::Path>,
    policy: CheckpointPolicy,
    budget: &ExecBudget,
) -> Result<CeaffOutput, CeaffError> {
    if budget.is_unlimited() {
        return try_run_checkpointed(input, cfg, dir, policy);
    }
    cfg.validate()?;
    if matches!(policy, CheckpointPolicy::Off) {
        return try_run_with_budget(input, cfg, budget);
    }
    let _armed = budget.install();
    let ck = Checkpointer::create(dir, policy, cfg)?;
    let features = FeatureSet::try_compute_checkpointed_budgeted(input, cfg, &ck, budget)?;
    try_run_with_features_budgeted(input.pair, &features, cfg, &input.telemetry, budget)
}

/// Resume an interrupted [`try_run_checkpointed`] run from its directory.
///
/// The configuration (and policy) travel with the run directory, so the
/// caller supplies only the input data. Completed stages are restored
/// verified-and-verbatim; an interrupted GCN training continues from its
/// last saved epoch boundary. Corrupt or truncated artifacts fail with
/// [`CeaffError::Checkpoint`] before anything partial is used.
pub fn resume_from(
    dir: impl AsRef<std::path::Path>,
    input: &EaInput<'_>,
) -> Result<CeaffOutput, CeaffError> {
    let (ck, cfg) = Checkpointer::open(dir)?;
    cfg.validate()?;
    let features = FeatureSet::try_compute_checkpointed(input, &cfg, &ck)?;
    try_run_with_features(input.pair, &features, &cfg, &input.telemetry)
}

/// Budget-aware [`resume_from`]: resume an interrupted checkpointed run
/// under an execution budget (see [`try_run_checkpointed_with_budget`]
/// for the composition rules). An unlimited budget short-circuits to
/// [`resume_from`].
pub fn resume_from_with_budget(
    dir: impl AsRef<std::path::Path>,
    input: &EaInput<'_>,
    budget: &ExecBudget,
) -> Result<CeaffOutput, CeaffError> {
    if budget.is_unlimited() {
        return resume_from(dir, input);
    }
    let (ck, cfg) = Checkpointer::open(dir)?;
    cfg.validate()?;
    let _armed = budget.install();
    let features = FeatureSet::try_compute_checkpointed_budgeted(input, &cfg, &ck, budget)?;
    try_run_with_features_budgeted(input.pair, &features, &cfg, &input.telemetry, budget)
}

/// A single-adaptive-stage variant fusing all active features at once —
/// kept public to make the paper's claim that *two-stage* fusion adjusts
/// weights better directly testable (see the `fusion` bench and the
/// ablation experiments).
pub fn try_run_single_stage(
    features: &FeatureSet,
    cfg: &CeaffConfig,
    telemetry: &Telemetry,
) -> Result<CeaffOutput, CeaffError> {
    cfg.validate()?;
    let active = features.active(cfg);
    check_features(&active)?;
    telemetry.gauge(
        "parallel",
        "threads",
        None,
        ceaff_parallel::current_threads() as f64,
    );
    let fusion_span = telemetry.span("fusion");
    let normalized: Vec<SimStore> = active
        .iter()
        .map(|f| preprocess_store(f.test_store(), cfg))
        .collect();
    let stores: Vec<&SimStore> = normalized.iter().collect();
    let (fused, report) = adaptive_fuse_store(&stores, &cfg.fusion);
    emit_fusion_report(telemetry, "single", &report);
    fusion_span.finish();
    let matching = cfg.matcher.build().matching_store_traced(&fused, telemetry);
    let acc = accuracy(&matching, fused.sources());
    let ranking = ranking_metrics_store(&fused);
    telemetry.gauge("pipeline", "accuracy", None, acc);
    telemetry.gauge("pipeline", "matched_pairs", None, matching.len() as f64);
    Ok(CeaffOutput {
        fused,
        matching,
        accuracy: acc,
        ranking,
        textual_fusion: None,
        final_fusion: Some(report),
        flat_weights: None,
        trace: telemetry.take_trace(),
    })
}

/// Deprecated panicking shim over [`try_run_with_features`].
///
/// # Panics
/// Panics if `cfg` enables no feature that `features` actually contains.
#[deprecated(since = "0.1.0", note = "use `try_run_with_features` instead")]
pub fn run_with_features(pair: &KgPair, features: &FeatureSet, cfg: &CeaffConfig) -> CeaffOutput {
    try_run_with_features(pair, features, cfg, &Telemetry::disabled())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Deprecated panicking shim over [`try_run`].
///
/// # Panics
/// Panics on an invalid configuration or an empty feature set.
#[deprecated(since = "0.1.0", note = "use `try_run` instead")]
pub fn run(input: &EaInput<'_>, cfg: &CeaffConfig) -> CeaffOutput {
    try_run(input, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Deprecated panicking shim over [`try_run_single_stage`].
///
/// # Panics
/// Panics if `cfg` enables no feature that `features` actually contains.
#[deprecated(since = "0.1.0", note = "use `try_run_single_stage` instead")]
pub fn run_single_stage(features: &FeatureSet, cfg: &CeaffConfig) -> CeaffOutput {
    try_run_single_stage(features, cfg, &Telemetry::disabled()).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_datagen::{GenConfig, GeneratedDataset, NameChannel, Preset};
    use ceaff_telemetry::{EventKind, InMemorySink};
    use std::sync::Arc;

    fn dataset() -> GeneratedDataset {
        ceaff_datagen::generate(&GenConfig {
            aligned_entities: 150,
            extra_frac: 0.1,
            avg_degree: 8.0,
            overlap: 0.8,
            channel: NameChannel::CloseLingual {
                morph_rate: 0.5,
                replace_rate: 0.2,
            },
            vocab_size: 400,
            lexicon_coverage: 0.9,
            ..GenConfig::default()
        })
    }

    fn fast_cfg() -> CeaffConfig {
        CeaffConfig {
            gcn: GcnConfig {
                dim: 32,
                epochs: 50,
                ..GcnConfig::default()
            },
            embed_dim: 32,
            ..CeaffConfig::default()
        }
    }

    /// Shorthand: run with precomputed features and disabled telemetry.
    fn run_wf(pair: &KgPair, features: &FeatureSet, cfg: &CeaffConfig) -> CeaffOutput {
        try_run_with_features(pair, features, cfg, &Telemetry::disabled()).expect("pipeline runs")
    }

    #[test]
    fn full_pipeline_beats_greedy_and_single_features() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let cfg = fast_cfg();
        let features = FeatureSet::compute_all(&input, &cfg);

        let full = run_wf(&ds.pair, &features, &cfg);
        let greedy = run_wf(&ds.pair, &features, &cfg.clone().without_collective());
        assert!(
            full.accuracy >= greedy.accuracy,
            "collective {} must not lose to greedy {}",
            full.accuracy,
            greedy.accuracy
        );
        assert!(
            full.accuracy > 0.5,
            "full pipeline accuracy {}",
            full.accuracy
        );
        assert!(full.matching.is_one_to_one());
    }

    #[test]
    fn ablation_switches_produce_different_configs() {
        let cfg = fast_cfg();
        assert!(!cfg.clone().without_structural().use_structural);
        assert!(!cfg.clone().without_semantic().use_semantic);
        assert!(!cfg.clone().without_string().use_string);
        assert!(matches!(
            cfg.clone().without_adaptive_fusion().weighting,
            WeightingMode::Equal
        ));
        assert!(matches!(
            cfg.clone().without_collective().matcher,
            MatcherKind::Greedy
        ));
        assert!(!cfg.clone().without_theta_cap().fusion.cap_enabled);
    }

    #[test]
    fn builder_covers_every_field() {
        let cfg = CeaffConfig::builder()
            .gcn(GcnConfig {
                dim: 16,
                epochs: 10,
                ..GcnConfig::default()
            })
            .embed_dim(16)
            .fusion(FusionConfig {
                theta1: 0.9,
                theta2: 0.2,
                cap_enabled: false,
            })
            .structural(false)
            .semantic(true)
            .string(false)
            .weighting(WeightingMode::Equal)
            .matcher(MatcherKind::Hungarian)
            .normalize_features(false)
            .csls(5)
            .build()
            .expect("valid configuration");
        assert_eq!(cfg.gcn.dim, 16);
        assert_eq!(cfg.embed_dim, 16);
        assert!(!cfg.fusion.cap_enabled);
        assert!(!cfg.use_structural);
        assert!(cfg.use_semantic);
        assert!(!cfg.use_string);
        assert!(matches!(cfg.weighting, WeightingMode::Equal));
        assert!(matches!(cfg.matcher, MatcherKind::Hungarian));
        assert!(!cfg.normalize_features);
        assert_eq!(cfg.csls, Some(5));
    }

    #[test]
    fn builder_and_validate_reject_bad_configs() {
        let err = CeaffConfig::builder().embed_dim(0).build().unwrap_err();
        assert!(matches!(err, CeaffError::InvalidConfig(_)));
        let err = CeaffConfig::builder().csls(0).build().unwrap_err();
        assert!(matches!(err, CeaffError::InvalidConfig(_)));
        let mut cfg = fast_cfg();
        cfg.gcn.dim = 0;
        assert!(cfg.validate().is_err());
        assert!(fast_cfg().validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_blocking() {
        let err = CeaffConfig::builder()
            .candidate_strategy(CandidateStrategy::Blocked {
                k: 0,
                blocking: ceaff_sim::BlockingConfig::default(),
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CeaffError::InvalidConfig(_)));
        let err = CeaffConfig::builder()
            .candidate_strategy(CandidateStrategy::Blocked {
                k: 10,
                blocking: ceaff_sim::BlockingConfig {
                    index_tokens: false,
                    index_trigrams: false,
                    ..ceaff_sim::BlockingConfig::default()
                },
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CeaffError::InvalidConfig(_)));
        assert!(fast_cfg().with_blocking(25).validate().is_ok());
    }

    #[test]
    fn candidate_strategy_defaults_to_dense_in_old_serialized_configs() {
        // Configs serialized before the field existed must keep loading,
        // and must land on the dense (golden-metric) path.
        let json = serde_json::to_string(&fast_cfg()).expect("serializes");
        let stripped = json.replace("\"candidates\":\"Dense\"", "\"candidates\":null");
        assert_ne!(json, stripped, "serialized config must contain the field");
        let cfg: CeaffConfig = serde_json::from_str(&stripped).expect("old config loads");
        assert!(cfg.candidates.is_dense());
        // And the blocked variant round-trips.
        let blocked = fast_cfg().with_blocking(40);
        let json = serde_json::to_string(&blocked).expect("serializes");
        let back: CeaffConfig = serde_json::from_str(&json).expect("roundtrips");
        assert_eq!(back.candidates, blocked.candidates);
    }

    #[test]
    fn blocked_pipeline_runs_sparse_end_to_end() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let sink = Arc::new(InMemorySink::default());
        let input =
            EaInput::new(&ds.pair, &src, &tgt).with_telemetry(Telemetry::with_sink(sink.clone()));
        let cfg = fast_cfg().with_blocking(30);
        let out = try_run(&input, &cfg).expect("blocked pipeline runs");
        assert!(out.fused.is_sparse(), "blocked fusion must stay sparse");
        let n = ds.pair.test_pairs().len();
        assert!(
            out.fused.nnz() < n * n,
            "sparse store must hold fewer than n*t entries"
        );
        // Blocking telemetry: recall ceiling, candidate count, fraction.
        let recall = out
            .trace
            .events_of(EventKind::Gauge, "blocking")
            .find(|e| e.name == "recall")
            .map(|e| e.value)
            .expect("blocking/recall gauged");
        assert!(recall > 0.8, "blocking recall too low: {recall}");
        assert!(out
            .trace
            .events_of(EventKind::Gauge, "blocking")
            .any(|e| e.name == "scored_fraction"));
        // End-to-end quality holds up on the close-lingual benchmark.
        assert!(
            out.accuracy > 0.5,
            "blocked pipeline accuracy {}",
            out.accuracy
        );
        assert!(out.matching.is_one_to_one());
    }

    #[test]
    fn blocked_pipeline_rejects_checkpointing() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let cfg = fast_cfg().with_blocking(25);
        let dir = std::env::temp_dir().join(format!("ceaff-blocked-ck-{}", std::process::id()));
        let err = try_run_checkpointed(&input, &cfg, &dir, CheckpointPolicy::PerStage).unwrap_err();
        match &err {
            // The message must name both offending flags so a CLI user
            // knows exactly which pair of options conflicts.
            CeaffError::InvalidConfig(msg) => {
                assert!(msg.contains("--checkpoint-dir"), "{msg}");
                assert!(msg.contains("--candidates blocked"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_rejects_degenerate_training_hyperparameters() {
        let expect_invalid = |mutate: fn(&mut CeaffConfig), what: &str| {
            let mut cfg = fast_cfg();
            mutate(&mut cfg);
            match cfg.validate() {
                Err(CeaffError::InvalidConfig(msg)) => {
                    assert!(!msg.is_empty(), "{what}: empty message")
                }
                other => panic!("{what}: expected InvalidConfig, got {other:?}"),
            }
        };
        expect_invalid(|c| c.gcn.epochs = 0, "zero epochs");
        expect_invalid(
            |c| c.gcn.optimizer = OptimKind::Adam { lr: 0.0 },
            "zero learning rate",
        );
        expect_invalid(
            |c| c.gcn.optimizer = OptimKind::Adam { lr: -0.01 },
            "negative learning rate",
        );
        expect_invalid(
            |c| c.gcn.optimizer = OptimKind::Sgd { lr: f32::NAN },
            "NaN learning rate",
        );
        expect_invalid(
            |c| c.gcn.optimizer = OptimKind::Sgd { lr: f32::INFINITY },
            "infinite learning rate",
        );
        expect_invalid(|c| c.gcn.margin = 0.0, "zero margin");
        expect_invalid(|c| c.gcn.margin = f32::NAN, "NaN margin");
        expect_invalid(|c| c.gcn.margin = -1.0, "negative margin");
        expect_invalid(|c| c.gcn.dim = 0, "zero dimension");
        expect_invalid(
            |c| c.gcn.validation_fraction = -0.1,
            "negative validation fraction",
        );
        expect_invalid(
            |c| c.gcn.validation_fraction = 1.0,
            "validation fraction of one leaves no training seeds",
        );
        expect_invalid(
            |c| c.gcn.validation_fraction = f64::NAN,
            "NaN validation fraction",
        );
        expect_invalid(|c| c.gcn.validate_every = 0, "zero validate_every");
        expect_invalid(
            |c| {
                c.gcn.hard_negative_pool = 8;
                c.gcn.hard_negative_refresh = 0;
            },
            "hard negatives with zero refresh interval",
        );
        expect_invalid(
            |c| {
                c.weighting = WeightingMode::LogisticRegression(crate::lr::LrConfig {
                    epochs: 0,
                    ..Default::default()
                })
            },
            "zero lr weighting epochs",
        );
        expect_invalid(
            |c| {
                c.weighting = WeightingMode::LogisticRegression(crate::lr::LrConfig {
                    negatives_per_positive: 0,
                    ..Default::default()
                })
            },
            "zero lr weighting negatives",
        );
        expect_invalid(
            |c| {
                c.weighting = WeightingMode::LogisticRegression(crate::lr::LrConfig {
                    lr: f32::NAN,
                    ..Default::default()
                })
            },
            "NaN lr weighting learning rate",
        );
        expect_invalid(
            |c| {
                c.weighting = WeightingMode::LogisticRegression(crate::lr::LrConfig {
                    lr: -1.0,
                    ..Default::default()
                })
            },
            "negative lr weighting learning rate",
        );
        // A pool of zero means hard negatives are off; refresh is then
        // irrelevant and must not be rejected.
        let mut cfg = fast_cfg();
        cfg.gcn.hard_negative_pool = 0;
        cfg.gcn.hard_negative_refresh = 0;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn feature_ablations_run_end_to_end() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let cfg = fast_cfg();
        let features = FeatureSet::compute_all(&input, &cfg);
        for variant in [
            cfg.clone().without_structural(),
            cfg.clone().without_semantic(),
            cfg.clone().without_string(),
            cfg.clone().without_adaptive_fusion(),
            cfg.clone().without_theta_cap(),
            cfg.clone().with_lr_weighting(crate::lr::LrConfig {
                epochs: 50,
                ..Default::default()
            }),
        ] {
            let out = run_wf(&ds.pair, &features, &variant);
            assert!(
                out.accuracy > 0.1,
                "variant should still align something: {}",
                out.accuracy
            );
            assert_eq!(out.fused.sources(), ds.pair.test_pairs().len());
        }
    }

    #[test]
    fn no_features_is_an_error() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let mut cfg = fast_cfg();
        cfg.use_structural = false;
        cfg.use_semantic = false;
        cfg.use_string = false;
        let features = FeatureSet::compute(&input, &cfg);
        let err =
            try_run_with_features(&ds.pair, &features, &cfg, &Telemetry::disabled()).unwrap_err();
        assert_eq!(err, CeaffError::EmptyFeatureSet);
        let err = try_run_single_stage(&features, &cfg, &Telemetry::disabled()).unwrap_err();
        assert_eq!(err, CeaffError::EmptyFeatureSet);
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "enables no computed feature")]
    fn deprecated_shim_preserves_the_panic() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let mut cfg = fast_cfg();
        cfg.use_structural = false;
        cfg.use_semantic = false;
        cfg.use_string = false;
        let features = FeatureSet::compute(&input, &cfg);
        let _ = run_with_features(&ds.pair, &features, &cfg);
    }

    /// A constant-matrix feature used to provoke a shape mismatch.
    struct FixedFeature(SimStore);

    impl FixedFeature {
        fn zeros(n: usize, t: usize) -> Self {
            Self(SimStore::Dense(SimilarityMatrix::zeros(n, t)))
        }
    }

    impl Feature for FixedFeature {
        fn name(&self) -> &'static str {
            "fixed"
        }

        fn test_store(&self) -> &SimStore {
            &self.0
        }

        fn score(&self, _: ceaff_graph::EntityId, _: ceaff_graph::EntityId) -> f32 {
            0.0
        }
    }

    #[test]
    fn mismatched_feature_shapes_are_an_error() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let cfg = fast_cfg();
        let features =
            FeatureSet::compute_all(&input, &cfg).with_extra(Box::new(FixedFeature::zeros(2, 3)));
        let err =
            try_run_with_features(&ds.pair, &features, &cfg, &Telemetry::disabled()).unwrap_err();
        match err {
            CeaffError::ShapeMismatch { feature, found, .. } => {
                assert_eq!(feature, "fixed");
                assert_eq!(found, (2, 3));
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn trace_is_always_populated() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let cfg = fast_cfg();
        let out = try_run(&input, &cfg).expect("pipeline runs");
        // Disabled telemetry still records stage timings and counters.
        for stage in ["gcn", "semantic", "string", "fusion", "matcher"] {
            assert!(
                out.trace.stage_seconds(stage).is_some(),
                "stage '{stage}' missing from trace: {:?}",
                out.trace.stages
            );
        }
        assert!(out.trace.counter("matcher", "iterations").is_some());
        // ... but no event stream.
        assert!(out.trace.events.is_empty());
    }

    #[test]
    fn enabled_telemetry_streams_gcn_fusion_and_matcher_events() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let sink = Arc::new(InMemorySink::default());
        let input =
            EaInput::new(&ds.pair, &src, &tgt).with_telemetry(Telemetry::with_sink(sink.clone()));
        let cfg = fast_cfg();
        let out = try_run(&input, &cfg).expect("pipeline runs");
        let epochs: Vec<_> = out
            .trace
            .events_of(EventKind::Gauge, "gcn")
            .filter(|e| e.name == "epoch_loss")
            .collect();
        assert_eq!(epochs.len(), cfg.gcn.epochs, "one loss gauge per epoch");
        assert!(
            out.trace
                .events_of(EventKind::Gauge, "fusion")
                .any(|e| e.name.ends_with("_weight")),
            "fusion weights must be gauged"
        );
        assert!(
            out.trace
                .events_of(EventKind::Counter, "matcher")
                .any(|e| e.name == "iterations"),
            "matcher iterations must be counted"
        );
        // The sink saw the same stream the trace kept.
        assert_eq!(sink.len(), out.trace.events.len());
    }

    #[test]
    fn fourth_feature_joins_adaptive_fusion() {
        // The paper's motivation: the adaptive strategy extends to more
        // features without hand-tuning. Attach the attribute feature and
        // verify the pipeline runs, weights stay on the simplex, and
        // accuracy does not collapse.
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let cfg = fast_cfg();
        let base = FeatureSet::compute_all(&input, &cfg);
        let baseline = run_wf(&ds.pair, &base, &cfg);

        let features = FeatureSet::compute_all(&input, &cfg).with_extra(Box::new(
            crate::features::AttributeFeature::compute(
                &ds.pair,
                &ds.source_attributes,
                &ds.target_attributes,
            ),
        ));
        let out = run_wf(&ds.pair, &features, &cfg);
        let trep = out.textual_fusion.expect("textual stage ran");
        assert_eq!(trep.weights.len(), 3, "semantic + string + attribute");
        let total: f32 = trep.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-4);
        assert!(
            out.accuracy >= baseline.accuracy - 0.1,
            "a weak fourth feature must not wreck fusion: {} vs {}",
            out.accuracy,
            baseline.accuracy
        );

        // Equal and LR modes also accept the fourth feature.
        let eq = run_wf(&ds.pair, &features, &cfg.clone().without_adaptive_fusion());
        assert_eq!(eq.flat_weights.as_ref().map(Vec::len), Some(4));
        let lr = run_wf(
            &ds.pair,
            &features,
            &cfg.clone().with_lr_weighting(crate::lr::LrConfig {
                epochs: 50,
                ..Default::default()
            }),
        );
        assert_eq!(lr.flat_weights.as_ref().map(Vec::len), Some(4));
    }

    #[test]
    fn csls_option_runs_and_preserves_shapes() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let cfg = fast_cfg().with_csls(10);
        assert_eq!(cfg.csls, Some(10));
        let features = FeatureSet::compute_all(&input, &cfg);
        let out = run_wf(&ds.pair, &features, &cfg);
        assert_eq!(out.fused.sources(), ds.pair.test_pairs().len());
        assert!(out.accuracy > 0.3, "CSLS run accuracy {}", out.accuracy);
    }

    #[test]
    fn greedy_one_to_one_matcher_is_one_to_one() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let mut cfg = fast_cfg();
        cfg.matcher = MatcherKind::GreedyOneToOne;
        let features = FeatureSet::compute_all(&input, &cfg);
        let out = run_wf(&ds.pair, &features, &cfg);
        assert!(out.matching.is_one_to_one());
        assert_eq!(out.matching.len(), ds.pair.test_pairs().len());
    }

    #[test]
    fn mono_lingual_preset_reaches_high_accuracy() {
        // The headline mono-lingual result (Table IV): with the string
        // feature and collective matching, accuracy approaches 1.
        let ds = Preset::SrprsDbpWd.generate(0.15);
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let cfg = fast_cfg();
        let features = FeatureSet::compute_all(&input, &cfg);
        let out = run_wf(&ds.pair, &features, &cfg);
        assert!(
            out.accuracy > 0.9,
            "mono-lingual CEAFF accuracy {} below 0.9",
            out.accuracy
        );
    }
}
