//! Crash-safe checkpointing of pipeline runs (the fault-tolerance layer).
//!
//! A run directory holds one artifact per completed unit of work — the
//! in-flight GCN training state and each finished pipeline stage — plus a
//! `manifest.json` recording the byte length and CRC32 of every artifact
//! and a `config.json` envelope pinning the run's configuration. Every
//! write is atomic (`name.tmp` + `rename`), and the manifest is only
//! updated *after* its artifact landed, so a crash at any instant leaves
//! the directory either without the artifact or with a fully verified one
//! — never with a half-written file that a resume would trust.
//!
//! Resume correctness leans on the workspace's determinism contract: every
//! stage is bitwise-reproducible at any thread count, so a run resumed
//! from checkpoints is *required* (and tested) to produce bit-identical
//! final metrics to the same run executed uninterrupted.
//!
//! Binary artifacts use a little-endian fixed-width codec (`f32`/`f64`
//! values as raw bits), so floating-point state round-trips exactly.

use crate::error::CeaffError;
use crate::pipeline::CeaffConfig;
use ceaff_tensor::{Matrix, OptimSlot, OptimState};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Version tag written into `config.json` and checked on open, so a
/// future layout change fails loudly instead of mis-parsing old runs.
pub const FORMAT_VERSION: u32 = 1;

/// In-flight GCN training state artifact.
pub const TRAIN_FILE: &str = "gcn_train.ckpt";
/// Completed structural-stage artifact.
pub const STAGE_STRUCTURAL: &str = "stage_structural.bin";
/// Completed semantic-stage artifact.
pub const STAGE_SEMANTIC: &str = "stage_semantic.bin";
/// Completed string-stage artifact.
pub const STAGE_STRING: &str = "stage_string.bin";

/// When checkpoints are written during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointPolicy {
    /// No checkpointing (the default for plain `try_run`).
    Off,
    /// Save each pipeline stage's output when the stage completes.
    PerStage,
    /// Per-stage outputs *plus* the GCN training state every `N` epochs,
    /// so a crash mid-training loses at most `N` epochs of work.
    EveryNEpochs(usize),
}

impl CheckpointPolicy {
    /// The epoch interval at which training state is saved, when any.
    pub fn epoch_interval(&self) -> Option<usize> {
        match self {
            CheckpointPolicy::EveryNEpochs(n) if *n > 0 => Some(*n),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC32 checksum (IEEE) of a byte slice — the integrity check attached
/// to every checkpoint artifact.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Little-endian binary codec
// ---------------------------------------------------------------------------

/// Append-only little-endian encoder for binary checkpoint artifacts.
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn f32s(&mut self, vs: &[f32]) {
        self.usize(vs.len());
        for &v in vs {
            self.f32(v);
        }
    }

    pub(crate) fn u32s(&mut self, vs: &[u32]) {
        self.usize(vs.len());
        for &v in vs {
            self.u32(v);
        }
    }

    pub(crate) fn matrix(&mut self, m: &Matrix) {
        self.usize(m.rows());
        self.usize(m.cols());
        for &v in m.as_slice() {
            self.f32(v);
        }
    }
}

/// Cursor-based decoder over a checkpoint artifact; every read is
/// bounds-checked so a truncated or corrupt payload fails with a reason
/// instead of panicking.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                format!(
                    "truncated payload: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                )
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i32(&mut self) -> Result<i32, String> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, String> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| format!("length {v} exceeds the address space"))
    }

    /// A length prefix that must also be *plausible*: the remaining bytes
    /// must be able to hold `elem_bytes`-sized elements of that count.
    /// Catches corrupted lengths before they drive a huge allocation.
    fn checked_len(&mut self, elem_bytes: usize) -> Result<usize, String> {
        let n = self.usize()?;
        let need = n
            .checked_mul(elem_bytes)
            .ok_or_else(|| format!("implausible element count {n}"))?;
        if need > self.buf.len() - self.pos {
            return Err(format!(
                "element count {n} needs {need} bytes but only {} remain",
                self.buf.len() - self.pos
            ));
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self) -> Result<String, String> {
        let n = self.checked_len(1)?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| "invalid UTF-8 string".to_owned())
    }

    pub(crate) fn f32s(&mut self) -> Result<Vec<f32>, String> {
        let n = self.checked_len(4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    pub(crate) fn u32s(&mut self) -> Result<Vec<u32>, String> {
        let n = self.checked_len(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    pub(crate) fn matrix(&mut self) -> Result<Matrix, String> {
        let rows = self.usize()?;
        let cols = self.usize()?;
        let elems = rows
            .checked_mul(cols)
            .filter(|&e| {
                e.checked_mul(4)
                    .is_some_and(|b| b <= self.buf.len() - self.pos)
            })
            .ok_or_else(|| format!("implausible matrix shape {rows}x{cols}"))?;
        let mut data = Vec::with_capacity(elems);
        for _ in 0..elems {
            data.push(self.f32()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

// ---------------------------------------------------------------------------
// Manifest and config envelope
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestEntry {
    file: String,
    bytes: u64,
    crc32: u32,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    config_crc32: u32,
    entries: Vec<ManifestEntry>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConfigEnvelope {
    version: u32,
    policy: CheckpointPolicy,
    config: CeaffConfig,
}

fn ckpt_err(file: impl Into<String>, reason: impl Into<String>) -> CeaffError {
    CeaffError::Checkpoint {
        file: file.into(),
        reason: reason.into(),
    }
}

/// Fingerprint of a configuration: CRC32 of its canonical JSON form.
/// Resuming under a different configuration would silently change the
/// result, so a mismatch is a hard error.
pub(crate) fn config_fingerprint(cfg: &CeaffConfig) -> Result<u32, CeaffError> {
    let json = serde_json::to_string(cfg)
        .map_err(|e| ckpt_err("config.json", format!("cannot serialize config: {e}")))?;
    Ok(crc32(json.as_bytes()))
}

/// Write `bytes` to `path` atomically: land them in `path.tmp` first,
/// fsync, then rename over the destination. A crash mid-write leaves the
/// old artifact (or nothing) in place, never a torn file.
fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(e) = ceaff_faultinject::io_error(path) {
        return Err(e);
    }
    let tmp = path.with_extension("tmp");
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn read_file(path: &Path) -> std::io::Result<Vec<u8>> {
    if let Some(e) = ceaff_faultinject::io_error(path) {
        return Err(e);
    }
    std::fs::read(path)
}

// ---------------------------------------------------------------------------
// Checkpointer
// ---------------------------------------------------------------------------

/// Handle to a run directory: verified loads, atomic saves, manifest
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    dir: PathBuf,
    policy: CheckpointPolicy,
    config_crc32: u32,
}

impl Checkpointer {
    /// Create (or re-open) a run directory for `cfg`.
    ///
    /// A fresh directory gets a `config.json` envelope; an existing one
    /// must have been produced by the *same* configuration — a
    /// fingerprint mismatch is a [`CeaffError::Checkpoint`] error, since
    /// resuming under different hyperparameters would corrupt the run.
    pub fn create(
        dir: impl AsRef<Path>,
        policy: CheckpointPolicy,
        cfg: &CeaffConfig,
    ) -> Result<Self, CeaffError> {
        if policy == CheckpointPolicy::EveryNEpochs(0) {
            // A zero interval silently behaved like PerStage (the
            // training state was never saved); reject it so the caller
            // states what they actually want.
            return Err(CeaffError::InvalidConfig(
                "checkpoint interval must be at least 1 epoch \
                 (use CheckpointPolicy::PerStage for stage-only checkpoints)"
                    .into(),
            ));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ckpt_err(dir.display().to_string(), format!("cannot create: {e}")))?;
        let fingerprint = config_fingerprint(cfg)?;
        let config_path = dir.join("config.json");
        if config_path.exists() {
            let envelope = Self::read_envelope(&config_path)?;
            let stored = config_fingerprint(&envelope.config)?;
            if stored != fingerprint {
                return Err(ckpt_err(
                    "config.json",
                    "run directory was created with a different configuration",
                ));
            }
        }
        // (Re)write the envelope so the latest policy is what a later
        // `resume_from` picks up.
        let envelope = ConfigEnvelope {
            version: FORMAT_VERSION,
            policy,
            config: cfg.clone(),
        };
        let json = serde_json::to_string_pretty(&envelope)
            .map_err(|e| ckpt_err("config.json", format!("cannot serialize: {e}")))?;
        atomic_write(&config_path, json.as_bytes())
            .map_err(|e| ckpt_err("config.json", format!("cannot write: {e}")))?;
        Ok(Self {
            dir,
            policy,
            config_crc32: fingerprint,
        })
    }

    /// Open an existing run directory, recovering the configuration and
    /// policy it was created with (the `resume_from` entry point).
    pub fn open(dir: impl AsRef<Path>) -> Result<(Self, CeaffConfig), CeaffError> {
        let dir = dir.as_ref().to_path_buf();
        let envelope = Self::read_envelope(&dir.join("config.json"))?;
        if envelope.version != FORMAT_VERSION {
            return Err(ckpt_err(
                "config.json",
                format!(
                    "format version {} is not the supported {FORMAT_VERSION}",
                    envelope.version
                ),
            ));
        }
        let fingerprint = config_fingerprint(&envelope.config)?;
        Ok((
            Self {
                dir,
                policy: envelope.policy,
                config_crc32: fingerprint,
            },
            envelope.config,
        ))
    }

    fn read_envelope(path: &Path) -> Result<ConfigEnvelope, CeaffError> {
        let bytes =
            read_file(path).map_err(|e| ckpt_err("config.json", format!("cannot read: {e}")))?;
        let text =
            String::from_utf8(bytes).map_err(|_| ckpt_err("config.json", "not valid UTF-8"))?;
        serde_json::from_str(&text).map_err(|e| ckpt_err("config.json", format!("bad JSON: {e}")))
    }

    /// The policy this run was created with.
    pub fn policy(&self) -> CheckpointPolicy {
        self.policy
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    fn read_manifest(&self) -> Result<Manifest, CeaffError> {
        let path = self.manifest_path();
        if !path.exists() {
            return Ok(Manifest {
                version: FORMAT_VERSION,
                config_crc32: self.config_crc32,
                entries: Vec::new(),
            });
        }
        let bytes =
            read_file(&path).map_err(|e| ckpt_err("manifest.json", format!("cannot read: {e}")))?;
        let text =
            String::from_utf8(bytes).map_err(|_| ckpt_err("manifest.json", "not valid UTF-8"))?;
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| ckpt_err("manifest.json", format!("bad JSON: {e}")))?;
        if manifest.config_crc32 != self.config_crc32 {
            return Err(ckpt_err(
                "manifest.json",
                "manifest belongs to a different configuration",
            ));
        }
        Ok(manifest)
    }

    /// Atomically save an artifact and record it in the manifest. The
    /// manifest is written *after* the artifact rename lands, so an entry
    /// always refers to complete bytes.
    pub fn save(&self, name: &str, payload: &[u8]) -> Result<(), CeaffError> {
        atomic_write(&self.dir.join(name), payload)
            .map_err(|e| ckpt_err(name, format!("cannot write: {e}")))?;
        let mut manifest = self.read_manifest()?;
        let entry = ManifestEntry {
            file: name.to_owned(),
            bytes: payload.len() as u64,
            crc32: crc32(payload),
        };
        match manifest.entries.iter_mut().find(|e| e.file == name) {
            Some(slot) => *slot = entry,
            None => manifest.entries.push(entry),
        }
        let json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| ckpt_err("manifest.json", format!("cannot serialize: {e}")))?;
        atomic_write(&self.manifest_path(), json.as_bytes())
            .map_err(|e| ckpt_err("manifest.json", format!("cannot write: {e}")))
    }

    /// Load and verify an artifact. `Ok(None)` when the manifest has no
    /// entry for it (the unit of work never completed); a size or CRC32
    /// mismatch is a typed error and loads nothing partial.
    pub fn load(&self, name: &str) -> Result<Option<Vec<u8>>, CeaffError> {
        let manifest = self.read_manifest()?;
        let Some(entry) = manifest.entries.iter().find(|e| e.file == name) else {
            return Ok(None);
        };
        let path = self.dir.join(name);
        if !path.exists() {
            return Err(ckpt_err(name, "listed in the manifest but missing on disk"));
        }
        let bytes = read_file(&path).map_err(|e| ckpt_err(name, format!("cannot read: {e}")))?;
        if bytes.len() as u64 != entry.bytes {
            return Err(ckpt_err(
                name,
                format!(
                    "truncated: {} bytes on disk, {} expected",
                    bytes.len(),
                    entry.bytes
                ),
            ));
        }
        let found = crc32(&bytes);
        if found != entry.crc32 {
            return Err(ckpt_err(
                name,
                format!(
                    "crc32 mismatch: {found:#010x} on disk, {:#010x} expected",
                    entry.crc32
                ),
            ));
        }
        Ok(Some(bytes))
    }

    /// Whether a verified artifact with this name is recorded.
    pub fn has(&self, name: &str) -> bool {
        self.read_manifest()
            .map(|m| m.entries.iter().any(|e| e.file == name))
            .unwrap_or(false)
    }

    /// Drop an artifact from the manifest and disk (e.g. the in-flight
    /// training state once its stage output is saved).
    pub fn remove(&self, name: &str) -> Result<(), CeaffError> {
        let mut manifest = self.read_manifest()?;
        manifest.entries.retain(|e| e.file != name);
        let json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| ckpt_err("manifest.json", format!("cannot serialize: {e}")))?;
        atomic_write(&self.manifest_path(), json.as_bytes())
            .map_err(|e| ckpt_err("manifest.json", format!("cannot write: {e}")))?;
        std::fs::remove_file(self.dir.join(name)).ok();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// GCN training-state artifact
// ---------------------------------------------------------------------------

/// Everything the GCN training loop needs to continue bitwise-identically
/// from an epoch boundary.
pub(crate) struct GcnTrainState {
    /// The next epoch to run (all epochs `< next_epoch` are complete).
    pub next_epoch: usize,
    /// Numeric-recovery attempts consumed so far.
    pub retries: usize,
    /// Parameter matrices in registration order (`x1, x2, w1, w2`).
    pub params: Vec<Matrix>,
    /// Optimizer moments / step counter / (possibly decayed) LR.
    pub opt: OptimState,
    /// ChaCha8 state words, resuming the sampling stream mid-draw.
    pub rng_words: [u32; 33],
    /// Loss per completed epoch.
    pub loss_curve: Vec<f32>,
    /// Hard-negative pools (refreshed on a cadence, so part of the state).
    pub pool_u: Vec<Vec<u32>>,
    pub pool_v: Vec<Vec<u32>>,
    /// Early-stopping snapshot: best validation score and embeddings.
    pub best: Option<(f64, Matrix, Matrix)>,
}

fn write_pools(w: &mut ByteWriter, pools: &[Vec<u32>]) {
    w.usize(pools.len());
    for p in pools {
        w.u32s(p);
    }
}

fn read_pools(r: &mut ByteReader<'_>) -> Result<Vec<Vec<u32>>, String> {
    let n = r.usize()?;
    (0..n).map(|_| r.u32s()).collect()
}

pub(crate) fn encode_train_state(s: &GcnTrainState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.usize(s.next_epoch);
    w.usize(s.retries);
    w.usize(s.params.len());
    for m in &s.params {
        w.matrix(m);
    }
    w.str(&s.opt.kind);
    w.i32(s.opt.step_count);
    w.f32(s.opt.lr);
    w.usize(s.opt.slots.len());
    for slot in &s.opt.slots {
        w.usize(slot.param);
        w.usize(slot.moments.len());
        for m in &slot.moments {
            w.matrix(m);
        }
    }
    for &word in &s.rng_words {
        w.u32(word);
    }
    w.f32s(&s.loss_curve);
    write_pools(&mut w, &s.pool_u);
    write_pools(&mut w, &s.pool_v);
    match &s.best {
        None => w.u8(0),
        Some((score, z1, z2)) => {
            w.u8(1);
            w.f64(*score);
            w.matrix(z1);
            w.matrix(z2);
        }
    }
    w.into_bytes()
}

pub(crate) fn decode_train_state(bytes: &[u8]) -> Result<GcnTrainState, String> {
    let mut r = ByteReader::new(bytes);
    let next_epoch = r.usize()?;
    let retries = r.usize()?;
    let n_params = r.usize()?;
    let params = (0..n_params)
        .map(|_| r.matrix())
        .collect::<Result<Vec<_>, _>>()?;
    let kind = r.str()?;
    let step_count = r.i32()?;
    let lr = r.f32()?;
    let n_slots = r.usize()?;
    let mut slots = Vec::with_capacity(n_slots.min(1024));
    for _ in 0..n_slots {
        let param = r.usize()?;
        let n_moments = r.usize()?;
        let moments = (0..n_moments)
            .map(|_| r.matrix())
            .collect::<Result<Vec<_>, _>>()?;
        slots.push(OptimSlot { param, moments });
    }
    let mut rng_words = [0u32; 33];
    for word in rng_words.iter_mut() {
        *word = r.u32()?;
    }
    let loss_curve = r.f32s()?;
    let pool_u = read_pools(&mut r)?;
    let pool_v = read_pools(&mut r)?;
    let best = match r.u8()? {
        0 => None,
        1 => Some((r.f64()?, r.matrix()?, r.matrix()?)),
        other => return Err(format!("bad best-snapshot tag {other}")),
    };
    Ok(GcnTrainState {
        next_epoch,
        retries,
        params,
        opt: OptimState {
            kind,
            step_count,
            lr,
            slots,
        },
        rng_words,
        loss_curve,
        pool_u,
        pool_v,
        best,
    })
}

// ---------------------------------------------------------------------------
// Stage-output artifacts
// ---------------------------------------------------------------------------

/// Encode a structural-stage result: normalized embeddings, the test
/// similarity matrix, and the loss curve — everything
/// `StructuralFeature::from_saved_parts` needs.
pub(crate) fn encode_structural(
    z_source: &Matrix,
    z_target: &Matrix,
    test: &Matrix,
    loss_curve: &[f32],
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.matrix(z_source);
    w.matrix(z_target);
    w.matrix(test);
    w.f32s(loss_curve);
    w.into_bytes()
}

pub(crate) fn decode_structural(
    bytes: &[u8],
) -> Result<(Matrix, Matrix, Matrix, Vec<f32>), String> {
    let mut r = ByteReader::new(bytes);
    Ok((r.matrix()?, r.matrix()?, r.matrix()?, r.f32s()?))
}

/// Encode a semantic- (or any two-embedding-) stage result.
pub(crate) fn encode_embedding_stage(
    n_source: &Matrix,
    n_target: &Matrix,
    test: &Matrix,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.matrix(n_source);
    w.matrix(n_target);
    w.matrix(test);
    w.into_bytes()
}

pub(crate) fn decode_embedding_stage(bytes: &[u8]) -> Result<(Matrix, Matrix, Matrix), String> {
    let mut r = ByteReader::new(bytes);
    Ok((r.matrix()?, r.matrix()?, r.matrix()?))
}

/// Encode a string-stage result (names are rebuilt from the KG pair).
pub(crate) fn encode_matrix_stage(test: &Matrix) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.matrix(test);
    w.into_bytes()
}

pub(crate) fn decode_matrix_stage(bytes: &[u8]) -> Result<Matrix, String> {
    let mut r = ByteReader::new(bytes);
    r.matrix()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn codec_roundtrips_exact_bits() {
        let mut w = ByteWriter::new();
        w.u32(0xDEAD_BEEF);
        w.f32(f32::from_bits(0x7FC0_0001)); // a NaN payload
        w.f64(-0.1);
        w.str("héllo");
        w.f32s(&[1.5, -0.0, f32::MIN_POSITIVE]);
        w.matrix(&Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.f32().unwrap().to_bits(), 0x7FC0_0001);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert_eq!(r.str().unwrap(), "héllo");
        let vs = r.f32s().unwrap();
        assert_eq!(vs[1].to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.matrix().unwrap()[(1, 0)], 3.0);
        assert!(r.is_empty());
    }

    #[test]
    fn reader_rejects_truncation_and_bad_lengths() {
        let mut w = ByteWriter::new();
        w.f32s(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        // Cut mid-payload.
        let mut r = ByteReader::new(&bytes[..bytes.len() - 2]);
        assert!(r.f32s().is_err());
        // A corrupted length prefix must not drive a huge allocation.
        let mut evil = bytes.clone();
        evil[0] = 0xFF;
        evil[7] = 0x7F;
        let mut r = ByteReader::new(&evil);
        assert!(r.f32s().is_err());
    }

    #[test]
    fn train_state_roundtrip_is_exact() {
        let state = GcnTrainState {
            next_epoch: 17,
            retries: 1,
            params: vec![
                Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, f32::EPSILON, 5.0, -6.5]),
                Matrix::from_vec(1, 2, vec![7.0, 8.0]),
            ],
            opt: OptimState {
                kind: "adam".into(),
                step_count: 17,
                lr: 0.01,
                slots: vec![OptimSlot {
                    param: 0,
                    moments: vec![Matrix::zeros(2, 3), Matrix::filled(2, 3, 0.5)],
                }],
            },
            rng_words: core::array::from_fn(|i| i as u32 * 7 + 1),
            loss_curve: vec![3.0, 2.5, 2.0],
            pool_u: vec![vec![1, 2, 3], vec![]],
            pool_v: vec![vec![9]],
            best: Some((0.75, Matrix::filled(2, 2, 1.0), Matrix::filled(2, 2, 2.0))),
        };
        let bytes = encode_train_state(&state);
        let back = decode_train_state(&bytes).unwrap();
        assert_eq!(back.next_epoch, 17);
        assert_eq!(back.retries, 1);
        assert_eq!(back.params, state.params);
        assert_eq!(back.opt, state.opt);
        assert_eq!(back.rng_words, state.rng_words);
        assert_eq!(back.loss_curve, state.loss_curve);
        assert_eq!(back.pool_u, state.pool_u);
        assert_eq!(back.pool_v, state.pool_v);
        let (score, z1, z2) = back.best.unwrap();
        assert_eq!(score.to_bits(), 0.75f64.to_bits());
        assert_eq!(z1, Matrix::filled(2, 2, 1.0));
        assert_eq!(z2, Matrix::filled(2, 2, 2.0));
        // Every decode path rejects truncation.
        for cut in [1usize, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_train_state(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ceaff-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn save_load_roundtrip_with_manifest() {
        let dir = tmp_dir("roundtrip");
        let cfg = CeaffConfig::default();
        let ck = Checkpointer::create(&dir, CheckpointPolicy::PerStage, &cfg).unwrap();
        assert_eq!(ck.load("missing.bin").unwrap(), None);
        ck.save("a.bin", b"hello checkpoint").unwrap();
        assert!(ck.has("a.bin"));
        assert_eq!(ck.load("a.bin").unwrap().unwrap(), b"hello checkpoint");
        // Overwrite updates the manifest entry.
        ck.save("a.bin", b"v2").unwrap();
        assert_eq!(ck.load("a.bin").unwrap().unwrap(), b"v2");
        ck.remove("a.bin").unwrap();
        assert_eq!(ck.load("a.bin").unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_and_truncation_are_typed_errors() {
        let dir = tmp_dir("corrupt");
        let cfg = CeaffConfig::default();
        let ck = Checkpointer::create(&dir, CheckpointPolicy::PerStage, &cfg).unwrap();
        ck.save("x.bin", &[7u8; 64]).unwrap();
        ceaff_faultinject::flip_byte(dir.join("x.bin"), 10).unwrap();
        match ck.load("x.bin") {
            Err(CeaffError::Checkpoint { file, reason }) => {
                assert_eq!(file, "x.bin");
                assert!(reason.contains("crc32"), "{reason}");
            }
            other => panic!("expected checkpoint error, got {other:?}"),
        }
        ck.save("y.bin", &[1u8; 64]).unwrap();
        ceaff_faultinject::truncate_file(dir.join("y.bin"), 10).unwrap();
        match ck.load("y.bin") {
            Err(CeaffError::Checkpoint { reason, .. }) => {
                assert!(reason.contains("truncated"), "{reason}")
            }
            other => panic!("expected checkpoint error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopening_with_a_different_config_is_rejected() {
        let dir = tmp_dir("fingerprint");
        let cfg = CeaffConfig::default();
        Checkpointer::create(&dir, CheckpointPolicy::PerStage, &cfg).unwrap();
        let mut other = cfg.clone();
        other.gcn.epochs += 1;
        let err = Checkpointer::create(&dir, CheckpointPolicy::PerStage, &other).unwrap_err();
        assert!(matches!(err, CeaffError::Checkpoint { .. }));
        // Same config re-opens fine, and `open` recovers it.
        let ck = Checkpointer::create(&dir, CheckpointPolicy::EveryNEpochs(5), &cfg).unwrap();
        assert_eq!(ck.policy().epoch_interval(), Some(5));
        let (reopened, recovered) = Checkpointer::open(&dir).unwrap();
        assert_eq!(reopened.policy(), CheckpointPolicy::EveryNEpochs(5));
        assert_eq!(recovered.gcn.epochs, cfg.gcn.epochs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_without_a_run_directory_fails() {
        let err = Checkpointer::open("/definitely/not/a/run/dir").unwrap_err();
        assert!(matches!(err, CeaffError::Checkpoint { .. }));
    }

    #[test]
    fn zero_epoch_interval_is_rejected_with_a_typed_error() {
        let dir = tmp_dir("zero-interval");
        let err = Checkpointer::create(
            &dir,
            CheckpointPolicy::EveryNEpochs(0),
            &CeaffConfig::default(),
        )
        .unwrap_err();
        match err {
            CeaffError::InvalidConfig(msg) => assert!(msg.contains("at least 1"), "{msg}"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Nothing was written before the rejection.
        assert!(!dir.join("config.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
