#![warn(missing_docs)]

//! # ceaff-core
//!
//! The primary contribution of *Collective Embedding-based Entity Alignment
//! via Adaptive Features* (Zeng et al., ICDE 2020), implemented in full:
//!
//! * **Feature generation** (§IV, [`features`]): a 2-layer shared-weight
//!   GCN trained with a margin-based ranking loss for the structural
//!   feature ([`gcn`]), averaged word-embedding name representations for
//!   the semantic feature, and the Levenshtein-ratio string feature;
//! * **Adaptive feature fusion** (§V, [`fusion`]): training-free dynamic
//!   feature weighting from confident correspondences, with the θ1/θ2 cap
//!   and the two-stage composition (semantic+string → textual, then
//!   structural+textual → fused);
//! * **Collective EA** (§VI, [`matching`]): EA as the stable matching
//!   problem solved by deferred acceptance, plus the Hungarian-algorithm
//!   alternative discussed in the paper and the independent greedy
//!   baseline;
//! * the **logistic-regression weighting baseline** (§VII-E, [`lr`]), the
//!   paper's evaluation metrics ([`eval`]), and an end-to-end
//!   [`pipeline`] with a switch for every Table V ablation.
//!
//! ## Quick start
//!
//! ```
//! use ceaff_core::pipeline::{try_run, CeaffConfig, EaInput};
//! use ceaff_core::gcn::GcnConfig;
//! use ceaff_datagen::Preset;
//!
//! // A scaled-down DBP15K-FR-EN-like benchmark.
//! let ds = Preset::Dbp15kFrEn.generate(0.05);
//! let src = ds.source_embedder(32);
//! let tgt = ds.target_embedder(32);
//! let input = EaInput::new(&ds.pair, &src, &tgt);
//! let cfg = CeaffConfig::builder()
//!     .gcn(GcnConfig { dim: 16, epochs: 20, ..GcnConfig::default() })
//!     .embed_dim(32)
//!     .build()
//!     .expect("valid configuration");
//! let out = try_run(&input, &cfg).expect("pipeline runs");
//! assert!(out.accuracy > 0.0);
//! // Every run carries a trace of per-stage wall-clock timings.
//! assert!(out.trace.stage_seconds("gcn").is_some());
//! ```

pub mod bootstrap;
pub mod budget;
pub mod checkpoint;
pub mod delta;
pub mod error;
pub mod eval;
pub mod features;
pub mod fusion;
pub mod gcn;
pub mod lr;
pub mod matching;
pub mod pipeline;
pub mod propagation;
pub mod snapshot;

#[allow(deprecated)]
pub use bootstrap::run_bootstrapped;
pub use bootstrap::{try_run_bootstrapped, BootstrapConfig, BootstrapOutput};
pub use budget::{BudgetScope, CancelToken, ExecBudget, StopReason};
pub use ceaff_telemetry::{
    Degradation, EventKind, InMemorySink, JsonLinesSink, NullSink, RunTrace, Sink, Telemetry,
    TraceEvent,
};
pub use checkpoint::{CheckpointPolicy, Checkpointer};
pub use delta::{AlignmentDiff, DeltaState};
pub use error::CeaffError;
pub use eval::{
    accuracy, hits_at_k, hits_at_k_store, mrr, mrr_store, precision_recall, ranking_metrics,
    ranking_metrics_store, PrecisionRecall, RankingMetrics,
};
pub use features::{AttributeFeature, Feature, SemanticFeature, StringFeature, StructuralFeature};
pub use fusion::{
    adaptive_fuse, adaptive_fuse_store, adaptive_weights, adaptive_weights_store,
    confident_correspondences, confident_correspondences_store, fuse, fuse_store, two_stage_fuse,
    two_stage_fuse_store, Candidate, FusionConfig, FusionReport,
};
pub use gcn::{
    try_train_budgeted, try_train_traced, Activation, GcnConfig, GcnEncoder, OptimKind,
    MAX_NUMERIC_RETRIES,
};
pub use lr::{learn_weights, LearnedWeights, LrConfig};
pub use matching::{
    AnytimeOutcome, Greedy, GreedyOneToOne, Hungarian, Matcher, MatcherKind, Matching,
    StableMarriage,
};
pub use pipeline::{
    resume_from, resume_from_with_budget, run_decision_budgeted, try_run, try_run_checkpointed,
    try_run_checkpointed_with_budget, try_run_single_stage, try_run_with_budget,
    try_run_with_features, try_run_with_features_budgeted, CandidateStrategy, CeaffConfig,
    CeaffConfigBuilder, CeaffOutput, DecisionOutput, EaInput, FeatureSet, StructuralMode,
    WeightingMode,
};
#[allow(deprecated)]
pub use pipeline::{run, run_single_stage, run_with_features};

#[cfg(test)]
mod doc_support {
    // Keeps `ceaff-datagen` linked for the crate-level doctest.
    #[allow(unused_imports)]
    use ceaff_datagen as _;
}
