//! Error type of the Result-based pipeline API.

use std::fmt;

/// Everything that can go wrong before a pipeline run produces an output.
///
/// Returned by [`crate::pipeline::try_run`],
/// [`crate::pipeline::try_run_with_features`] and
/// [`crate::pipeline::try_run_single_stage`]; the deprecated panicking
/// entry points turn these into panics with the historical messages.
#[derive(Debug, Clone, PartialEq)]
pub enum CeaffError {
    /// The configuration enables no feature that the feature set actually
    /// contains — there is nothing to fuse or match.
    EmptyFeatureSet,
    /// Two active feature matrices disagree about the test-split shape, so
    /// they cannot be fused cell-wise.
    ShapeMismatch {
        /// Name of the offending feature.
        feature: String,
        /// Shape `(sources, targets)` of the first active feature.
        expected: (usize, usize),
        /// Shape of the offending feature.
        found: (usize, usize),
    },
    /// A configuration field holds a value the pipeline cannot run with
    /// (see [`crate::pipeline::CeaffConfig::validate`]).
    InvalidConfig(String),
    /// A checkpoint artifact could not be written, read, or verified
    /// (I/O failure, checksum mismatch, truncated file, or a manifest
    /// that does not match the run's configuration). Nothing partial is
    /// loaded when this is returned.
    Checkpoint {
        /// The artifact (file name within the run directory, or the
        /// directory itself for manifest-level failures).
        file: String,
        /// What went wrong.
        reason: String,
    },
    /// GCN training produced a non-finite loss or gradient and the
    /// bounded rollback-and-halve-the-learning-rate retries ran out.
    NumericDivergence {
        /// Pipeline stage that diverged (currently always `"gcn"`).
        stage: String,
        /// Epoch at which the last non-finite value appeared.
        epoch: usize,
        /// Recovery attempts performed before giving up.
        retries: usize,
    },
    /// A [`crate::delta::DeltaState`] refused or failed to apply a KG
    /// delta: the edit stream is invalid against the current pair
    /// (surfacing the underlying
    /// [`GraphError`](ceaff_graph::GraphError)), or the configuration
    /// cannot be updated incrementally (e.g. the trained-GCN structural
    /// mode). The warm state is left exactly as it was.
    Delta(String),
    /// The run's live tensor footprint crossed the memory budget
    /// installed via [`crate::budget::ExecBudget::with_max_mem_bytes`].
    /// Returned instead of letting the allocator OOM-abort; no partial
    /// result accompanies it because the over-budget stage's output is
    /// untrustworthy.
    BudgetExceeded {
        /// Stage whose boundary check observed the overrun.
        stage: String,
        /// Installed limit in bytes.
        limit_bytes: usize,
        /// High-water mark of live tensor bytes inside the budgeted
        /// scope.
        peak_bytes: usize,
    },
}

impl fmt::Display for CeaffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CeaffError::EmptyFeatureSet => {
                write!(f, "configuration enables no computed feature")
            }
            CeaffError::ShapeMismatch {
                feature,
                expected,
                found,
            } => write!(
                f,
                "feature '{feature}' has shape {}x{} but {}x{} was expected",
                found.0, found.1, expected.0, expected.1
            ),
            CeaffError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CeaffError::Checkpoint { file, reason } => {
                write!(f, "checkpoint failure in '{file}': {reason}")
            }
            CeaffError::NumericDivergence {
                stage,
                epoch,
                retries,
            } => write!(
                f,
                "stage '{stage}' diverged numerically at epoch {epoch} \
                 after {retries} recovery attempts"
            ),
            CeaffError::Delta(msg) => write!(f, "delta not applied: {msg}"),
            CeaffError::BudgetExceeded {
                stage,
                limit_bytes,
                peak_bytes,
            } => write!(
                f,
                "memory budget exceeded in stage '{stage}': \
                 peak {peak_bytes} bytes over the {limit_bytes}-byte limit"
            ),
        }
    }
}

impl std::error::Error for CeaffError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CeaffError::EmptyFeatureSet.to_string(),
            "configuration enables no computed feature"
        );
        let e = CeaffError::ShapeMismatch {
            feature: "string".into(),
            expected: (10, 10),
            found: (10, 12),
        };
        assert_eq!(
            e.to_string(),
            "feature 'string' has shape 10x12 but 10x10 was expected"
        );
        assert_eq!(
            CeaffError::InvalidConfig("gcn.dim must be positive".into()).to_string(),
            "invalid configuration: gcn.dim must be positive"
        );
        assert_eq!(
            CeaffError::Checkpoint {
                file: "gcn_train.ckpt".into(),
                reason: "crc32 mismatch".into(),
            }
            .to_string(),
            "checkpoint failure in 'gcn_train.ckpt': crc32 mismatch"
        );
        let e = CeaffError::NumericDivergence {
            stage: "gcn".into(),
            epoch: 42,
            retries: 3,
        };
        assert!(e.to_string().contains("epoch 42"));
        assert!(e.to_string().contains("3 recovery attempts"));
        assert_eq!(
            CeaffError::Delta("delta op 3 rejected: unknown entity".into()).to_string(),
            "delta not applied: delta op 3 rejected: unknown entity"
        );
        let e = CeaffError::BudgetExceeded {
            stage: "features".into(),
            limit_bytes: 1 << 20,
            peak_bytes: 3 << 20,
        };
        let msg = e.to_string();
        assert!(msg.contains("memory budget exceeded"), "{msg}");
        assert!(msg.contains("features"), "{msg}");
        assert!(msg.contains(&(1usize << 20).to_string()), "{msg}");
    }

    #[test]
    fn is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&CeaffError::EmptyFeatureSet);
    }
}
