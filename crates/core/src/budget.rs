//! Execution budgets: deadlines, cooperative cancellation, memory caps.
//!
//! An [`ExecBudget`] travels with a pipeline run and is polled at the
//! run's natural granules — GCN epochs, matcher rounds, feature/stage
//! boundaries — while [`ExecBudget::install`] arms the lower layers for
//! the same scope: `ceaff-parallel` kernels abandon remaining chunks
//! once the cancel/deadline probe fires, and `ceaff-tensor` tracks live
//! matrix bytes against the memory cap. Overruns surface as *graceful
//! degradation* (a best-effort result plus a
//! [`Degradation`](ceaff_telemetry::Degradation) record in the trace)
//! for time-like budgets, and as a typed
//! [`CeaffError::BudgetExceeded`] for the memory budget — never as an
//! OOM abort or a silently wrong answer.
//!
//! Three budget dimensions, all optional and freely combined:
//!
//! * **Deadline** — a monotonic [`Instant`]; checked by `Instant::now()`
//!   at granule boundaries and inside kernel chunk claims. Wall-clock
//!   driven, so inherently nondeterministic; results after a deadline
//!   stop are best-effort.
//! * **Cancellation** — a cloneable [`CancelToken`] flipped by another
//!   thread or a signal handler (the CLI maps SIGINT onto one).
//! * **Step limit** — a deterministic cap on the total number of
//!   granules consumed. This is the dimension tests and experiments
//!   use: "stop after k granules" degrades *identically* on every
//!   machine and thread count, unlike a wall-clock deadline. It is only
//!   polled at sequential granule boundaries, never inside parallel
//!   kernels, so the degraded output is reproducible.
//!
//! The unconstrained budget ([`ExecBudget::unlimited`]) is free: every
//! entry point short-circuits to the exact pre-budget code path, so the
//! output is bitwise-identical to a run without budgets at any thread
//! count.

use crate::error::CeaffError;
use ceaff_telemetry::{Degradation, Telemetry};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted scope stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The monotonic deadline passed.
    DeadlineExceeded,
    /// The deterministic step limit was consumed.
    StepLimit,
}

impl StopReason {
    /// Stable lower-case label used in [`Degradation::reason`] and CLI
    /// summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Cancelled => "cancelled",
            StopReason::DeadlineExceeded => "deadline",
            StopReason::StepLimit => "step_limit",
        }
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Clone)]
enum CancelFlag {
    Owned(Arc<AtomicBool>),
    /// Backed by caller-owned storage — lets a signal handler (which can
    /// only touch `static`s) flip the same flag the budget polls, with
    /// no relay thread in between.
    Static(&'static AtomicBool),
}

/// A cooperative, cloneable cancellation handle. All clones observe the
/// same flag; cancellation is sticky.
#[derive(Clone)]
pub struct CancelToken {
    flag: CancelFlag,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken {
            flag: CancelFlag::Owned(Arc::new(AtomicBool::new(false))),
        }
    }

    /// A token backed by a `static AtomicBool` the caller owns — the
    /// hook for signal handlers (see the CLI's SIGINT wiring).
    pub fn from_static(flag: &'static AtomicBool) -> Self {
        CancelToken {
            flag: CancelFlag::Static(flag),
        }
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        match &self.flag {
            CancelFlag::Owned(flag) => flag.store(true, Ordering::Relaxed),
            CancelFlag::Static(flag) => flag.store(true, Ordering::Relaxed),
        }
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        match &self.flag {
            CancelFlag::Owned(flag) => flag.load(Ordering::Relaxed),
            CancelFlag::Static(flag) => flag.load(Ordering::Relaxed),
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// The execution budget of one pipeline run. Cheap to clone (clones
/// share the step counter). See the module docs for semantics.
#[derive(Clone, Default)]
pub struct ExecBudget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    max_mem_bytes: Option<usize>,
    step_limit: Option<u64>,
    steps: Arc<AtomicU64>,
}

impl std::fmt::Debug for ExecBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecBudget")
            .field("deadline", &self.deadline)
            .field("cancel", &self.cancel.is_some())
            .field("max_mem_bytes", &self.max_mem_bytes)
            .field("step_limit", &self.step_limit)
            .field("steps", &self.steps.load(Ordering::Relaxed))
            .finish()
    }
}

impl ExecBudget {
    /// No constraints: every entry point behaves exactly as if no budget
    /// existed (bitwise-identical output).
    pub fn unlimited() -> Self {
        ExecBudget::default()
    }

    /// Stop `duration` from now.
    pub fn with_deadline(mut self, duration: Duration) -> Self {
        self.deadline = Some(Instant::now() + duration);
        self
    }

    /// Stop at the given monotonic instant.
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Observe `token` for cooperative cancellation.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Cap the run's live tensor footprint at `bytes`. Enforced by the
    /// thread-local allocation ledger in `ceaff-tensor`; crossing the cap
    /// surfaces as [`CeaffError::BudgetExceeded`] at the next stage or
    /// epoch boundary.
    pub fn with_max_mem_bytes(mut self, bytes: usize) -> Self {
        self.max_mem_bytes = Some(bytes);
        self
    }

    /// Deterministically stop after `steps` granules (epochs + matcher
    /// rounds + stage boundaries) have been consumed.
    pub fn with_step_limit(mut self, steps: u64) -> Self {
        self.step_limit = Some(steps);
        self
    }

    /// Whether this budget constrains nothing.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.cancel.is_none()
            && self.max_mem_bytes.is_none()
            && self.step_limit.is_none()
    }

    /// The installed memory cap, if any.
    pub fn max_mem_bytes(&self) -> Option<usize> {
        self.max_mem_bytes
    }

    /// Granules consumed so far via [`ExecBudget::consume_step`].
    pub fn steps_consumed(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Whether a time-like budget dimension wants the run stopped *now*,
    /// without consuming a step. Cancel wins over deadline over step
    /// limit when several have fired.
    pub fn stop_reason(&self) -> Option<StopReason> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(StopReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(StopReason::DeadlineExceeded);
        }
        if self
            .step_limit
            .is_some_and(|limit| self.steps.load(Ordering::Relaxed) >= limit)
        {
            return Some(StopReason::StepLimit);
        }
        None
    }

    /// Mid-granule poll covering only the time-like dimensions (cancel,
    /// deadline) — never the step limit, so a step-limited run always
    /// consumes exactly its granule count and degrades identically on
    /// every machine. Used inside long algorithm rounds (matcher
    /// proposal chains, augmenting searches) where waiting for the next
    /// granule boundary would delay a cancel response.
    pub fn interrupt_reason(&self) -> Option<StopReason> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(StopReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(StopReason::DeadlineExceeded);
        }
        None
    }

    /// Granule-boundary check: returns the stop reason if the budget is
    /// exhausted, otherwise consumes one step and allows the granule to
    /// run. A `with_step_limit(k)` budget therefore permits exactly `k`
    /// granules.
    pub fn consume_step(&self) -> Option<StopReason> {
        let reason = self.stop_reason();
        if reason.is_none() {
            self.steps.fetch_add(1, Ordering::Relaxed);
        }
        reason
    }

    /// Stage-boundary memory check: errors once the tensor ledger has
    /// crossed the installed cap. A no-op without a memory cap.
    pub fn check_mem(&self, stage: &str) -> Result<(), CeaffError> {
        match self.max_mem_bytes {
            Some(limit_bytes) if ceaff_tensor::mem_exceeded() => Err(CeaffError::BudgetExceeded {
                stage: stage.to_owned(),
                limit_bytes,
                peak_bytes: ceaff_tensor::mem_peak_bytes(),
            }),
            _ => Ok(()),
        }
    }

    /// Arm the lower layers for the current scope: install the tensor
    /// memory cap and the kernel-level cancel/deadline probe on this
    /// thread. Both uninstall when the returned scope drops. An
    /// unlimited budget installs nothing, keeping the hot paths on their
    /// probe-free (bitwise-identical) branches.
    #[must_use = "the budget disarms when the scope drops"]
    pub fn install(&self) -> BudgetScope {
        let mem_guard = self.max_mem_bytes.map(ceaff_tensor::install_mem_limit);
        let probe_guard = if self.cancel.is_some() || self.deadline.is_some() {
            let cancel = self.cancel.clone();
            let deadline = self.deadline;
            let probe: ceaff_parallel::CancelProbe = Arc::new(move || {
                cancel.as_ref().is_some_and(CancelToken::is_cancelled)
                    || deadline.is_some_and(|d| Instant::now() >= d)
            });
            Some(ceaff_parallel::install_cancel_probe(probe))
        } else {
            None
        };
        BudgetScope {
            _mem_guard: mem_guard,
            _probe_guard: probe_guard,
        }
    }

    /// Build the [`Degradation`] record for a stage this budget stopped
    /// short, and register it with `telemetry` so it rides the trace.
    pub fn record_degradation(
        &self,
        telemetry: &Telemetry,
        stage: &str,
        reason: StopReason,
        rounds_completed: u64,
        fraction_degraded: f64,
    ) -> Degradation {
        let record = Degradation {
            stage: stage.to_owned(),
            reason: reason.as_str().to_owned(),
            rounds_completed,
            fraction_degraded,
        };
        telemetry.degradation(record.clone());
        record
    }

    /// Emit the `budget/*` counters summarising this budget's
    /// consumption. Called once per budgeted run; unconstrained runs
    /// emit nothing (their traces must stay byte-identical to pre-budget
    /// output).
    pub fn emit_counters(&self, telemetry: &Telemetry) {
        if self.is_unlimited() {
            return;
        }
        telemetry.counter_add("budget", "steps_consumed", self.steps_consumed());
        if let Some(limit) = self.max_mem_bytes {
            telemetry.counter_add("budget", "mem_limit_bytes", limit as u64);
            telemetry.counter_add(
                "budget",
                "mem_peak_bytes",
                ceaff_tensor::mem_peak_bytes() as u64,
            );
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            telemetry.counter_add("budget", "cancelled", 1);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            telemetry.counter_add("budget", "deadline_exceeded", 1);
        }
    }
}

/// Armed lower-layer hooks for one budgeted scope; returned by
/// [`ExecBudget::install`].
pub struct BudgetScope {
    _mem_guard: Option<ceaff_tensor::MemLimitGuard>,
    _probe_guard: Option<ceaff_parallel::CancelProbeGuard>,
}

/// Suppress the kernel-level cancel probe on this thread until the
/// returned guard drops. Used around short, *non-degradable* parallel
/// computations (fusion, CSLS, the semantic/string features): a probe
/// firing mid-kernel leaves partially-written buffers, which degradable
/// stages (GCN epochs, matchers) detect and discard — but a stage whose
/// output feeds the rest of the run unconditionally must instead finish
/// its kernels and let the next *boundary* check observe the stop.
#[must_use = "the probe is re-armed when the guard drops"]
pub fn uninterruptible_scope() -> ceaff_parallel::CancelProbeGuard {
    ceaff_parallel::install_cancel_probe(Arc::new(|| false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        let budget = ExecBudget::unlimited();
        assert!(budget.is_unlimited());
        assert_eq!(budget.stop_reason(), None);
        for _ in 0..1000 {
            assert_eq!(budget.consume_step(), None);
        }
        assert!(budget.check_mem("gcn").is_ok());
    }

    #[test]
    fn step_limit_is_deterministic_and_shared_across_clones() {
        let budget = ExecBudget::unlimited().with_step_limit(5);
        let clone = budget.clone();
        let mut allowed = 0;
        for i in 0..10 {
            let side = if i % 2 == 0 { &budget } else { &clone };
            if side.consume_step().is_none() {
                allowed += 1;
            }
        }
        assert_eq!(allowed, 5);
        assert_eq!(budget.consume_step(), Some(StopReason::StepLimit));
        assert_eq!(budget.steps_consumed(), 5);
    }

    #[test]
    fn cancel_token_is_sticky_and_shared() {
        let token = CancelToken::new();
        let budget = ExecBudget::unlimited().with_cancel(token.clone());
        assert_eq!(budget.stop_reason(), None);
        token.clone().cancel();
        assert_eq!(budget.stop_reason(), Some(StopReason::Cancelled));
        assert_eq!(budget.consume_step(), Some(StopReason::Cancelled));
        assert_eq!(
            budget.steps_consumed(),
            0,
            "a refused granule consumes nothing"
        );
    }

    #[test]
    fn expired_deadline_stops_immediately() {
        let budget = ExecBudget::unlimited().with_deadline(Duration::from_secs(0));
        assert_eq!(budget.stop_reason(), Some(StopReason::DeadlineExceeded));
        let future = ExecBudget::unlimited().with_deadline(Duration::from_secs(3600));
        assert_eq!(future.stop_reason(), None);
        assert!(!future.is_unlimited());
    }

    #[test]
    fn cancel_outranks_deadline_outranks_step_limit() {
        let token = CancelToken::new();
        token.cancel();
        let budget = ExecBudget::unlimited()
            .with_cancel(token)
            .with_deadline(Duration::from_secs(0))
            .with_step_limit(0);
        assert_eq!(budget.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn mem_budget_surfaces_typed_error() {
        let budget = ExecBudget::unlimited().with_max_mem_bytes(64);
        let _scope = budget.install();
        assert!(budget.check_mem("setup").is_ok());
        let _big = ceaff_tensor::Matrix::zeros(16, 16); // 1024 bytes
        let err = budget.check_mem("features").expect_err("over budget");
        match err {
            CeaffError::BudgetExceeded {
                stage,
                limit_bytes,
                peak_bytes,
            } => {
                assert_eq!(stage, "features");
                assert_eq!(limit_bytes, 64);
                assert!(peak_bytes >= 1024);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn install_arms_the_kernel_probe() {
        let token = CancelToken::new();
        let budget = ExecBudget::unlimited().with_cancel(token.clone());
        {
            let _scope = budget.install();
            assert!(!ceaff_parallel::cancel_probe_fired());
            token.cancel();
            assert!(ceaff_parallel::cancel_probe_fired());
        }
        // Disarmed after the scope drops.
        assert!(!ceaff_parallel::cancel_probe_fired());
    }

    #[test]
    fn static_backed_token_for_signal_handlers() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        let token = CancelToken::from_static(&FLAG);
        assert!(!token.is_cancelled());
        FLAG.store(true, Ordering::Relaxed);
        assert!(token.is_cancelled());
        FLAG.store(false, Ordering::Relaxed);
    }
}
