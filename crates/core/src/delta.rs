//! Incremental alignment over evolving KGs (ROADMAP item 4): warm
//! pipeline state that absorbs a [`KgDelta`] by recomputing only the
//! dirty region of each feature store, then re-running the global stages.
//!
//! # The parity contract
//!
//! Replaying any edit stream through [`DeltaState::apply`] leaves the
//! state **bitwise-identical** to a from-scratch run on the final pair, at
//! any thread count. The design that makes this provable rather than
//! approximate:
//!
//! * **Stores are patched, global stages are re-run.** The cached
//!   artifacts are the *raw* feature stores (pre-CSLS, pre-normalisation).
//!   CSLS, min-max normalisation, adaptive fusion and collective matching
//!   are global — every cell depends on row/column extremes — so they are
//!   re-run in full through the very same
//!   [`try_run_with_features`] the batch pipeline uses. Parity therefore
//!   reduces to one local statement: *patched store ≡ fresh store*.
//! * **Every dirty cell is recomputed by the same scalar function the
//!   bulk kernel evaluates.** The repo's kernels are written so each
//!   output cell reduces exactly like [`ceaff_tensor::dot`]
//!   ([`Matrix::matmul_transpose`] documents this), each row normalises
//!   as `v / √(row·row)`, and string / name-embedding cells are pure
//!   per-name functions — so copying a clean cell and recomputing a dirty
//!   one are bitwise-indistinguishable from recomputing everything.
//! * **Dirty sets over-approximate by names, never ids.** Edits address
//!   entities by name; ids shift under insertion/removal. Every map here
//!   is keyed by entity name, and recomputing a cell that did not actually
//!   change is harmless (same bits).
//!
//! # What is (and is not) incremental
//!
//! String and semantic rows depend only on entity names, so a test row or
//! column is dirty only if its entity is new to the split. The structural
//! feature must use the training-free propagation encoder
//! ([`StructuralMode::Propagation`]); its dirty region is the bounded
//! neighbourhood reachable from edited triples within `layers` hops,
//! tracked per propagation layer. The trained GCN couples all entities
//! through shared weights — there is no dirty region smaller than the
//! whole KG — so [`DeltaState::new`] rejects it with
//! [`CeaffError::Delta`]. The matcher is likewise re-run in full each
//! delta: warm-starting deferred acceptance from the previous matching is
//! unsound (a single changed preference can cascade arbitrarily), and the
//! matcher is cheap next to feature generation.

use std::collections::{BTreeMap, HashSet};

use ceaff_embed::{embed_name, WordEmbedder};
use ceaff_graph::{KgDelta, KgPair, KnowledgeGraph};
use ceaff_sim::{
    keys_of, levenshtein_ratio, BlockingConfig, SimStore, SimilarityMatrix, SparseTopK, TargetIndex,
};
use ceaff_telemetry::Telemetry;
use ceaff_tensor::{dot, Matrix};

use crate::budget::ExecBudget;
use crate::checkpoint::{config_fingerprint, crc32};
use crate::error::CeaffError;
use crate::features::{Feature, SemanticFeature, StringFeature, StructuralFeature};
use crate::gcn::GcnEncoder;
use crate::matching::Matching;
use crate::pipeline::{
    block_candidates, try_run_with_features, try_run_with_features_budgeted, CandidateStrategy,
    CeaffConfig, CeaffOutput, EaInput, FeatureSet, StructuralMode,
};
use crate::propagation;

/// Rows per parallel work item when patching stores.
const PATCH_GRAIN: usize = 8;

/// A patched sparse row (`None` = kept verbatim) plus the recompute work
/// it cost, in row units (cell repairs count fractionally).
type PatchedRow = (Option<Vec<(u32, f32)>>, f64);

/// What one applied delta changed in the alignment decision, reported in
/// stable entity *names* (ids shift across edits). Sorted by source name.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentDiff {
    /// 1-based index of this delta in the stream (state starts at step 0).
    pub step: usize,
    /// Chained fingerprint after this delta: `crc32(prev_fp_le ‖
    /// canonical-JSON(delta))`, seeded by the config fingerprint. Two
    /// states agree on (config, edit history) iff fingerprints match.
    pub fingerprint: u32,
    /// Accuracy on the updated test split.
    pub accuracy: f64,
    /// Matched pairs in the updated alignment.
    pub matched: usize,
    /// `(source, target)` pairs present now but not before.
    pub added: Vec<(String, String)>,
    /// `(source, target)` pairs present before but not now.
    pub removed: Vec<(String, String)>,
    /// `(source, old_target, new_target)` for re-assigned sources.
    pub changed: Vec<(String, String, String)>,
    /// Largest recompute work any feature store paid, as a fraction of
    /// its rows — the knob the delta pipeline's speed-up lives or dies
    /// by. Cell-granular repairs (a kept sparse row rescoring only its
    /// stale stored cells) count fractionally, at `cells / k` rows.
    pub recompute_fraction: f64,
}

impl AlignmentDiff {
    /// True when the delta left the alignment decision untouched.
    pub fn is_quiet(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }
}

/// Warm pipeline state for one evolving alignment task.
///
/// Built once from a full run ([`DeltaState::new`]), then advanced edit
/// batch by edit batch with [`DeltaState::apply`]. On any error the state
/// is left exactly as it was (deltas are atomic end to end).
pub struct DeltaState {
    cfg: CeaffConfig,
    pair: KgPair,
    features: FeatureSet,
    /// All propagation layers `[H₀…H_L]` per graph — the structural
    /// patcher's cache. Empty when the structural feature is off.
    prop_source: Vec<Matrix>,
    prop_target: Vec<Matrix>,
    output: CeaffOutput,
    fingerprint: u32,
    step: usize,
}

impl DeltaState {
    /// Run the pipeline from scratch and retain everything the delta
    /// patcher needs. Rejects configurations that cannot be updated
    /// incrementally (structural feature in [`StructuralMode::Trained`]).
    pub fn new(input: &EaInput<'_>, cfg: &CeaffConfig) -> Result<Self, CeaffError> {
        cfg.validate()?;
        let layers = match (cfg.use_structural, cfg.structural) {
            (true, StructuralMode::Trained) => {
                return Err(CeaffError::Delta(
                    "the trained-GCN structural mode cannot be updated incrementally \
                     (every epoch couples all entities through shared weights); \
                     configure StructuralMode::Propagation or disable the structural feature"
                        .into(),
                ));
            }
            (true, StructuralMode::Propagation { layers }) => Some(layers),
            (false, _) => None,
        };
        let telemetry = &input.telemetry;
        let prop = layers.map(|layers| {
            let _span = telemetry.span("propagation");
            (
                propagation::propagate(&input.pair.source, cfg.gcn.dim, layers),
                propagation::propagate(&input.pair.target, cfg.gcn.dim, layers),
            )
        });
        let blocked = match &cfg.candidates {
            CandidateStrategy::Dense => None,
            CandidateStrategy::Blocked { k, blocking } => {
                Some((block_candidates(input.pair, blocking, *k, telemetry), *k))
            }
        };
        // Same constructors the batch pipeline's `compute_structural`
        // reaches through `propagation::encode` — the cached layers are
        // exactly what `encode` would have produced.
        let structural = prop.as_ref().map(|(ls, lt)| {
            let encoder = GcnEncoder {
                z_source: ls.last().expect("at least layer 0").clone(),
                z_target: lt.last().expect("at least layer 0").clone(),
                loss_curve: Vec::new(),
            };
            match &blocked {
                None => StructuralFeature::from_encoder(input.pair, encoder),
                Some((c, k)) => StructuralFeature::from_encoder_blocked(input.pair, encoder, c, *k),
            }
        });
        let semantic = cfg.use_semantic.then(|| match &blocked {
            None => {
                SemanticFeature::compute(input.pair, input.source_embedder, input.target_embedder)
            }
            Some((c, k)) => SemanticFeature::compute_blocked(
                input.pair,
                input.source_embedder,
                input.target_embedder,
                c,
                *k,
            ),
        });
        let string = cfg.use_string.then(|| match &blocked {
            None => StringFeature::compute(input.pair),
            Some((c, k)) => StringFeature::compute_blocked(input.pair, c, *k),
        });
        let features = FeatureSet {
            structural,
            semantic,
            string,
            extra: Vec::new(),
        };
        let output = try_run_with_features(input.pair, &features, cfg, telemetry)?;
        let (prop_source, prop_target) = prop.unwrap_or_default();
        Ok(Self {
            cfg: cfg.clone(),
            pair: input.pair.clone(),
            features,
            prop_source,
            prop_target,
            output,
            fingerprint: config_fingerprint(cfg)?,
            step: 0,
        })
    }

    /// Apply one edit batch: patch the dirty region of every feature
    /// store, re-run fusion and matching, and report what changed.
    ///
    /// The embedders must be the same ones the state was built with (the
    /// semantic patcher embeds newly-added names through them).
    pub fn apply(
        &mut self,
        delta: &KgDelta,
        source_embedder: &dyn WordEmbedder,
        target_embedder: &dyn WordEmbedder,
    ) -> Result<AlignmentDiff, CeaffError> {
        self.apply_inner(delta, source_embedder, target_embedder, None)
    }

    /// [`DeltaState::apply`] under an execution budget: the fusion and
    /// matching re-run goes through
    /// [`try_run_with_features_budgeted`], so a tight decision budget
    /// degrades the matcher exactly as it would in a batch run. Store
    /// patching itself is not metered (it is the part deltas make cheap).
    pub fn apply_budgeted(
        &mut self,
        delta: &KgDelta,
        source_embedder: &dyn WordEmbedder,
        target_embedder: &dyn WordEmbedder,
        budget: &ExecBudget,
    ) -> Result<AlignmentDiff, CeaffError> {
        self.apply_inner(delta, source_embedder, target_embedder, Some(budget))
    }

    fn apply_inner(
        &mut self,
        delta: &KgDelta,
        source_embedder: &dyn WordEmbedder,
        target_embedder: &dyn WordEmbedder,
        budget: Option<&ExecBudget>,
    ) -> Result<AlignmentDiff, CeaffError> {
        let cfg = self.cfg.clone();
        let applied = delta
            .apply(&self.pair)
            .map_err(|e| CeaffError::Delta(e.to_string()))?;
        let new_pair = applied.pair;

        let old_tests = test_names(&self.pair);
        let new_tests = test_names(&new_pair);
        let maps = SplitMaps::build(&old_tests, &new_tests);
        let new_src_ids = new_pair.test_sources();
        let new_tgt_ids = new_pair.test_targets();

        // One blocking context shared by every sparse store, mirroring the
        // single `block_candidates` call of the batch pipeline.
        let blocked = match &cfg.candidates {
            CandidateStrategy::Dense => None,
            CandidateStrategy::Blocked { k, blocking } => {
                let tgt_names: Vec<&str> = new_tests.iter().map(|(_, t)| t.as_str()).collect();
                Some(BlockedCtx {
                    k: *k,
                    index: TargetIndex::build(&tgt_names, blocking),
                    base_dirty: blocked_dirty_base(&old_tests, &new_tests, &maps, blocking),
                })
            }
        };

        let mut recompute_fraction = 0.0f64;
        let n_tests = new_tests.len();
        let mut note = |work_rows: f64| {
            if n_tests > 0 {
                recompute_fraction = recompute_fraction.max(work_rows / n_tests as f64);
            }
        };

        // ---- string: cells are pure in the two names --------------------
        let string = match &self.features.string {
            None => None,
            Some(old_f) => {
                let store = match old_f.test_store() {
                    SimStore::Dense(old_m) => {
                        note(count_dirty(&maps.new_row_old) as f64);
                        SimStore::Dense(patch_dense(
                            old_m,
                            &maps.new_row_old,
                            &maps.new_col_old,
                            |i, j| levenshtein_ratio(&new_tests[i].0, &new_tests[j].1),
                        ))
                    }
                    SimStore::Sparse(old_s) => {
                        let b = blocked.as_ref().expect("sparse store implies blocking");
                        note(b.base_dirty.iter().filter(|&&d| d).count() as f64);
                        SimStore::Sparse(patch_sparse(
                            old_s,
                            &new_tests,
                            &maps,
                            b,
                            &b.base_dirty,
                            |i, j| levenshtein_ratio(&new_tests[i].0, &new_tests[j as usize].1),
                        ))
                    }
                };
                Some(StringFeature::from_store(&new_pair, store))
            }
        };

        // ---- semantic: rows are pure in the name, given the embedder ----
        let semantic = match &self.features.semantic {
            None => None,
            Some(old_f) => {
                let ns = patch_embeddings(
                    &self.pair.source,
                    &new_pair.source,
                    old_f.source_embeddings(),
                    source_embedder,
                );
                let nt = patch_embeddings(
                    &self.pair.target,
                    &new_pair.target,
                    old_f.target_embeddings(),
                    target_embedder,
                );
                let store = match old_f.test_store() {
                    SimStore::Dense(old_m) => {
                        note(count_dirty(&maps.new_row_old) as f64);
                        // `cosine_similarity_matrix` re-normalises the
                        // already-unit gathered rows; replicate that
                        // double normalisation bit-for-bit.
                        SimStore::Dense(patch_dense(
                            old_m,
                            &maps.new_row_old,
                            &maps.new_col_old,
                            |i, j| {
                                let a = unit(ns.row(new_src_ids[i].index()));
                                let b = unit(nt.row(new_tgt_ids[j].index()));
                                dot(&a, &b)
                            },
                        ))
                    }
                    SimStore::Sparse(old_s) => {
                        let b = blocked.as_ref().expect("sparse store implies blocking");
                        note(b.base_dirty.iter().filter(|&&d| d).count() as f64);
                        // The blocked kernel scores plain dots on the
                        // normalised matrices — no re-normalisation here.
                        SimStore::Sparse(patch_sparse(
                            old_s,
                            &new_tests,
                            &maps,
                            b,
                            &b.base_dirty,
                            |i, j| {
                                dot(
                                    ns.row(new_src_ids[i].index()),
                                    nt.row(new_tgt_ids[j as usize].index()),
                                )
                            },
                        ))
                    }
                };
                Some(SemanticFeature::from_store_parts(ns, nt, store))
            }
        };

        // ---- structural: dirty = layers-hop neighbourhood of the edit ---
        let prop_patch = self.features.structural.as_ref().map(|_| {
            (
                patch_propagation(&self.pair.source, &new_pair.source, &self.prop_source),
                patch_propagation(&self.pair.target, &new_pair.target, &self.prop_target),
            )
        });
        let structural = match (&self.features.structural, &prop_patch) {
            (Some(old_f), Some(((layers_s, dirty_s), (layers_t, dirty_t)))) => {
                let mut zs = layers_s.last().expect("at least layer 0").clone();
                let mut zt = layers_t.last().expect("at least layer 0").clone();
                zs.l2_normalize_rows();
                zt.l2_normalize_rows();
                let store = match old_f.test_store() {
                    SimStore::Dense(old_m) => {
                        let clean_row: Vec<Option<usize>> = (0..n_tests)
                            .map(|i| {
                                maps.new_row_old[i]
                                    .filter(|_| !dirty_s.contains(&new_src_ids[i].index()))
                            })
                            .collect();
                        let clean_col: Vec<Option<usize>> = (0..n_tests)
                            .map(|j| {
                                maps.new_col_old[j]
                                    .filter(|_| !dirty_t.contains(&new_tgt_ids[j].index()))
                            })
                            .collect();
                        note(count_dirty(&clean_row) as f64);
                        SimStore::Dense(patch_dense(old_m, &clean_row, &clean_col, |i, j| {
                            let a = unit(zs.row(new_src_ids[i].index()));
                            let b = unit(zt.row(new_tgt_ids[j].index()));
                            dot(&a, &b)
                        }))
                    }
                    SimStore::Sparse(old_s) => {
                        let b = blocked.as_ref().expect("sparse store implies blocking");
                        // Only blocking-dirty rows need a candidate-set
                        // rebuild. A kept row whose candidate set is clean
                        // but whose source moved, or which stores a column
                        // whose target moved, keeps its exact column
                        // structure (counts and — under the monotone remap
                        // — tie order are unchanged); only the stale cell
                        // *values* are rescored. That turns the `layers`-hop
                        // neighbourhood of an edit from `k` whole-row
                        // rebuilds per touched target into a handful of
                        // single-cell dots.
                        let score = |i: usize, j: u32| {
                            dot(
                                zs.row(new_src_ids[i].index()),
                                zt.row(new_tgt_ids[j as usize].index()),
                            )
                        };
                        let dirty_tgt_col: Vec<bool> = (0..n_tests)
                            .map(|j| dirty_t.contains(&new_tgt_ids[j].index()))
                            .collect();
                        let patched: Vec<PatchedRow> =
                            ceaff_parallel::par_map(n_tests, PATCH_GRAIN, |i| {
                                if b.base_dirty[i] {
                                    let row: Vec<(u32, f32)> = b
                                        .index
                                        .candidate_row(&new_tests[i].0, b.k)
                                        .into_iter()
                                        .map(|j| (j, score(i, j)))
                                        .collect();
                                    return (Some(row), 1.0);
                                }
                                let src_dirty = dirty_s.contains(&new_src_ids[i].index());
                                let oi = maps.new_row_old[i].expect("blocking-clean row is kept");
                                let mut stale = 0usize;
                                let row: Vec<(u32, f32)> = old_s
                                    .row_vec(oi)
                                    .into_iter()
                                    .map(|(c, v)| {
                                        let cn = maps.old_to_new_col[c as usize]
                                            .expect("blocking-clean row keeps its stored columns");
                                        if src_dirty || dirty_tgt_col[cn as usize] {
                                            stale += 1;
                                            (cn, score(i, cn))
                                        } else {
                                            (cn, v)
                                        }
                                    })
                                    .collect();
                                if stale > 0 {
                                    (Some(row), (stale as f64 / b.k as f64).min(1.0))
                                } else {
                                    (None, 0.0)
                                }
                            });
                        note(patched.iter().map(|(_, w)| w).sum());
                        let rebuilt: Vec<Option<Vec<(u32, f32)>>> =
                            patched.into_iter().map(|(r, _)| r).collect();
                        let row_map: Vec<Option<usize>> = maps
                            .old_to_new_row
                            .iter()
                            .map(|m| (*m).filter(|&new_i| rebuilt[new_i].is_none()))
                            .collect();
                        SimStore::Sparse(old_s.patched(
                            n_tests,
                            &row_map,
                            &maps.old_to_new_col,
                            &rebuilt,
                        ))
                    }
                };
                Some(StructuralFeature::from_store_parts(
                    zs,
                    zt,
                    store,
                    Vec::new(),
                ))
            }
            _ => None,
        };

        let features = FeatureSet {
            structural,
            semantic,
            string,
            extra: Vec::new(),
        };

        // Global stages re-run in full — identical to the batch pipeline.
        let telemetry = Telemetry::disabled();
        let output = match budget {
            None => try_run_with_features(&new_pair, &features, &cfg, &telemetry)?,
            Some(b) => try_run_with_features_budgeted(&new_pair, &features, &cfg, &telemetry, b)?,
        };

        let (added, removed, changed) = diff_matchings(
            &named_matching(&self.output.matching, &old_tests),
            &named_matching(&output.matching, &new_tests),
        );

        let delta_json = serde_json::to_string(delta)
            .map_err(|e| CeaffError::Delta(format!("delta not serializable: {e}")))?;
        let mut bytes = self.fingerprint.to_le_bytes().to_vec();
        bytes.extend_from_slice(delta_json.as_bytes());
        let fingerprint = crc32(&bytes);

        // Commit — nothing above mutated `self`, so any `?` early-return
        // left the warm state untouched.
        if let Some(((ls, _), (lt, _))) = prop_patch {
            self.prop_source = ls;
            self.prop_target = lt;
        }
        self.pair = new_pair;
        self.features = features;
        self.step += 1;
        self.fingerprint = fingerprint;
        let diff = AlignmentDiff {
            step: self.step,
            fingerprint,
            accuracy: output.accuracy,
            matched: output.matching.len(),
            added,
            removed,
            changed,
            recompute_fraction,
        };
        self.output = output;
        Ok(diff)
    }

    /// The most recent pipeline output (full [`CeaffOutput`], exactly what
    /// a from-scratch run on the current pair would produce).
    pub fn output(&self) -> &CeaffOutput {
        &self.output
    }

    /// The current (post-deltas) pair.
    pub fn pair(&self) -> &KgPair {
        &self.pair
    }

    /// The configuration the state was built with.
    pub fn config(&self) -> &CeaffConfig {
        &self.cfg
    }

    /// Chained (config, edit history) fingerprint — see
    /// [`AlignmentDiff::fingerprint`].
    pub fn fingerprint(&self) -> u32 {
        self.fingerprint
    }

    /// Number of deltas applied so far.
    pub fn step(&self) -> usize {
        self.step
    }

    /// The cached feature set (the snapshot codec's view).
    pub(crate) fn features(&self) -> &FeatureSet {
        &self.features
    }

    /// The cached propagation layers per graph (empty when the
    /// structural feature is off).
    pub(crate) fn prop_layers(&self) -> (&[Matrix], &[Matrix]) {
        (&self.prop_source, &self.prop_target)
    }

    /// Reassemble a state from snapshot-decoded parts (the durability
    /// layer's constructor — see [`crate::snapshot`]). The caller passes
    /// back exactly what [`crate::snapshot::encode_delta_state`]
    /// captured; nothing is recomputed, so a decoded state is bitwise
    /// the state that was encoded.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        cfg: CeaffConfig,
        pair: KgPair,
        features: FeatureSet,
        prop_source: Vec<Matrix>,
        prop_target: Vec<Matrix>,
        output: CeaffOutput,
        fingerprint: u32,
        step: usize,
    ) -> Self {
        Self {
            cfg,
            pair,
            features,
            prop_source,
            prop_target,
            output,
            fingerprint,
            step,
        }
    }
}

/// Blocking context shared by every sparse-store patch of one delta.
struct BlockedCtx {
    k: usize,
    index: TargetIndex,
    /// Per new test row: dirty for *every* feature — the row is new, or
    /// shares a blocking key with an added/removed target (its candidate
    /// set may have changed).
    base_dirty: Vec<bool>,
}

/// The test split as stable names, in split order.
fn test_names(pair: &KgPair) -> Vec<(String, String)> {
    pair.test_pairs()
        .iter()
        .map(|&(u, v)| {
            (
                pair.source.entity_name(u).expect("interned").to_owned(),
                pair.target.entity_name(v).expect("interned").to_owned(),
            )
        })
        .collect()
}

/// Old↔new test-split index maps, keyed by entity name. Source names are
/// unique across the split (the alignment is one-to-one), as are target
/// names, so the maps are well-defined; edits only insert or remove rows,
/// so kept entries preserve relative order (which keeps
/// [`SparseTopK::patched`]'s monotone-column contract).
struct SplitMaps {
    /// Per old row: its new index, `None` if dropped.
    old_to_new_row: Vec<Option<usize>>,
    /// Per old column: its new index, `None` if dropped.
    old_to_new_col: Vec<Option<u32>>,
    /// Per new row: the old row with the same source name, `None` if new.
    new_row_old: Vec<Option<usize>>,
    /// Per new column: the old column with the same target name.
    new_col_old: Vec<Option<usize>>,
}

impl SplitMaps {
    fn build(old: &[(String, String)], new: &[(String, String)]) -> Self {
        let index_by = |tests: &[(String, String)], tgt: bool| -> BTreeMap<String, usize> {
            tests
                .iter()
                .enumerate()
                .map(|(i, (s, t))| (if tgt { t.clone() } else { s.clone() }, i))
                .collect()
        };
        let (old_src, old_tgt) = (index_by(old, false), index_by(old, true));
        let (new_src, new_tgt) = (index_by(new, false), index_by(new, true));
        Self {
            old_to_new_row: old.iter().map(|(s, _)| new_src.get(s).copied()).collect(),
            old_to_new_col: old
                .iter()
                .map(|(_, t)| new_tgt.get(t).copied().map(|i| i as u32))
                .collect(),
            new_row_old: new.iter().map(|(s, _)| old_src.get(s).copied()).collect(),
            new_col_old: new.iter().map(|(_, t)| old_tgt.get(t).copied()).collect(),
        }
    }
}

/// Rows marked `None` (i.e. to recompute) in a clean-row map.
fn count_dirty(clean: &[Option<usize>]) -> usize {
    clean.iter().filter(|c| c.is_none()).count()
}

/// A row L2-normalised exactly like [`Matrix::l2_normalize_rows`] does.
fn unit(row: &[f32]) -> Vec<f32> {
    let mut v = row.to_vec();
    propagation::normalize_row(&mut v);
    v
}

/// Patch a dense store: copy `(clean_row, clean_col)` cells from `old`,
/// recompute the rest with `cell` — which must be the scalar form of the
/// bulk kernel that built `old`.
fn patch_dense(
    old: &SimilarityMatrix,
    clean_row: &[Option<usize>],
    clean_col: &[Option<usize>],
    cell: impl Fn(usize, usize) -> f32 + Sync,
) -> SimilarityMatrix {
    let (rows, cols) = (clean_row.len(), clean_col.len());
    let m = propagation::matrix_from_par_rows(rows, cols, |i| {
        let mut out = vec![0.0f32; cols];
        match clean_row[i] {
            Some(oi) => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = match clean_col[j] {
                        Some(oj) => old.get(oi, oj),
                        None => cell(i, j),
                    };
                }
            }
            None => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = cell(i, j);
                }
            }
        }
        out
    });
    SimilarityMatrix::new(m)
}

/// Patch a sparse top-k store: rebuild dirty rows through the *new*
/// target index (the same `candidate_row` + score path
/// [`SparseTopK::from_candidates`] takes), remap everything else.
fn patch_sparse(
    old: &SparseTopK,
    new_tests: &[(String, String)],
    maps: &SplitMaps,
    b: &BlockedCtx,
    dirty_rows: &[bool],
    score: impl Fn(usize, u32) -> f32 + Sync,
) -> SparseTopK {
    let rebuilt: Vec<Option<Vec<(u32, f32)>>> =
        ceaff_parallel::par_map(new_tests.len(), PATCH_GRAIN, |i| {
            dirty_rows[i].then(|| {
                b.index
                    .candidate_row(&new_tests[i].0, b.k)
                    .into_iter()
                    .map(|j| (j, score(i, j)))
                    .collect()
            })
        });
    // Suppress kept-row reuse for dirty kept rows by dropping their map
    // entry — `patched` takes the rebuilt row instead.
    let row_map: Vec<Option<usize>> = maps
        .old_to_new_row
        .iter()
        .map(|m| (*m).filter(|&new_i| !dirty_rows[new_i]))
        .collect();
    old.patched(new_tests.len(), &row_map, &maps.old_to_new_col, &rebuilt)
}

/// Per new test row: dirty for every sparse feature — new source name, or
/// an added/removed target name *qualifies as a candidate* for the row.
///
/// A target with fewer than `min_shared_keys` weighted shared keys never
/// appears in `candidate_row`'s shared-count map above the filter, so it
/// can affect neither membership nor ranking of the row's candidate list;
/// kept targets keep their counts and (under the monotone column remap)
/// their tie-break order. The shared count here is computed exactly as
/// `candidate_row` accumulates it: Σ over keys of
/// `source_multiplicity · target_multiplicity`.
fn blocked_dirty_base(
    old_tests: &[(String, String)],
    new_tests: &[(String, String)],
    maps: &SplitMaps,
    blocking: &BlockingConfig,
) -> Vec<bool> {
    let key_counts = |name: &str| -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for k in keys_of(name, blocking) {
            *m.entry(k).or_insert(0) += 1;
        }
        m
    };
    let mut changed: Vec<BTreeMap<String, usize>> = Vec::new();
    for (j, kept) in maps.new_col_old.iter().enumerate() {
        if kept.is_none() {
            changed.push(key_counts(&new_tests[j].1));
        }
    }
    for (j, kept) in maps.old_to_new_col.iter().enumerate() {
        if kept.is_none() {
            changed.push(key_counts(&old_tests[j].1));
        }
    }
    new_tests
        .iter()
        .enumerate()
        .map(|(i, (s, _))| {
            if maps.new_row_old[i].is_none() {
                return true;
            }
            if changed.is_empty() {
                return false;
            }
            let src = key_counts(s);
            changed.iter().any(|tgt| {
                let shared: usize = src
                    .iter()
                    .map(|(k, sm)| sm * tgt.get(k).copied().unwrap_or(0))
                    .sum();
                shared >= blocking.min_shared_keys
            })
        })
        .collect()
}

/// Patch a full-KG name-embedding matrix: kept names copy their old row
/// (embedding is pure in the name), new names embed + L2-normalise through
/// the same scalar path `name_embedding_matrix` + `l2_normalize_rows`
/// take (fully-OOV names stay zero rows).
fn patch_embeddings(
    old_kg: &KnowledgeGraph,
    new_kg: &KnowledgeGraph,
    old_m: &Matrix,
    embedder: &dyn WordEmbedder,
) -> Matrix {
    let dim = old_m.cols();
    let names: Vec<&str> = new_kg
        .entity_ids()
        .map(|e| new_kg.entity_name(e).expect("interned"))
        .collect();
    // Sequential: embedders are `?Sync` trait objects, and only the few
    // names new to the graph embed at all.
    let mut m = Matrix::zeros(names.len(), dim);
    for (i, name) in names.iter().enumerate() {
        match old_kg.entity_id(name) {
            Some(o) => m.row_mut(i).copy_from_slice(old_m.row(o.index())),
            None => {
                let mut row = embed_name(embedder, name).unwrap_or_else(|| vec![0.0; dim]);
                propagation::normalize_row(&mut row);
                m.row_mut(i).copy_from_slice(&row);
            }
        }
    }
    m
}

/// Patch one graph's propagation layers. Returns the new `[H₀…H_L]` and
/// the set of new-graph entity indices whose **final-layer** row was
/// recomputed (the structural dirty set for store patching).
///
/// Dirty tracking is by name: `base` = entities new to the graph plus
/// kept entities whose sorted neighbour-*name* list changed (covers
/// degree changes too, since the list length changes). `S₁ = base ∪
/// N(base)`, `Sₗ = Sₗ₋₁ ∪ N(Sₗ₋₁)` over the *new* graph; layer `l`
/// recomputes exactly the rows in `Sₗ` (layer 0 only the new entities —
/// seeds are pure in the name). Rows are recomputed through the very
/// `seed_row` / `propagate_row` functions the bulk encoder runs, so a
/// patched layer is bitwise-identical to a fresh one.
fn patch_propagation(
    old_kg: &KnowledgeGraph,
    new_kg: &KnowledgeGraph,
    old_layers: &[Matrix],
) -> (Vec<Matrix>, HashSet<usize>) {
    let dim = old_layers[0].cols();
    let n = new_kg.num_entities();
    let neigh = propagation::neighbor_lists(new_kg);
    let degrees: Vec<usize> = neigh.iter().map(Vec::len).collect();
    let names: Vec<&str> = new_kg
        .entity_ids()
        .map(|e| new_kg.entity_name(e).expect("interned"))
        .collect();
    let old_row: Vec<Option<usize>> = names
        .iter()
        .map(|nm| old_kg.entity_id(nm).map(|e| e.index()))
        .collect();

    let mut base: HashSet<usize> = HashSet::new();
    for i in 0..n {
        match old_row[i] {
            None => {
                base.insert(i);
            }
            Some(o) => {
                let mut new_nb: Vec<&str> = neigh[i].iter().map(|&e| names[e.index()]).collect();
                new_nb.sort_unstable();
                let mut old_nb: Vec<&str> = old_kg
                    .neighbors(ceaff_graph::EntityId::new(o as u32))
                    .iter()
                    .map(|&e| old_kg.entity_name(e).expect("interned"))
                    .collect();
                old_nb.sort_unstable();
                if new_nb != old_nb {
                    base.insert(i);
                }
            }
        }
    }

    let expand = |s: &HashSet<usize>| -> HashSet<usize> {
        let mut out = s.clone();
        for &i in s {
            for &e in &neigh[i] {
                out.insert(e.index());
            }
        }
        out
    };

    let h0 = propagation::matrix_from_par_rows(n, dim, |i| match old_row[i] {
        Some(o) => old_layers[0].row(o).to_vec(),
        None => propagation::seed_row(names[i], dim),
    });
    let mut layers = vec![h0];
    let mut dirty = expand(&base);
    for l in 1..old_layers.len() {
        if l > 1 {
            dirty = expand(&dirty);
        }
        let d = &dirty;
        let prev = &layers[l - 1];
        let next = propagation::matrix_from_par_rows(n, dim, |i| {
            if d.contains(&i) {
                propagation::propagate_row(prev, i, &neigh[i], &degrees)
            } else {
                old_layers[l]
                    .row(old_row[i].expect("clean rows are kept entities"))
                    .to_vec()
            }
        });
        layers.push(next);
    }
    (layers, dirty)
}

/// A matching as `source name → target name` (sorted map for stable diff
/// order).
fn named_matching(m: &Matching, tests: &[(String, String)]) -> BTreeMap<String, String> {
    m.pairs()
        .iter()
        .map(|&(i, j)| (tests[i].0.clone(), tests[j].1.clone()))
        .collect()
}

/// Added / removed / re-assigned pairs between two named matchings.
#[allow(clippy::type_complexity)]
fn diff_matchings(
    old: &BTreeMap<String, String>,
    new: &BTreeMap<String, String>,
) -> (
    Vec<(String, String)>,
    Vec<(String, String)>,
    Vec<(String, String, String)>,
) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let mut changed = Vec::new();
    for (s, t) in new {
        match old.get(s) {
            None => added.push((s.clone(), t.clone())),
            Some(ot) if ot != t => changed.push((s.clone(), ot.clone(), t.clone())),
            Some(_) => {}
        }
    }
    for (s, t) in old {
        if !new.contains_key(s) {
            removed.push((s.clone(), t.clone()));
        }
    }
    (added, removed, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_graph::{DeltaOp, Side};

    fn dataset() -> ceaff_datagen::GeneratedDataset {
        ceaff_datagen::generate(&ceaff_datagen::GenConfig {
            aligned_entities: 60,
            channel: ceaff_datagen::NameChannel::Identical { typo_rate: 0.05 },
            ..ceaff_datagen::GenConfig::default()
        })
    }

    fn cfg(blocked: bool) -> CeaffConfig {
        let mut c = CeaffConfig::builder()
            .gcn(crate::gcn::GcnConfig {
                dim: 16,
                ..crate::gcn::GcnConfig::default()
            })
            .embed_dim(32)
            .build()
            .expect("valid config")
            .with_propagation(2);
        if blocked {
            c = c.with_blocking(8);
        }
        c
    }

    fn edit_delta(pair: &KgPair) -> KgDelta {
        // Add a source entity, wire it into the graph near a test entity,
        // and remove one existing triple — touches structure and split.
        let (u, _) = pair.test_pairs()[0];
        let anchor = pair.source.entity_name(u).expect("interned").to_owned();
        let t = pair.source.triples()[0];
        let (h, r, tl) = (
            pair.source
                .entity_name(t.head)
                .expect("interned")
                .to_owned(),
            pair.source
                .relation_name(t.relation)
                .expect("interned")
                .to_owned(),
            pair.source
                .entity_name(t.tail)
                .expect("interned")
                .to_owned(),
        );
        KgDelta::new(vec![
            DeltaOp::AddEntity {
                side: Side::Source,
                name: "delta_fresh_entity".into(),
                at: None,
            },
            DeltaOp::AddTriple {
                side: Side::Source,
                head: "delta_fresh_entity".into(),
                relation: r.clone(),
                tail: anchor,
                at: None,
            },
            DeltaOp::RemoveTriple {
                side: Side::Source,
                head: h,
                relation: r,
                tail: tl,
                at: None,
            },
        ])
    }

    /// Incremental apply ≡ from-scratch on the edited pair, bitwise.
    fn assert_parity(blocked: bool) {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let cfg = cfg(blocked);
        let mut state =
            DeltaState::new(&EaInput::new(&ds.pair, &src, &tgt), &cfg).expect("warm state");
        let delta = edit_delta(&ds.pair);
        let diff = state.apply(&delta, &src, &tgt).expect("delta applies");
        assert!(diff.recompute_fraction < 1.0, "nothing stayed clean");

        let edited = delta.apply(&ds.pair).expect("delta valid").pair;
        let fresh_features = FeatureSet::compute(&EaInput::new(&edited, &src, &tgt), &cfg);
        let fresh = try_run_with_features(&edited, &fresh_features, &cfg, &Telemetry::disabled())
            .expect("fresh run");

        assert_eq!(state.output().matching.pairs(), fresh.matching.pairs());
        assert_eq!(
            state.output().accuracy.to_bits(),
            fresh.accuracy.to_bits(),
            "accuracy must be bitwise-identical"
        );
        match (&state.output().fused, &fresh.fused) {
            (SimStore::Dense(a), SimStore::Dense(b)) => {
                let (am, bm) = (a.as_matrix().as_slice(), b.as_matrix().as_slice());
                assert_eq!(am.len(), bm.len());
                for (x, y) in am.iter().zip(bm) {
                    assert_eq!(x.to_bits(), y.to_bits(), "fused store diverged");
                }
            }
            (SimStore::Sparse(a), SimStore::Sparse(b)) => assert_eq!(a, b),
            _ => panic!("store kinds diverged"),
        }
    }

    #[test]
    fn single_delta_parity_dense() {
        assert_parity(false);
    }

    #[test]
    fn single_delta_parity_blocked() {
        assert_parity(true);
    }

    #[test]
    fn trained_structural_mode_is_rejected() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let cfg = CeaffConfig::builder().embed_dim(32).build().expect("valid");
        let err = DeltaState::new(&EaInput::new(&ds.pair, &src, &tgt), &cfg)
            .err()
            .expect("trained mode must be rejected");
        match err {
            CeaffError::Delta(msg) => assert!(msg.contains("StructuralMode::Propagation"), "{msg}"),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn fingerprint_chains_deterministically_and_steps_advance() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let cfg = cfg(false);
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let mut a = DeltaState::new(&input, &cfg).expect("state a");
        let mut b = DeltaState::new(&input, &cfg).expect("state b");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.step(), 0);
        let delta = edit_delta(&ds.pair);
        let da = a.apply(&delta, &src, &tgt).expect("a applies");
        let db = b.apply(&delta, &src, &tgt).expect("b applies");
        assert_eq!(da.fingerprint, db.fingerprint);
        assert_ne!(da.fingerprint, config_fingerprint(&cfg).expect("fp"));
        assert_eq!(a.step(), 1);
        assert_eq!(da.step, 1);
    }

    #[test]
    fn rejected_delta_leaves_state_untouched() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let cfg = cfg(false);
        let mut state =
            DeltaState::new(&EaInput::new(&ds.pair, &src, &tgt), &cfg).expect("warm state");
        let fp = state.fingerprint();
        let bad = KgDelta::new(vec![DeltaOp::RemoveEntity {
            side: Side::Source,
            name: "no_such_entity_anywhere".into(),
        }]);
        let err = state.apply(&bad, &src, &tgt).expect_err("must reject");
        assert!(matches!(err, CeaffError::Delta(_)), "{err:?}");
        assert_eq!(state.fingerprint(), fp);
        assert_eq!(state.step(), 0);
        assert_eq!(state.pair(), &ds.pair);
    }

    #[test]
    fn quiet_delta_reports_no_alignment_changes() {
        let ds = dataset();
        let src = ds.source_embedder(32);
        let tgt = ds.target_embedder(32);
        let cfg = cfg(false);
        let mut state =
            DeltaState::new(&EaInput::new(&ds.pair, &src, &tgt), &cfg).expect("warm state");
        // An isolated entity far from the test split changes no feature row.
        let delta = KgDelta::new(vec![DeltaOp::AddEntity {
            side: Side::Target,
            name: "isolated_new_entity".into(),
            at: None,
        }]);
        let diff = state.apply(&delta, &src, &tgt).expect("applies");
        assert!(diff.is_quiet(), "{diff:?}");
        assert_eq!(diff.recompute_fraction, 0.0);
    }
}
