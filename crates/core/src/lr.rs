//! The learning-based weighting baseline (paper §VII-E, "LR").
//!
//! EA is cast as binary classification: seed pairs are positives, and each
//! seed is corrupted into 10 negatives by replacing the target entity with
//! a random one. Logistic regression over the per-feature similarity
//! scores yields feature weights, which are then used to combine the
//! feature matrices before collective matching — the paper's stronger
//! baseline against which the training-free adaptive fusion is compared.

use crate::features::Feature;
use ceaff_graph::{EntityId, KgPair};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Logistic-regression training configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LrConfig {
    /// Negatives generated per seed pair (paper: 10).
    pub negatives_per_positive: usize,
    /// Full-batch gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed for negative sampling.
    pub seed: u64,
}

impl Default for LrConfig {
    fn default() -> Self {
        Self {
            negatives_per_positive: 10,
            epochs: 300,
            lr: 0.5,
            seed: 0x11,
        }
    }
}

/// Learned fusion weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnedWeights {
    /// One weight per feature, in input order.
    pub weights: Vec<f32>,
    /// Intercept (unused for fusion — a constant offset does not change
    /// preference orders — but reported for inspection).
    pub bias: f32,
    /// Final training loss (mean binary cross-entropy).
    pub final_loss: f32,
}

fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Train logistic regression on seed pairs vs corrupted pairs.
///
/// # Panics
/// Panics if `features` is empty.
pub fn learn_weights(features: &[&dyn Feature], pair: &KgPair, cfg: &LrConfig) -> LearnedWeights {
    assert!(!features.is_empty(), "need at least one feature");
    let k = features.len();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let n_targets = pair.target.num_entities();

    // Build the design matrix.
    let mut xs: Vec<Vec<f32>> = Vec::new();
    let mut ys: Vec<f32> = Vec::new();
    for &(u, v) in pair.seeds() {
        xs.push(features.iter().map(|f| f.score(u, v)).collect());
        ys.push(1.0);
        for _ in 0..cfg.negatives_per_positive {
            let v_neg = loop {
                let cand = EntityId::new(rng.gen_range(0..n_targets) as u32);
                if cand != v {
                    break cand;
                }
            };
            xs.push(features.iter().map(|f| f.score(u, v_neg)).collect());
            ys.push(0.0);
        }
    }
    if xs.is_empty() {
        // No seeds: fall back to equal weights.
        return LearnedWeights {
            weights: vec![1.0 / k as f32; k],
            bias: 0.0,
            final_loss: f32::NAN,
        };
    }

    let n = xs.len() as f32;
    let mut w = vec![0.0f32; k];
    let mut b = 0.0f32;
    let mut final_loss = 0.0f32;
    for _ in 0..cfg.epochs {
        let mut gw = vec![0.0f32; k];
        let mut gb = 0.0f32;
        let mut loss = 0.0f32;
        for (x, &y) in xs.iter().zip(&ys) {
            let z: f32 = x.iter().zip(&w).map(|(xi, wi)| xi * wi).sum::<f32>() + b;
            let p = sigmoid(z);
            let err = p - y;
            for (g, xi) in gw.iter_mut().zip(x) {
                *g += err * xi;
            }
            gb += err;
            // Clamped BCE for numerical safety.
            let p_c = p.clamp(1e-7, 1.0 - 1e-7);
            loss += -(y * p_c.ln() + (1.0 - y) * (1.0 - p_c).ln());
        }
        for (wi, g) in w.iter_mut().zip(&gw) {
            *wi -= cfg.lr * g / n;
        }
        b -= cfg.lr * gb / n;
        final_loss = loss / n;
    }
    LearnedWeights {
        weights: w,
        bias: b,
        final_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_sim::SimilarityMatrix;
    use ceaff_tensor::Matrix;

    /// A synthetic feature whose score is high exactly on the diagonal.
    struct DiagFeature {
        n: usize,
        strength: f32,
        test: ceaff_sim::SimStore,
    }

    impl DiagFeature {
        fn new(n: usize, strength: f32) -> Self {
            let mut m = Matrix::zeros(n, n);
            for i in 0..n {
                m[(i, i)] = strength;
            }
            Self {
                n,
                strength,
                test: ceaff_sim::SimStore::Dense(SimilarityMatrix::new(m)),
            }
        }
    }

    impl Feature for DiagFeature {
        fn name(&self) -> &'static str {
            "diag"
        }
        fn test_store(&self) -> &ceaff_sim::SimStore {
            &self.test
        }
        fn score(&self, u: EntityId, v: EntityId) -> f32 {
            if u == v && u.index() < self.n {
                self.strength
            } else {
                0.0
            }
        }
    }

    /// A useless feature: constant score everywhere.
    struct NoiseFeature;
    impl Feature for NoiseFeature {
        fn name(&self) -> &'static str {
            "noise"
        }
        fn test_store(&self) -> &ceaff_sim::SimStore {
            unimplemented!("not needed for weight learning")
        }
        fn score(&self, _: EntityId, _: EntityId) -> f32 {
            0.5
        }
    }

    fn toy_pair(n: usize) -> KgPair {
        use rand::SeedableRng;
        let mut g1 = ceaff_graph::KnowledgeGraph::new();
        let mut g2 = ceaff_graph::KnowledgeGraph::new();
        for i in 0..n {
            g1.add_entity(&format!("s{i}"));
            g2.add_entity(&format!("t{i}"));
        }
        let gold = (0..n as u32)
            .map(|i| (EntityId::new(i), EntityId::new(i)))
            .collect();
        let alignment = ceaff_graph::Alignment::new(gold).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        KgPair::new(g1, g2, alignment, 0.5, &mut rng)
    }

    #[test]
    fn informative_feature_gets_positive_weight() {
        let pair = toy_pair(60);
        let good = DiagFeature::new(60, 1.0);
        let lw = learn_weights(&[&good, &NoiseFeature], &pair, &LrConfig::default());
        assert!(
            lw.weights[0] > 0.5,
            "informative feature weight {:?}",
            lw.weights
        );
        assert!(
            lw.weights[0] > lw.weights[1].abs(),
            "noise should not dominate: {:?}",
            lw.weights
        );
        assert!(lw.final_loss < 0.7, "loss should fall below chance");
    }

    #[test]
    fn stronger_feature_outweighs_weaker() {
        let pair = toy_pair(60);
        let strong = DiagFeature::new(60, 1.0);
        let weak = DiagFeature::new(60, 0.2);
        let lw = learn_weights(&[&strong, &weak], &pair, &LrConfig::default());
        assert!(lw.weights[0] > lw.weights[1], "weights {:?}", lw.weights);
    }

    #[test]
    fn no_seeds_falls_back_to_equal() {
        let mut pair = toy_pair(10);
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        pair = KgPair::new(
            pair.source.clone(),
            pair.target.clone(),
            pair.alignment.clone(),
            0.0,
            &mut rng,
        );
        let lw = learn_weights(&[&NoiseFeature, &NoiseFeature], &pair, &LrConfig::default());
        assert_eq!(lw.weights, vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn empty_features_rejected() {
        let pair = toy_pair(10);
        let _ = learn_weights(&[], &pair, &LrConfig::default());
    }
}
