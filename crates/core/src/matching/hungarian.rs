//! Maximum-weight bipartite matching via the Hungarian (Kuhn–Munkres)
//! algorithm — the alternative collective formulation the paper discusses
//! in §VI and argues is less desirable than stable matching (it optimises a
//! global utility sum but ignores individual preferences, and costs O(n³)
//! against DAA's near-quadratic behaviour). Implemented here so the
//! discussion is measurable (see the `matching` bench).

use super::{greedy_complete, AnytimeOutcome, Matcher, Matching};
use crate::budget::ExecBudget;
use ceaff_sim::{SimStore, SimilarityMatrix, SparseTopK};
use ceaff_telemetry::Telemetry;
use ceaff_tensor::Matrix;

/// Kuhn–Munkres assignment maximising total similarity, O(n²·m).
///
/// Rectangular inputs are supported: with `n` sources and `m` targets,
/// `min(n, m)` pairs are produced.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hungarian;

impl Hungarian {
    /// Run the assignment, returning the matching plus the number of
    /// potential-update iterations the augmenting search performed.
    fn solve(&self, m: &SimilarityMatrix) -> (Matching, u64) {
        let mut iterations = 0u64;
        let (n, t) = (m.sources(), m.targets());
        if n == 0 || t == 0 {
            return (Matching::from_pairs(Vec::new()), iterations);
        }
        // The potential-based algorithm needs rows ≤ columns; transpose if
        // needed and flip the result.
        let transposed = n > t;
        let (rows, cols) = if transposed { (t, n) } else { (n, t) };
        let cost = |i: usize, j: usize| -> f64 {
            let v = if transposed { m.get(j, i) } else { m.get(i, j) };
            -(v as f64) // minimise negated similarity = maximise similarity
        };

        // e-maxx potentials formulation, 1-indexed.
        const INF: f64 = f64::INFINITY;
        let mut u = vec![0.0f64; rows + 1];
        let mut v = vec![0.0f64; cols + 1];
        let mut p = vec![0usize; cols + 1]; // p[j] = row matched to column j
        let mut way = vec![0usize; cols + 1];
        for i in 1..=rows {
            p[0] = i;
            let mut j0 = 0usize;
            let mut minv = vec![INF; cols + 1];
            let mut used = vec![false; cols + 1];
            loop {
                iterations += 1;
                used[j0] = true;
                let i0 = p[j0];
                let mut delta = INF;
                let mut j1 = 0usize;
                for j in 1..=cols {
                    if used[j] {
                        continue;
                    }
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
                for j in 0..=cols {
                    if used[j] {
                        u[p[j]] += delta;
                        v[j] -= delta;
                    } else {
                        minv[j] -= delta;
                    }
                }
                j0 = j1;
                if p[j0] == 0 {
                    break;
                }
            }
            // Augment along the found path.
            loop {
                let j1 = way[j0];
                p[j0] = p[j1];
                j0 = j1;
                if j0 == 0 {
                    break;
                }
            }
        }

        let mut pairs: Vec<(usize, usize)> = (1..=cols)
            .filter(|&j| p[j] != 0)
            .map(|j| {
                let (r, c) = (p[j] - 1, j - 1);
                if transposed {
                    (c, r)
                } else {
                    (r, c)
                }
            })
            .collect();
        pairs.sort_unstable();
        (Matching::from_pairs(pairs), iterations)
    }

    /// Densify only the candidate submatrix: the columns are the ascending
    /// union of every row's stored candidates, missing cells become `0.0`.
    /// Kuhn–Munkres is then exact over that submatrix — `O(n² · |union|)`
    /// instead of `O(n² · targets)`. On a complete store the union is every
    /// column, the submatrix is the dense matrix, and the column remap is
    /// the identity, so results are bitwise those of the dense path.
    fn densify_candidates(s: &SparseTopK) -> (SimilarityMatrix, Vec<usize>) {
        let (n, t) = (s.sources(), s.targets());
        let mut present = vec![false; t];
        for i in 0..n {
            for &c in s.row_entries(i).0 {
                present[c as usize] = true;
            }
        }
        let union: Vec<usize> = (0..t).filter(|&j| present[j]).collect();
        let mut inv = vec![usize::MAX; t];
        for (idx, &j) in union.iter().enumerate() {
            inv[j] = idx;
        }
        let mut m = Matrix::zeros(n, union.len());
        for i in 0..n {
            let (cols, scores) = s.row_entries(i);
            for (&c, &v) in cols.iter().zip(scores) {
                m[(i, inv[c as usize])] = v;
            }
        }
        (SimilarityMatrix::new(m), union)
    }

    /// Remap submatrix column indices back to original target indices.
    fn remap(matching: Matching, union: &[usize]) -> Matching {
        let pairs = matching
            .pairs()
            .iter()
            .map(|&(i, j)| (i, union[j]))
            .collect();
        Matching::from_pairs(pairs)
    }
}

impl Matcher for Hungarian {
    fn name(&self) -> &'static str {
        "hungarian"
    }

    fn matching(&self, m: &SimilarityMatrix) -> Matching {
        self.solve(m).0
    }

    fn matching_traced(&self, m: &SimilarityMatrix, telemetry: &Telemetry) -> Matching {
        let _span = telemetry.span("matcher");
        let (matching, iterations) = self.solve(m);
        telemetry.counter_add("matcher", "iterations", iterations);
        matching
    }

    /// Anytime Kuhn–Munkres. The granule is one row augmentation: after
    /// each augmenting path the partial assignment of the processed rows
    /// is a valid (optimal-so-far) one-to-one matching, so that is the
    /// checkpoint. Cancel/deadline is also polled inside the O(cols²)
    /// augmenting search — potentials mutate during the search but `p[]`
    /// only changes in the final augment step, so aborting mid-search
    /// leaves the last checkpoint intact. Rows never processed are
    /// completed greedily. Note the degraded matching is *valid* but not
    /// weight-optimal; unlike stable marriage there is no per-row
    /// stability guarantee to preserve (optimal assignments legitimately
    /// contain blocking pairs).
    fn matching_budgeted(
        &self,
        m: &SimilarityMatrix,
        budget: &ExecBudget,
        telemetry: &Telemetry,
    ) -> AnytimeOutcome {
        if budget.is_unlimited() {
            return AnytimeOutcome::exact(self.matching_traced(m, telemetry));
        }
        let _span = telemetry.span("matcher");
        let mut iterations = 0u64;
        let (n, t) = (m.sources(), m.targets());
        if n == 0 || t == 0 {
            return AnytimeOutcome::exact(Matching::from_pairs(Vec::new()));
        }
        let transposed = n > t;
        let (rows, cols) = if transposed { (t, n) } else { (n, t) };
        let cost = |i: usize, j: usize| -> f64 {
            let v = if transposed { m.get(j, i) } else { m.get(i, j) };
            -(v as f64)
        };

        const INF: f64 = f64::INFINITY;
        let mut u = vec![0.0f64; rows + 1];
        let mut v = vec![0.0f64; cols + 1];
        let mut p = vec![0usize; cols + 1];
        let mut way = vec![0usize; cols + 1];
        let mut stop = None;
        let mut rounds = 0u64;
        'rows: for i in 1..=rows {
            if let Some(reason) = budget.consume_step() {
                stop = Some(reason);
                break;
            }
            telemetry.progress("matcher", (i - 1) as u64, rows as u64);
            p[0] = i;
            let mut j0 = 0usize;
            let mut minv = vec![INF; cols + 1];
            let mut used = vec![false; cols + 1];
            loop {
                if iterations.is_multiple_of(64) {
                    if let Some(reason) = budget.interrupt_reason() {
                        stop = Some(reason);
                        break 'rows; // p[] still holds the last checkpoint
                    }
                }
                iterations += 1;
                used[j0] = true;
                let i0 = p[j0];
                let mut delta = INF;
                let mut j1 = 0usize;
                for j in 1..=cols {
                    if used[j] {
                        continue;
                    }
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
                for j in 0..=cols {
                    if used[j] {
                        u[p[j]] += delta;
                        v[j] -= delta;
                    } else {
                        minv[j] -= delta;
                    }
                }
                j0 = j1;
                if p[j0] == 0 {
                    break;
                }
            }
            if stop.is_none() {
                loop {
                    let j1 = way[j0];
                    p[j0] = p[j1];
                    j0 = j1;
                    if j0 == 0 {
                        break;
                    }
                }
                rounds += 1;
            }
        }

        let mut pairs: Vec<(usize, usize)> = (1..=cols)
            .filter(|&j| p[j] != 0)
            .map(|j| {
                let (r, c) = (p[j] - 1, j - 1);
                if transposed {
                    (c, r)
                } else {
                    (r, c)
                }
            })
            .collect();
        pairs.sort_unstable();
        telemetry.counter_add("matcher", "iterations", iterations);
        telemetry.progress("matcher", rows as u64, rows as u64);
        let Some(reason) = stop else {
            return AnytimeOutcome::exact(Matching::from_pairs(pairs));
        };
        let mut src_taken = vec![false; n];
        let mut tgt_taken = vec![false; t];
        for &(i, j) in &pairs {
            src_taken[i] = true;
            tgt_taken[j] = true;
        }
        let degraded_rows: Vec<usize> = (0..n).filter(|&i| !src_taken[i]).collect();
        greedy_complete(m, &mut src_taken, &mut tgt_taken, &mut pairs);
        pairs.sort_unstable();
        let degradation = budget.record_degradation(
            telemetry,
            "matcher",
            reason,
            rounds,
            degraded_rows.len() as f64 / n as f64,
        );
        AnytimeOutcome {
            matching: Matching::from_pairs(pairs),
            degradation: Some(degradation),
            degraded_rows,
        }
    }

    fn matching_store(&self, s: &SimStore) -> Matching {
        match s {
            SimStore::Dense(m) => self.matching(m),
            SimStore::Sparse(sp) => {
                let (sub, union) = Self::densify_candidates(sp);
                Self::remap(self.matching(&sub), &union)
            }
        }
    }

    fn matching_store_traced(&self, s: &SimStore, telemetry: &Telemetry) -> Matching {
        match s {
            SimStore::Dense(m) => self.matching_traced(m, telemetry),
            SimStore::Sparse(sp) => {
                let (sub, union) = Self::densify_candidates(sp);
                Self::remap(self.matching_traced(&sub, telemetry), &union)
            }
        }
    }

    fn matching_store_budgeted(
        &self,
        s: &SimStore,
        budget: &ExecBudget,
        telemetry: &Telemetry,
    ) -> AnytimeOutcome {
        match s {
            SimStore::Dense(m) => self.matching_budgeted(m, budget, telemetry),
            SimStore::Sparse(sp) => {
                let (sub, union) = Self::densify_candidates(sp);
                let out = self.matching_budgeted(&sub, budget, telemetry);
                AnytimeOutcome {
                    matching: Self::remap(out.matching, &union),
                    degradation: out.degradation,
                    degraded_rows: out.degraded_rows,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_tensor::Matrix;
    use proptest::prelude::*;

    #[test]
    fn solves_figure1_optimally() {
        let m = SimilarityMatrix::new(Matrix::from_rows(&[
            &[0.9, 0.6, 0.1],
            &[0.7, 0.5, 0.2],
            &[0.2, 0.4, 0.2],
        ]));
        let matching = Hungarian.matching(&m);
        assert_eq!(matching.pairs(), &[(0, 0), (1, 1), (2, 2)]);
        // Total 1.6 is the maximum over all permutations.
        assert!((matching.total_weight(&m) - 1.6).abs() < 1e-6);
    }

    #[test]
    fn picks_off_diagonal_optimum() {
        // Optimal assignment is anti-diagonal.
        let m = SimilarityMatrix::new(Matrix::from_rows(&[&[0.1, 1.0], &[1.0, 0.1]]));
        let matching = Hungarian.matching(&m);
        assert_eq!(matching.pairs(), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn rectangular_wide() {
        let m = SimilarityMatrix::new(Matrix::from_rows(&[&[0.1, 0.9, 0.2], &[0.8, 0.7, 0.1]]));
        let matching = Hungarian.matching(&m);
        assert_eq!(matching.len(), 2);
        assert!(matching.is_one_to_one());
        assert_eq!(matching.pairs(), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn rectangular_tall() {
        let m = SimilarityMatrix::new(Matrix::from_rows(&[&[0.9], &[0.95], &[0.1]]));
        let matching = Hungarian.matching(&m);
        assert_eq!(matching.pairs(), &[(1, 0)]);
    }

    #[test]
    fn empty() {
        assert!(Hungarian
            .matching(&SimilarityMatrix::zeros(0, 3))
            .is_empty());
    }

    /// Brute-force optimum over all permutations for small n.
    fn brute_force_max(m: &SimilarityMatrix) -> f64 {
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for pos in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(pos, n - 1);
                    out.push(q);
                }
            }
            out
        }
        perms(m.sources())
            .into_iter()
            .map(|p| {
                p.iter()
                    .enumerate()
                    .map(|(i, &j)| m.get(i, j) as f64)
                    .sum::<f64>()
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    proptest! {
        /// Hungarian always attains the brute-force optimum on 4×4 inputs
        /// and produces perfect one-to-one matchings.
        #[test]
        fn matches_brute_force(vals in proptest::collection::vec(0.0f32..1.0, 16)) {
            let m = SimilarityMatrix::new(Matrix::from_vec(4, 4, vals));
            let matching = Hungarian.matching(&m);
            prop_assert_eq!(matching.len(), 4);
            prop_assert!(matching.is_one_to_one());
            let best = brute_force_max(&m);
            prop_assert!((matching.total_weight(&m) - best).abs() < 1e-4,
                "hungarian {} vs brute force {}", matching.total_weight(&m), best);
        }

        /// Hungarian total weight ≥ stable-marriage total weight ≥ each is
        /// ≥ 0 on non-negative matrices (the §VI utility discussion).
        #[test]
        fn dominates_stable_marriage_weight(vals in proptest::collection::vec(0.0f32..1.0, 25)) {
            let m = SimilarityMatrix::new(Matrix::from_vec(5, 5, vals));
            let h = Hungarian.matching(&m).total_weight(&m);
            let s = super::super::StableMarriage.matching(&m).total_weight(&m);
            prop_assert!(h >= s - 1e-5, "hungarian {h} < stable {s}");
        }
    }
}
