//! EA as the stable matching problem, solved by deferred acceptance
//! (Gale–Shapley 1962; Roth 2008) — the paper's collective EA strategy
//! (§VI).
//!
//! Preference lists are implicit: a source entity prefers targets in
//! descending similarity order of its matrix row, a target prefers sources
//! in descending order of its column. Sources propose; targets hold
//! provisional matches and trade up. The result is source-optimal and
//! contains no blocking pair.

use super::{greedy_complete, greedy_complete_sparse, AnytimeOutcome, Matcher, Matching};
use crate::budget::ExecBudget;
use ceaff_sim::{SimStore, SimilarityMatrix, SparseTopK};
use ceaff_telemetry::Telemetry;
use std::collections::VecDeque;

/// Deferred acceptance with source entities proposing.
///
/// Complexity: `O(n·m)` proposals worst case over an `n × m` matrix, after
/// an `O(n·m·log m)` preference-sort. When `n > m`, the `n − m` sources
/// whose every proposal is rejected stay unmatched (the paper's benchmark
/// test sets are square).
///
/// The paper's Figure 1 matrix, where independent decisions collide:
///
/// ```
/// use ceaff_core::matching::{Matcher, StableMarriage};
/// use ceaff_sim::SimilarityMatrix;
/// use ceaff_tensor::Matrix;
///
/// let m = SimilarityMatrix::new(Matrix::from_rows(&[
///     &[0.9, 0.6, 0.1],
///     &[0.7, 0.5, 0.2],
///     &[0.2, 0.4, 0.2],
/// ]));
/// let matching = StableMarriage.matching(&m);
/// assert_eq!(matching.pairs(), &[(0, 0), (1, 1), (2, 2)]);
/// assert!(matching.find_blocking_pair(&m).is_none());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct StableMarriage;

impl StableMarriage {
    /// Run deferred acceptance, returning the matching plus the number of
    /// proposals made and of times a target traded its holder up.
    fn solve(&self, m: &SimilarityMatrix) -> (Matching, u64, u64) {
        let mut proposals = 0u64;
        let mut trade_ups = 0u64;
        let (n, t) = (m.sources(), m.targets());
        if n == 0 || t == 0 {
            return (Matching::from_pairs(Vec::new()), proposals, trade_ups);
        }
        // Descending preference list per source. The `O(n·m·log m)` sort
        // dominates the proposal loop, and rows are independent, so large
        // instances build their lists across the pool (each row's sort is
        // a fixed comparison sequence, so the lists — and hence the whole
        // proposal schedule — are identical at any thread count).
        let build_prefs = |i: usize| {
            let row = m.row(i);
            let mut idx: Vec<u32> = (0..t as u32).collect();
            idx.sort_by(|&a, &b| {
                row[b as usize]
                    .partial_cmp(&row[a as usize])
                    .expect("similarity scores must not be NaN")
                    .then(a.cmp(&b))
            });
            idx
        };
        let prefs: Vec<Vec<u32>> = if n >= 64 {
            ceaff_parallel::par_map(n, 16, build_prefs)
        } else {
            (0..n).map(build_prefs).collect()
        };
        // next_proposal[i] = cursor into prefs[i].
        let mut next_proposal = vec![0usize; n];
        // holder[j] = source currently provisionally matched to target j.
        let mut holder: Vec<Option<usize>> = vec![None; t];
        let mut queue: VecDeque<usize> = (0..n).collect();

        while let Some(u) = queue.pop_front() {
            // Propose down u's preference list until accepted or exhausted.
            let mut u = u;
            loop {
                let cursor = next_proposal[u];
                if cursor >= t {
                    break; // exhausted every target; stays unmatched
                }
                next_proposal[u] += 1;
                proposals += 1;
                let v = prefs[u][cursor] as usize;
                match holder[v] {
                    None => {
                        holder[v] = Some(u);
                        break;
                    }
                    Some(cur) => {
                        // Target v trades up if it prefers u over cur.
                        if m.get(u, v) > m.get(cur, v) {
                            holder[v] = Some(u);
                            trade_ups += 1;
                            u = cur; // the dumped source proposes next
                        }
                        // else: rejected, u proposes to its next choice.
                    }
                }
            }
        }

        let mut pairs: Vec<(usize, usize)> = holder
            .into_iter()
            .enumerate()
            .filter_map(|(v, h)| h.map(|u| (u, v)))
            .collect();
        pairs.sort_unstable();
        (Matching::from_pairs(pairs), proposals, trade_ups)
    }

    /// Deferred acceptance over a sparse store. The stored rows *are* the
    /// preference lists — already sorted (score desc, col asc), the exact
    /// comparator of the dense build — so no sort happens at all. A source
    /// that exhausts its candidate list stays unmatched (it never proposes
    /// to a non-candidate). On a complete store the proposal schedule, and
    /// hence the matching, is bitwise-identical to the dense solver.
    fn solve_sparse(&self, s: &SparseTopK) -> (Matching, u64, u64) {
        let mut proposals = 0u64;
        let mut trade_ups = 0u64;
        let (n, t) = (s.sources(), s.targets());
        if n == 0 || t == 0 {
            return (Matching::from_pairs(Vec::new()), proposals, trade_ups);
        }
        let mut next_proposal = vec![0usize; n];
        let mut holder: Vec<Option<usize>> = vec![None; t];
        let mut queue: VecDeque<usize> = (0..n).collect();

        while let Some(u) = queue.pop_front() {
            let mut u = u;
            loop {
                let (cols, scores) = s.row_entries(u);
                let cursor = next_proposal[u];
                if cursor >= cols.len() {
                    break; // exhausted its candidates; stays unmatched
                }
                next_proposal[u] += 1;
                proposals += 1;
                let v = cols[cursor] as usize;
                let uv = scores[cursor];
                match holder[v] {
                    None => {
                        holder[v] = Some(u);
                        break;
                    }
                    Some(cur) => {
                        if uv > s.get(cur, v) {
                            holder[v] = Some(u);
                            trade_ups += 1;
                            u = cur;
                        }
                    }
                }
            }
        }

        let mut pairs: Vec<(usize, usize)> = holder
            .into_iter()
            .enumerate()
            .filter_map(|(v, h)| h.map(|u| (u, v)))
            .collect();
        pairs.sort_unstable();
        (Matching::from_pairs(pairs), proposals, trade_ups)
    }
}

impl Matcher for StableMarriage {
    fn name(&self) -> &'static str {
        "stable-marriage"
    }

    fn matching(&self, m: &SimilarityMatrix) -> Matching {
        self.solve(m).0
    }

    fn matching_traced(&self, m: &SimilarityMatrix, telemetry: &Telemetry) -> Matching {
        let _span = telemetry.span("matcher");
        let (matching, proposals, trade_ups) = self.solve(m);
        telemetry.counter_add("matcher", "iterations", proposals);
        telemetry.counter_add("matcher", "proposals", proposals);
        telemetry.counter_add("matcher", "trade_ups", trade_ups);
        matching
    }

    fn matching_store(&self, s: &SimStore) -> Matching {
        match s {
            SimStore::Dense(m) => self.matching(m),
            SimStore::Sparse(sp) => self.solve_sparse(sp).0,
        }
    }

    fn matching_store_traced(&self, s: &SimStore, telemetry: &Telemetry) -> Matching {
        match s {
            SimStore::Dense(m) => self.matching_traced(m, telemetry),
            SimStore::Sparse(sp) => {
                let _span = telemetry.span("matcher");
                let (matching, proposals, trade_ups) = self.solve_sparse(sp);
                telemetry.counter_add("matcher", "iterations", proposals);
                telemetry.counter_add("matcher", "proposals", proposals);
                telemetry.counter_add("matcher", "trade_ups", trade_ups);
                matching
            }
        }
    }

    /// Anytime deferred acceptance over either backend. The sparse path
    /// mirrors the dense anytime loop (granule = one queue pop, inner
    /// cancel poll every 64 proposals) minus the preference build — the
    /// stored rows are the lists. Unsettled sources are completed greedily
    /// against the still-free *candidate* cells.
    fn matching_store_budgeted(
        &self,
        s: &SimStore,
        budget: &ExecBudget,
        telemetry: &Telemetry,
    ) -> AnytimeOutcome {
        let sp = match s {
            SimStore::Dense(m) => return self.matching_budgeted(m, budget, telemetry),
            SimStore::Sparse(sp) => sp,
        };
        if budget.is_unlimited() {
            return AnytimeOutcome::exact(self.matching_store_traced(s, telemetry));
        }
        let _span = telemetry.span("matcher");
        let mut proposals = 0u64;
        let mut trade_ups = 0u64;
        let mut pops = 0u64;
        let (n, t) = (sp.sources(), sp.targets());
        if n == 0 || t == 0 {
            return AnytimeOutcome::exact(Matching::from_pairs(Vec::new()));
        }
        let mut stop = budget.interrupt_reason();
        let mut holder: Vec<Option<usize>> = vec![None; t];
        if stop.is_none() {
            let mut next_proposal = vec![0usize; n];
            let mut queue: VecDeque<usize> = (0..n).collect();
            'outer: while let Some(u) = queue.pop_front() {
                if let Some(reason) = budget.consume_step() {
                    stop = Some(reason);
                    break;
                }
                pops += 1;
                if pops.is_multiple_of(256) {
                    telemetry.progress("matcher", pops.min(n as u64), n as u64);
                }
                let mut u = u;
                loop {
                    if proposals.is_multiple_of(64) {
                        if let Some(reason) = budget.interrupt_reason() {
                            stop = Some(reason);
                            break 'outer;
                        }
                    }
                    let (cols, scores) = sp.row_entries(u);
                    let cursor = next_proposal[u];
                    if cursor >= cols.len() {
                        break;
                    }
                    next_proposal[u] += 1;
                    proposals += 1;
                    let v = cols[cursor] as usize;
                    let uv = scores[cursor];
                    match holder[v] {
                        None => {
                            holder[v] = Some(u);
                            break;
                        }
                        Some(cur) => {
                            if uv > sp.get(cur, v) {
                                holder[v] = Some(u);
                                trade_ups += 1;
                                u = cur;
                            }
                        }
                    }
                }
            }
        }

        let mut pairs: Vec<(usize, usize)> = holder
            .iter()
            .enumerate()
            .filter_map(|(v, h)| h.map(|u| (u, v)))
            .collect();
        pairs.sort_unstable();
        telemetry.counter_add("matcher", "iterations", proposals);
        telemetry.counter_add("matcher", "proposals", proposals);
        telemetry.counter_add("matcher", "trade_ups", trade_ups);
        telemetry.progress("matcher", n as u64, n as u64);
        let Some(reason) = stop else {
            return AnytimeOutcome::exact(Matching::from_pairs(pairs));
        };
        let mut src_taken = vec![false; n];
        let mut tgt_taken = vec![false; t];
        for &(i, j) in &pairs {
            src_taken[i] = true;
            tgt_taken[j] = true;
        }
        let degraded_rows: Vec<usize> = (0..n).filter(|&i| !src_taken[i]).collect();
        greedy_complete_sparse(sp, &mut src_taken, &mut tgt_taken, &mut pairs);
        pairs.sort_unstable();
        let degradation = budget.record_degradation(
            telemetry,
            "matcher",
            reason,
            pops,
            degraded_rows.len() as f64 / n as f64,
        );
        AnytimeOutcome {
            matching: Matching::from_pairs(pairs),
            degradation: Some(degradation),
            degraded_rows,
        }
    }

    /// Anytime deferred acceptance. The granule is one queue pop (one
    /// source starting its proposal run); cancel/deadline is also polled
    /// inside long trade-up chains. On stop, every target keeps its
    /// provisional holder — targets never vacate under DAA, so the held
    /// pairs are exactly what the full run's intermediate state would be
    /// and no blocking pair involves a settled source — and unsettled
    /// sources are completed greedily against the still-free targets.
    fn matching_budgeted(
        &self,
        m: &SimilarityMatrix,
        budget: &ExecBudget,
        telemetry: &Telemetry,
    ) -> AnytimeOutcome {
        if budget.is_unlimited() {
            return AnytimeOutcome::exact(self.matching_traced(m, telemetry));
        }
        let _span = telemetry.span("matcher");
        let mut proposals = 0u64;
        let mut trade_ups = 0u64;
        let mut pops = 0u64;
        let (n, t) = (m.sources(), m.targets());
        if n == 0 || t == 0 {
            return AnytimeOutcome::exact(Matching::from_pairs(Vec::new()));
        }
        // Identical preference construction to the exact path (same
        // comparator, same parallel split), so an unfired budget yields
        // the identical proposal schedule.
        let build_prefs = |i: usize| {
            let row = m.row(i);
            let mut idx: Vec<u32> = (0..t as u32).collect();
            idx.sort_by(|&a, &b| {
                row[b as usize]
                    .partial_cmp(&row[a as usize])
                    .expect("similarity scores must not be NaN")
                    .then(a.cmp(&b))
            });
            idx
        };
        // An already-fired budget skips the `O(n·m·log m)` build outright;
        // otherwise build and re-poll: if cancel/deadline fired *during*
        // the parallel build, skipped chunks hold empty rows and the lists
        // are unusable, so degrade everything to the greedy fallback.
        // (Cancellation is sticky and deadlines are monotonic, so a clean
        // post-build poll proves the probe never fired mid-build.)
        let mut stop = budget.interrupt_reason();
        let prefs: Vec<Vec<u32>> = if stop.is_some() {
            Vec::new()
        } else if n >= 64 {
            ceaff_parallel::par_map(n, 16, build_prefs)
        } else {
            (0..n).map(build_prefs).collect()
        };
        if stop.is_none() {
            stop = budget.interrupt_reason();
        }
        let mut holder: Vec<Option<usize>> = vec![None; t];
        if stop.is_none() {
            let mut next_proposal = vec![0usize; n];
            let mut queue: VecDeque<usize> = (0..n).collect();
            'outer: while let Some(u) = queue.pop_front() {
                if let Some(reason) = budget.consume_step() {
                    stop = Some(reason);
                    break;
                }
                pops += 1;
                if pops.is_multiple_of(256) {
                    telemetry.progress("matcher", pops.min(n as u64), n as u64);
                }
                let mut u = u;
                loop {
                    if proposals.is_multiple_of(64) {
                        if let Some(reason) = budget.interrupt_reason() {
                            stop = Some(reason);
                            break 'outer;
                        }
                    }
                    let cursor = next_proposal[u];
                    if cursor >= t {
                        break;
                    }
                    next_proposal[u] += 1;
                    proposals += 1;
                    let v = prefs[u][cursor] as usize;
                    match holder[v] {
                        None => {
                            holder[v] = Some(u);
                            break;
                        }
                        Some(cur) => {
                            if m.get(u, v) > m.get(cur, v) {
                                holder[v] = Some(u);
                                trade_ups += 1;
                                u = cur;
                            }
                        }
                    }
                }
            }
        }

        let mut pairs: Vec<(usize, usize)> = holder
            .iter()
            .enumerate()
            .filter_map(|(v, h)| h.map(|u| (u, v)))
            .collect();
        pairs.sort_unstable();
        telemetry.counter_add("matcher", "iterations", proposals);
        telemetry.counter_add("matcher", "proposals", proposals);
        telemetry.counter_add("matcher", "trade_ups", trade_ups);
        telemetry.progress("matcher", n as u64, n as u64);
        let Some(reason) = stop else {
            return AnytimeOutcome::exact(Matching::from_pairs(pairs));
        };
        let mut src_taken = vec![false; n];
        let mut tgt_taken = vec![false; t];
        for &(i, j) in &pairs {
            src_taken[i] = true;
            tgt_taken[j] = true;
        }
        let degraded_rows: Vec<usize> = (0..n).filter(|&i| !src_taken[i]).collect();
        greedy_complete(m, &mut src_taken, &mut tgt_taken, &mut pairs);
        pairs.sort_unstable();
        let degradation = budget.record_degradation(
            telemetry,
            "matcher",
            reason,
            pops,
            degraded_rows.len() as f64 / n as f64,
        );
        AnytimeOutcome {
            matching: Matching::from_pairs(pairs),
            degradation: Some(degradation),
            degraded_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_tensor::Matrix;
    use proptest::prelude::*;

    fn figure1() -> SimilarityMatrix {
        SimilarityMatrix::new(Matrix::from_rows(&[
            &[0.9, 0.6, 0.1],
            &[0.7, 0.5, 0.2],
            &[0.2, 0.4, 0.2],
        ]))
    }

    /// The paper's Figure 4 walk-through: DAA on the Figure 1 matrix
    /// recovers all three correct matches.
    ///
    /// Round 1: u1, u2 propose to v1; v1 keeps u1 (0.9 > 0.7). u3 proposes
    /// to v2 and is held. Round 2: u2 proposes to v2; v2 trades up
    /// (0.5 > 0.4) and dumps u3. Round 3: u3 proposes to v3.
    #[test]
    fn figure4_walkthrough() {
        let matching = StableMarriage.matching(&figure1());
        assert_eq!(matching.pairs(), &[(0, 0), (1, 1), (2, 2)]);
        assert!((crate::eval::accuracy(&matching, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn result_is_stable_and_perfect_on_square_inputs() {
        let m = figure1();
        let matching = StableMarriage.matching(&m);
        assert_eq!(matching.len(), 3);
        assert!(matching.is_one_to_one());
        assert_eq!(matching.find_blocking_pair(&m), None);
    }

    #[test]
    fn more_sources_than_targets_leaves_some_unmatched() {
        let m = SimilarityMatrix::new(Matrix::from_rows(&[&[0.9], &[0.5], &[0.7]]));
        let matching = StableMarriage.matching(&m);
        assert_eq!(matching.pairs(), &[(0, 0)]);
    }

    #[test]
    fn more_targets_than_sources_matches_all_sources() {
        let m = SimilarityMatrix::new(Matrix::from_rows(&[&[0.1, 0.9, 0.2]]));
        let matching = StableMarriage.matching(&m);
        assert_eq!(matching.pairs(), &[(0, 1)]);
    }

    #[test]
    fn empty_matrix() {
        assert!(StableMarriage
            .matching(&SimilarityMatrix::zeros(0, 5))
            .is_empty());
        assert!(StableMarriage
            .matching(&SimilarityMatrix::zeros(5, 0))
            .is_empty());
    }

    proptest! {
        /// On random square matrices the outcome is a perfect one-to-one
        /// matching with no blocking pair (the defining SMP properties).
        #[test]
        fn stable_matching_properties(vals in proptest::collection::vec(0.0f32..1.0, 25)) {
            let m = SimilarityMatrix::new(Matrix::from_vec(5, 5, vals));
            let matching = StableMarriage.matching(&m);
            prop_assert_eq!(matching.len(), 5);
            prop_assert!(matching.is_one_to_one());
            prop_assert!(matching.find_blocking_pair(&m).is_none());
        }

        /// Source-proposing DAA weakly dominates every other stable
        /// matching for sources; in particular each source does at least as
        /// well as under target-pessimal stability. We check the weaker,
        /// cheap invariant that no source is matched to a target it ranks
        /// below an unmatched... (non-square handled above); here: every
        /// unmatched target is less preferred by every source than that
        /// source's own match only if stability holds, which
        /// find_blocking_pair already verifies on rectangular inputs too.
        #[test]
        fn rectangular_no_blocking_pairs(vals in proptest::collection::vec(0.0f32..1.0, 12)) {
            let m = SimilarityMatrix::new(Matrix::from_vec(3, 4, vals));
            let matching = StableMarriage.matching(&m);
            prop_assert_eq!(matching.len(), 3);
            prop_assert!(matching.find_blocking_pair(&m).is_none());
        }
    }
}
