//! Collective EA decision making (paper §VI).
//!
//! Given the fused similarity matrix, three decision strategies are
//! implemented behind the [`Matcher`] trait:
//!
//! * [`Greedy`] — the independent per-source argmax used by prior
//!   embedding-based EA work (and by "CEAFF w/o C" in the ablation);
//! * [`StableMarriage`] — the paper's proposal: EA as the stable matching
//!   problem, solved by the deferred acceptance algorithm;
//! * [`Hungarian`] — maximum-weight bipartite matching, the alternative
//!   formulation discussed (and argued against on efficiency grounds) in
//!   §VI.

mod greedy;
mod greedy_one_to_one;
mod hungarian;
mod stable_marriage;

pub use greedy::Greedy;
pub use greedy_one_to_one::GreedyOneToOne;
pub use hungarian::Hungarian;
pub use stable_marriage::StableMarriage;

use crate::budget::ExecBudget;
use ceaff_sim::{SimScores, SimStore, SimilarityMatrix, SparseTopK};
use ceaff_telemetry::{Degradation, Telemetry};
use serde::{Deserialize, Serialize};

/// The outcome of a matcher: `(source index, target index)` pairs in the
/// similarity matrix's index space. Greedy matchings may repeat targets;
/// collective matchings are one-to-one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matching {
    pairs: Vec<(usize, usize)>,
}

impl Matching {
    /// Wrap raw pairs.
    pub fn from_pairs(pairs: Vec<(usize, usize)>) -> Self {
        Self { pairs }
    }

    /// The matched pairs.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pair was matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The target matched to source `i`, if any.
    pub fn target_of(&self, i: usize) -> Option<usize> {
        self.pairs.iter().find(|&&(s, _)| s == i).map(|&(_, t)| t)
    }

    /// Whether the matching is one-to-one on both sides.
    pub fn is_one_to_one(&self) -> bool {
        let mut src: Vec<usize> = self.pairs.iter().map(|&(s, _)| s).collect();
        let mut tgt: Vec<usize> = self.pairs.iter().map(|&(_, t)| t).collect();
        src.sort_unstable();
        tgt.sort_unstable();
        src.windows(2).all(|w| w[0] != w[1]) && tgt.windows(2).all(|w| w[0] != w[1])
    }

    /// Sum of similarity scores over the matched pairs. Accepts any
    /// similarity backend (dense matrix, sparse store, [`SimStore`]).
    pub fn total_weight<S: SimScores + ?Sized>(&self, m: &S) -> f64 {
        self.pairs.iter().map(|&(i, j)| m.get(i, j) as f64).sum()
    }

    /// Whether `(u, v)` is a *blocking pair*: both prefer each other over
    /// their current partners (unmatched counts as least preferred). The
    /// paper's stability criterion — a stable matching has none.
    pub fn is_blocking_pair<S: SimScores + ?Sized>(&self, m: &S, u: usize, v: usize) -> bool {
        if self.pairs.contains(&(u, v)) {
            return false;
        }
        let u_current = self.target_of(u).map(|t| m.get(u, t));
        let v_current = self
            .pairs
            .iter()
            .find(|&&(_, t)| t == v)
            .map(|&(s, _)| m.get(s, v));
        let u_prefers = u_current.is_none_or(|c| m.get(u, v) > c);
        let v_prefers = v_current.is_none_or(|c| m.get(u, v) > c);
        u_prefers && v_prefers
    }

    /// Keep only pairs whose similarity clears `min_similarity` — the
    /// "no-match" decision real deployments need: benchmark test sets are
    /// 1-to-1 by construction, but production KGs contain entities with no
    /// counterpart, and matching them anyway trades precision for recall.
    /// Evaluate the filtered matching with
    /// [`crate::eval::precision_recall`].
    pub fn filter_by_threshold<S: SimScores + ?Sized>(
        &self,
        m: &S,
        min_similarity: f32,
    ) -> Matching {
        Matching::from_pairs(
            self.pairs
                .iter()
                .copied()
                .filter(|&(i, j)| m.get(i, j) >= min_similarity)
                .collect(),
        )
    }

    /// Exhaustively search for any blocking pair (test/diagnostic helper;
    /// O(n·m)).
    pub fn find_blocking_pair<S: SimScores + ?Sized>(&self, m: &S) -> Option<(usize, usize)> {
        for u in 0..m.sources() {
            for v in 0..m.targets() {
                if self.is_blocking_pair(m, u, v) {
                    return Some((u, v));
                }
            }
        }
        None
    }
}

/// What a budget-aware matcher run produced: always a valid (one-to-one
/// for collective strategies) matching, plus a degradation record when
/// the execution budget cut the exact algorithm short.
#[derive(Debug, Clone)]
pub struct AnytimeOutcome {
    /// The matching — exact when `degradation` is `None`, otherwise the
    /// exact partial assignment completed greedily.
    pub matching: Matching,
    /// Present iff the budget stopped the exact algorithm early.
    pub degradation: Option<Degradation>,
    /// Source rows (similarity-matrix index space) the exact algorithm
    /// had *not* settled when it was stopped — their assignments (if
    /// any) come from the greedy completion. Empty for an exact run.
    pub degraded_rows: Vec<usize>,
}

impl AnytimeOutcome {
    /// Wrap a fully exact matching.
    pub fn exact(matching: Matching) -> Self {
        AnytimeOutcome {
            matching,
            degradation: None,
            degraded_rows: Vec::new(),
        }
    }

    /// Whether the exact algorithm ran to completion.
    pub fn is_exact(&self) -> bool {
        self.degradation.is_none()
    }
}

/// Complete a partial assignment the way [`GreedyOneToOne`] would:
/// visit the still-free cells in descending similarity (ties broken by
/// row then column index) and match a pair whenever both sides are
/// free. Mutates the taken-masks and appends to `pairs`; returns the
/// rows that received a greedy assignment, ascending.
pub(crate) fn greedy_complete(
    m: &SimilarityMatrix,
    src_taken: &mut [bool],
    tgt_taken: &mut [bool],
    pairs: &mut Vec<(usize, usize)>,
) -> Vec<usize> {
    let free_rows: Vec<usize> = (0..m.sources()).filter(|&i| !src_taken[i]).collect();
    let free_targets = (0..m.targets()).filter(|&j| !tgt_taken[j]).count();
    if free_rows.is_empty() || free_targets == 0 {
        return Vec::new();
    }
    let mut cells: Vec<(f32, u32, u32)> = Vec::with_capacity(free_rows.len() * free_targets);
    for &i in &free_rows {
        for (j, &v) in m.row(i).iter().enumerate() {
            if !tgt_taken[j] {
                cells.push((v, i as u32, j as u32));
            }
        }
    }
    cells.sort_unstable_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("similarity scores must not be NaN")
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    let mut completed = Vec::new();
    for (_, i, j) in cells {
        let (i, j) = (i as usize, j as usize);
        if src_taken[i] || tgt_taken[j] {
            continue;
        }
        src_taken[i] = true;
        tgt_taken[j] = true;
        pairs.push((i, j));
        completed.push(i);
    }
    completed.sort_unstable();
    completed
}

/// Sparse analogue of [`greedy_complete`]: visit the still-free *stored*
/// cells in descending similarity (ties broken by row then column index)
/// and match a pair whenever both sides are free. On a complete store
/// (`k ≥ targets`) the cell set equals the dense cross product, so the
/// completion is bitwise-identical to the dense helper. Rows whose every
/// candidate is taken stay unmatched — a non-candidate is never assigned.
pub(crate) fn greedy_complete_sparse(
    s: &SparseTopK,
    src_taken: &mut [bool],
    tgt_taken: &mut [bool],
    pairs: &mut Vec<(usize, usize)>,
) -> Vec<usize> {
    let mut cells: Vec<(f32, u32, u32)> = Vec::new();
    for (i, &taken) in src_taken.iter().enumerate().take(s.sources()) {
        if taken {
            continue;
        }
        let (cols, scores) = s.row_entries(i);
        for (&j, &v) in cols.iter().zip(scores) {
            if !tgt_taken[j as usize] {
                cells.push((v, i as u32, j));
            }
        }
    }
    cells.sort_unstable_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("similarity scores must not be NaN")
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    let mut completed = Vec::new();
    for (_, i, j) in cells {
        let (i, j) = (i as usize, j as usize);
        if src_taken[i] || tgt_taken[j] {
            continue;
        }
        src_taken[i] = true;
        tgt_taken[j] = true;
        pairs.push((i, j));
        completed.push(i);
    }
    completed.sort_unstable();
    completed
}

/// A strategy turning a similarity matrix into an alignment decision.
///
/// The `matching*` methods consume the dense [`SimilarityMatrix`]
/// directly; the `matching_store*` methods accept either [`SimStore`]
/// backend. Dense stores dispatch to the dense methods bit for bit. The
/// built-in matchers override the sparse path to read candidate
/// preference lists straight from the store (stable marriage, the
/// greedy strategies) or to densify only the candidate submatrix
/// (Hungarian); the default sparse fallback densifies the whole store
/// and is intended for external [`Matcher`] impls only.
pub trait Matcher {
    /// Human-readable strategy name.
    fn name(&self) -> &'static str;

    /// Compute the matching.
    fn matching(&self, m: &SimilarityMatrix) -> Matching;

    /// Compute the matching from either store backend.
    fn matching_store(&self, s: &SimStore) -> Matching {
        match s {
            SimStore::Dense(m) => self.matching(m),
            SimStore::Sparse(sp) => self.matching(&sp.to_dense()),
        }
    }

    /// [`Matcher::matching_store`] with telemetry (see
    /// [`Matcher::matching_traced`] for the counters contract).
    fn matching_store_traced(&self, s: &SimStore, telemetry: &Telemetry) -> Matching {
        match s {
            SimStore::Dense(m) => self.matching_traced(m, telemetry),
            SimStore::Sparse(sp) => self.matching_traced(&sp.to_dense(), telemetry),
        }
    }

    /// [`Matcher::matching_budgeted`] over either store backend.
    fn matching_store_budgeted(
        &self,
        s: &SimStore,
        budget: &ExecBudget,
        telemetry: &Telemetry,
    ) -> AnytimeOutcome {
        match s {
            SimStore::Dense(m) => self.matching_budgeted(m, budget, telemetry),
            SimStore::Sparse(sp) => self.matching_budgeted(&sp.to_dense(), budget, telemetry),
        }
    }

    /// [`Matcher::matching`] with telemetry: the decision is timed under
    /// the `"matcher"` stage and implementations add algorithm-specific
    /// counters — every built-in matcher emits an `iterations` total, plus
    /// `proposals`/`trade_ups` (deferred acceptance) or `conflicts`
    /// (greedy strategies). The default implementation only times.
    fn matching_traced(&self, m: &SimilarityMatrix, telemetry: &Telemetry) -> Matching {
        let _span = telemetry.span("matcher");
        self.matching(m)
    }

    /// *Anytime* variant: run under `budget`, checkpointing the partial
    /// assignment at each algorithm round. When the budget stops the run
    /// (deadline, cancellation, step limit), unsettled rows are completed
    /// by the [`GreedyOneToOne`] rule against the still-free targets and
    /// the outcome carries a [`Degradation`] record. An unlimited budget
    /// takes the exact [`Matcher::matching_traced`] path bit for bit; a
    /// constrained budget that never fires produces the identical
    /// matching with no degradation. The default implementation (greedy
    /// strategies, whose single pass is itself the granule) always
    /// returns the exact matching.
    fn matching_budgeted(
        &self,
        m: &SimilarityMatrix,
        budget: &ExecBudget,
        telemetry: &Telemetry,
    ) -> AnytimeOutcome {
        let _ = budget;
        AnytimeOutcome::exact(self.matching_traced(m, telemetry))
    }
}

/// Which matcher a pipeline should use (config-friendly enum mirror).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatcherKind {
    /// Independent per-source argmax.
    Greedy,
    /// Deferred acceptance (the paper's choice).
    StableMarriage,
    /// Maximum-weight bipartite matching.
    Hungarian,
    /// Descending-score greedy one-to-one assignment (an additional
    /// collective strategy in the spirit of the paper's future work).
    GreedyOneToOne,
}

impl MatcherKind {
    /// Instantiate the matcher.
    pub fn build(self) -> Box<dyn Matcher> {
        match self {
            MatcherKind::Greedy => Box::new(Greedy),
            MatcherKind::StableMarriage => Box::new(StableMarriage),
            MatcherKind::Hungarian => Box::new(Hungarian),
            MatcherKind::GreedyOneToOne => Box::new(GreedyOneToOne),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_tensor::Matrix;

    #[test]
    fn matching_accessors() {
        let m = Matching::from_pairs(vec![(0, 1), (1, 0)]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.target_of(0), Some(1));
        assert_eq!(m.target_of(5), None);
        assert!(m.is_one_to_one());
        let dup = Matching::from_pairs(vec![(0, 1), (1, 1)]);
        assert!(!dup.is_one_to_one());
    }

    #[test]
    fn blocking_pair_detection() {
        // Matrix where (0,0) is clearly best for both but they are matched
        // elsewhere.
        let sim = SimilarityMatrix::new(Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.3]]));
        let bad = Matching::from_pairs(vec![(0, 1), (1, 0)]);
        assert!(bad.is_blocking_pair(&sim, 0, 0));
        assert_eq!(bad.find_blocking_pair(&sim), Some((0, 0)));
        let good = Matching::from_pairs(vec![(0, 0), (1, 1)]);
        assert_eq!(good.find_blocking_pair(&sim), None);
    }

    #[test]
    fn total_weight_sums_scores() {
        let sim = SimilarityMatrix::new(Matrix::from_rows(&[&[0.5, 0.0], &[0.0, 0.25]]));
        let m = Matching::from_pairs(vec![(0, 0), (1, 1)]);
        assert!((m.total_weight(&sim) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn threshold_filter_drops_weak_pairs() {
        let sim = SimilarityMatrix::new(Matrix::from_rows(&[&[0.9, 0.0], &[0.0, 0.2]]));
        let m = Matching::from_pairs(vec![(0, 0), (1, 1)]);
        let kept = m.filter_by_threshold(&sim, 0.5);
        assert_eq!(kept.pairs(), &[(0, 0)]);
        // Zero threshold keeps everything.
        assert_eq!(m.filter_by_threshold(&sim, 0.0).len(), 2);
    }

    #[test]
    fn kind_builds_named_matchers() {
        assert_eq!(MatcherKind::Greedy.build().name(), "greedy");
        assert_eq!(
            MatcherKind::StableMarriage.build().name(),
            "stable-marriage"
        );
        assert_eq!(MatcherKind::Hungarian.build().name(), "hungarian");
        assert_eq!(
            MatcherKind::GreedyOneToOne.build().name(),
            "greedy-one-to-one"
        );
    }
}
