//! Greedy one-to-one matching — an additional collective strategy in the
//! direction of the paper's future work ("explore other collective
//! matching methods", §VIII).
//!
//! All cells are visited in descending similarity; a pair is matched when
//! both sides are still free. This is the matching analogue of BootEA's
//! bootstrapping constraint: cheaper than deferred acceptance to reason
//! about, not stable in the SMP sense (a later-visited source may prefer
//! an earlier-taken target), but one-to-one and strong in practice when
//! scores are well calibrated.

use super::{Matcher, Matching};
use ceaff_sim::{SimStore, SimilarityMatrix, SparseTopK};
use ceaff_telemetry::Telemetry;

/// Descending-score greedy one-to-one assignment.
///
/// Complexity `O(n·m·log(n·m))` for the global sort.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyOneToOne;

impl GreedyOneToOne {
    /// Run the assignment, returning the matching plus the number of cells
    /// visited and of cells skipped because a side was already taken.
    fn solve(&self, m: &SimilarityMatrix) -> (Matching, u64, u64) {
        let mut visited = 0u64;
        let mut skipped = 0u64;
        let (n, t) = (m.sources(), m.targets());
        if n == 0 || t == 0 {
            return (Matching::from_pairs(Vec::new()), visited, skipped);
        }
        let mut cells: Vec<(f32, u32, u32)> = Vec::with_capacity(n * t);
        for i in 0..n {
            for (j, &v) in m.row(i).iter().enumerate() {
                cells.push((v, i as u32, j as u32));
            }
        }
        cells.sort_unstable_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("similarity scores must not be NaN")
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        let mut src_taken = vec![false; n];
        let mut tgt_taken = vec![false; t];
        let mut pairs = Vec::with_capacity(n.min(t));
        for (_, i, j) in cells {
            visited += 1;
            let (i, j) = (i as usize, j as usize);
            if src_taken[i] || tgt_taken[j] {
                skipped += 1;
                continue;
            }
            src_taken[i] = true;
            tgt_taken[j] = true;
            pairs.push((i, j));
            if pairs.len() == n.min(t) {
                break;
            }
        }
        pairs.sort_unstable();
        (Matching::from_pairs(pairs), visited, skipped)
    }

    /// Sparse variant: only the stored candidate cells enter the global
    /// sort — same comparator `(score desc, row asc, col asc)`, so on a
    /// complete store (`k ≥ targets`) the visit order, and hence the
    /// matching, is identical to the dense path.
    fn solve_sparse(&self, s: &SparseTopK) -> (Matching, u64, u64) {
        let mut visited = 0u64;
        let mut skipped = 0u64;
        let (n, t) = (s.sources(), s.targets());
        if n == 0 || t == 0 || s.nnz() == 0 {
            return (Matching::from_pairs(Vec::new()), visited, skipped);
        }
        let mut cells: Vec<(f32, u32, u32)> = Vec::with_capacity(s.nnz());
        for i in 0..n {
            let (cols, scores) = s.row_entries(i);
            for (&j, &v) in cols.iter().zip(scores) {
                cells.push((v, i as u32, j));
            }
        }
        cells.sort_unstable_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("similarity scores must not be NaN")
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        let mut src_taken = vec![false; n];
        let mut tgt_taken = vec![false; t];
        let mut pairs = Vec::with_capacity(n.min(t));
        for (_, i, j) in cells {
            visited += 1;
            let (i, j) = (i as usize, j as usize);
            if src_taken[i] || tgt_taken[j] {
                skipped += 1;
                continue;
            }
            src_taken[i] = true;
            tgt_taken[j] = true;
            pairs.push((i, j));
            if pairs.len() == n.min(t) {
                break;
            }
        }
        pairs.sort_unstable();
        (Matching::from_pairs(pairs), visited, skipped)
    }
}

impl Matcher for GreedyOneToOne {
    fn name(&self) -> &'static str {
        "greedy-one-to-one"
    }

    fn matching(&self, m: &SimilarityMatrix) -> Matching {
        self.solve(m).0
    }

    fn matching_traced(&self, m: &SimilarityMatrix, telemetry: &Telemetry) -> Matching {
        let _span = telemetry.span("matcher");
        let (matching, visited, skipped) = self.solve(m);
        telemetry.counter_add("matcher", "iterations", visited);
        telemetry.counter_add("matcher", "conflicts", skipped);
        matching
    }

    fn matching_store(&self, s: &SimStore) -> Matching {
        match s {
            SimStore::Dense(m) => self.matching(m),
            SimStore::Sparse(sp) => self.solve_sparse(sp).0,
        }
    }

    fn matching_store_traced(&self, s: &SimStore, telemetry: &Telemetry) -> Matching {
        match s {
            SimStore::Dense(m) => self.matching_traced(m, telemetry),
            SimStore::Sparse(sp) => {
                let _span = telemetry.span("matcher");
                let (matching, visited, skipped) = self.solve_sparse(sp);
                telemetry.counter_add("matcher", "iterations", visited);
                telemetry.counter_add("matcher", "conflicts", skipped);
                matching
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_tensor::Matrix;
    use proptest::prelude::*;

    #[test]
    fn solves_figure1() {
        let m = SimilarityMatrix::new(Matrix::from_rows(&[
            &[0.9, 0.6, 0.1],
            &[0.7, 0.5, 0.2],
            &[0.2, 0.4, 0.2],
        ]));
        let matching = GreedyOneToOne.matching(&m);
        assert_eq!(matching.pairs(), &[(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn takes_global_best_first() {
        // (1,0)=0.95 is globally best, so source 0 must settle for col 1
        // even though it slightly prefers col 0.
        let m = SimilarityMatrix::new(Matrix::from_rows(&[&[0.9, 0.8], &[0.95, 0.1]]));
        let matching = GreedyOneToOne.matching(&m);
        assert_eq!(matching.pairs(), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn rectangular_matches_min_side() {
        let m = SimilarityMatrix::new(Matrix::from_rows(&[&[0.9, 0.1, 0.5]]));
        assert_eq!(GreedyOneToOne.matching(&m).pairs(), &[(0, 0)]);
        let m = SimilarityMatrix::new(Matrix::from_rows(&[&[0.9], &[0.5]]));
        assert_eq!(GreedyOneToOne.matching(&m).pairs(), &[(0, 0)]);
    }

    #[test]
    fn empty() {
        assert!(GreedyOneToOne
            .matching(&SimilarityMatrix::zeros(0, 0))
            .is_empty());
    }

    proptest! {
        /// Always a perfect one-to-one matching on square inputs, with
        /// total weight between stable matching's and Hungarian's bounds
        /// not guaranteed — but one-to-one-ness and perfection are.
        #[test]
        fn perfect_and_one_to_one(vals in proptest::collection::vec(0.0f32..1.0, 25)) {
            let m = SimilarityMatrix::new(Matrix::from_vec(5, 5, vals));
            let matching = GreedyOneToOne.matching(&m);
            prop_assert_eq!(matching.len(), 5);
            prop_assert!(matching.is_one_to_one());
        }

        /// The first (highest) cell of the matrix is always matched.
        #[test]
        fn global_max_is_matched(vals in proptest::collection::vec(0.0f32..1.0, 16)) {
            let m = SimilarityMatrix::new(Matrix::from_vec(4, 4, vals));
            // Find global max cell.
            let mut best = (0usize, 0usize);
            for i in 0..4 {
                for j in 0..4 {
                    if m.get(i, j) > m.get(best.0, best.1) {
                        best = (i, j);
                    }
                }
            }
            let matching = GreedyOneToOne.matching(&m);
            prop_assert!(matching.pairs().contains(&best));
        }
    }
}
