//! Independent per-source argmax — how prior embedding-based EA methods
//! decide alignments, and the paper's "w/o C" ablation.

use super::{Matcher, Matching};
use ceaff_sim::{SimStore, SimilarityMatrix};
use ceaff_telemetry::Telemetry;

/// For every source row, pick the most similar target, independently of all
/// other decisions. Multiple sources may claim the same target — exactly
/// the failure mode of Figure 1 in the paper.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

impl Matcher for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn matching(&self, m: &SimilarityMatrix) -> Matching {
        if m.targets() == 0 {
            return Matching::from_pairs(Vec::new());
        }
        // `row_argmaxes` fans the independent per-row decisions out across
        // the pool on large matrices.
        let pairs = m.row_argmaxes().into_iter().enumerate().collect();
        Matching::from_pairs(pairs)
    }

    fn matching_traced(&self, m: &SimilarityMatrix, telemetry: &Telemetry) -> Matching {
        let _span = telemetry.span("matcher");
        let matching = self.matching(m);
        // Conflicts: sources whose independent argmax collided with an
        // earlier source's choice — Figure 1's failure mode, quantified.
        let mut taken = vec![false; m.targets()];
        let mut conflicts = 0u64;
        for &(_, j) in matching.pairs() {
            if taken[j] {
                conflicts += 1;
            }
            taken[j] = true;
        }
        telemetry.counter_add("matcher", "iterations", matching.len() as u64);
        telemetry.counter_add("matcher", "conflicts", conflicts);
        matching
    }

    fn matching_store(&self, s: &SimStore) -> Matching {
        match s {
            SimStore::Dense(m) => self.matching(m),
            SimStore::Sparse(sp) => {
                if sp.targets() == 0 {
                    return Matching::from_pairs(Vec::new());
                }
                // Rows are stored (score desc, col asc), so the first entry
                // *is* the dense argmax (lowest column on ties). Rows with
                // no surviving candidates stay unmatched.
                let pairs = (0..sp.sources())
                    .filter_map(|i| sp.row_argmax(i).map(|j| (i, j)))
                    .collect();
                Matching::from_pairs(pairs)
            }
        }
    }

    fn matching_store_traced(&self, s: &SimStore, telemetry: &Telemetry) -> Matching {
        match s {
            SimStore::Dense(m) => self.matching_traced(m, telemetry),
            SimStore::Sparse(_) => {
                let _span = telemetry.span("matcher");
                let matching = self.matching_store(s);
                let mut taken = vec![false; s.targets()];
                let mut conflicts = 0u64;
                for &(_, j) in matching.pairs() {
                    if taken[j] {
                        conflicts += 1;
                    }
                    taken[j] = true;
                }
                telemetry.counter_add("matcher", "iterations", matching.len() as u64);
                telemetry.counter_add("matcher", "conflicts", conflicts);
                matching
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_tensor::Matrix;

    /// The paper's Figure 1: independent decisions produce two mismatches.
    #[test]
    fn figure1_greedy_collides() {
        let m = SimilarityMatrix::new(Matrix::from_rows(&[
            &[0.9, 0.6, 0.1],
            &[0.7, 0.5, 0.2],
            &[0.2, 0.4, 0.2],
        ]));
        let matching = Greedy.matching(&m);
        // u1->v1 (correct), u2->v1 (wrong), u3->v2 (wrong).
        assert_eq!(matching.pairs(), &[(0, 0), (1, 0), (2, 1)]);
        assert!(!matching.is_one_to_one());
        assert!((crate::eval::accuracy(&matching, 3) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_yields_empty_matching() {
        let m = SimilarityMatrix::zeros(0, 0);
        assert!(Greedy.matching(&m).is_empty());
    }

    #[test]
    fn single_row() {
        let m = SimilarityMatrix::new(Matrix::from_rows(&[&[0.1, 0.9, 0.3]]));
        assert_eq!(Greedy.matching(&m).pairs(), &[(0, 1)]);
    }
}
