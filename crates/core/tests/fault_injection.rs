//! Fault-injection coverage of the recovery paths: corrupted and
//! truncated checkpoints surface as typed errors with nothing partially
//! loaded; forced non-finite losses trigger rollback + learning-rate
//! halving (visible as `numeric_recovery` telemetry); unrecoverable
//! divergence becomes [`CeaffError::NumericDivergence`]; injected I/O
//! errors fail checkpoint writes cleanly.

use ceaff_core::checkpoint::{CheckpointPolicy, STAGE_STRING, STAGE_STRUCTURAL, TRAIN_FILE};
use ceaff_core::gcn::{self, GcnConfig, MAX_NUMERIC_RETRIES};
use ceaff_core::pipeline::{resume_from, try_run_checkpointed, CeaffConfig, EaInput};
use ceaff_core::{CeaffError, InMemorySink, Telemetry};
use ceaff_datagen::{GenConfig, GeneratedDataset, NameChannel};
use ceaff_faultinject::FaultPlan;
use std::path::PathBuf;
use std::sync::Arc;

fn dataset() -> GeneratedDataset {
    ceaff_datagen::generate(&GenConfig {
        aligned_entities: 100,
        extra_frac: 0.0,
        avg_degree: 6.0,
        overlap: 0.85,
        channel: NameChannel::Identical { typo_rate: 0.02 },
        vocab_size: 300,
        ..GenConfig::default()
    })
}

fn cfg() -> CeaffConfig {
    CeaffConfig {
        gcn: GcnConfig {
            dim: 16,
            epochs: 25,
            ..GcnConfig::default()
        },
        embed_dim: 16,
        ..CeaffConfig::default()
    }
}

fn run_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ceaff-fi-core-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Run to completion, corrupt one stage artifact, and verify the resume
/// fails with a checksum error instead of loading garbage.
#[test]
fn corrupted_stage_checkpoint_is_a_checksum_error() {
    let _quiet = FaultPlan::default().activate();
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let dir = run_dir("corrupt");
    let input = EaInput::new(&ds.pair, &src, &tgt);
    try_run_checkpointed(&input, &cfg(), &dir, CheckpointPolicy::PerStage).expect("first run");

    ceaff_faultinject::flip_byte(dir.join(STAGE_STRUCTURAL), 100).unwrap();
    let input = EaInput::new(&ds.pair, &src, &tgt);
    match resume_from(&dir, &input) {
        Err(CeaffError::Checkpoint { file, reason }) => {
            assert_eq!(file, STAGE_STRUCTURAL);
            assert!(reason.contains("crc32"), "{reason}");
        }
        other => panic!("expected a checksum error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_stage_checkpoint_is_a_typed_error() {
    let _quiet = FaultPlan::default().activate();
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let dir = run_dir("truncate");
    let input = EaInput::new(&ds.pair, &src, &tgt);
    try_run_checkpointed(&input, &cfg(), &dir, CheckpointPolicy::PerStage).expect("first run");

    ceaff_faultinject::truncate_file(dir.join(STAGE_STRING), 16).unwrap();
    let input = EaInput::new(&ds.pair, &src, &tgt);
    match resume_from(&dir, &input) {
        Err(CeaffError::Checkpoint { file, reason }) => {
            assert_eq!(file, STAGE_STRING);
            assert!(reason.contains("truncated"), "{reason}");
        }
        other => panic!("expected a truncation error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_train_checkpoint_fails_before_anything_loads() {
    // Crash mid-training to leave a train-state artifact behind, then
    // truncate it: the resume must fail with a typed error (the manifest
    // still lists the full length), not resume from partial state.
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let dir = run_dir("train-trunc");
    let crashed = {
        let _scope = FaultPlan {
            fail_train_at_epoch: Some(12),
            ..FaultPlan::default()
        }
        .activate();
        let input = EaInput::new(&ds.pair, &src, &tgt);
        try_run_checkpointed(&input, &cfg(), &dir, CheckpointPolicy::EveryNEpochs(5))
    };
    assert!(crashed.is_err());
    assert!(
        dir.join(TRAIN_FILE).exists(),
        "training checkpoint expected"
    );

    ceaff_faultinject::truncate_file(dir.join(TRAIN_FILE), 32).unwrap();
    let _quiet = FaultPlan::default().activate();
    let input = EaInput::new(&ds.pair, &src, &tgt);
    match resume_from(&dir, &input) {
        Err(CeaffError::Checkpoint { file, reason }) => {
            assert_eq!(file, TRAIN_FILE);
            assert!(reason.contains("truncated"), "{reason}");
        }
        other => panic!("expected a truncation error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn forced_nan_triggers_rollback_lr_halving_and_telemetry() {
    let ds = dataset();
    let gcn_cfg = GcnConfig {
        dim: 16,
        epochs: 25,
        ..GcnConfig::default()
    };
    let sink = Arc::new(InMemorySink::default());
    let telemetry = Telemetry::with_sink(sink);

    let _scope = FaultPlan {
        nan_loss_at_epoch: Some(13),
        ..FaultPlan::default()
    }
    .activate();
    let enc = gcn::try_train_traced(&ds.pair, &gcn_cfg, &telemetry, None)
        .expect("one NaN epoch must be recoverable");
    // Training completed with a full healthy loss curve.
    assert_eq!(enc.loss_curve.len(), gcn_cfg.epochs);
    assert!(enc.loss_curve.iter().all(|l| l.is_finite()));
    let trace = telemetry.take_trace();
    assert_eq!(
        trace.counter("gcn", "numeric_recovery"),
        Some(1),
        "exactly one recovery event"
    );
}

#[test]
fn persistent_nan_exhausts_retries_into_numeric_divergence() {
    let ds = dataset();
    let gcn_cfg = GcnConfig {
        dim: 16,
        epochs: 25,
        ..GcnConfig::default()
    };
    let sink = Arc::new(InMemorySink::default());
    let telemetry = Telemetry::with_sink(sink);

    let _scope = FaultPlan {
        nan_loss_always: true,
        ..FaultPlan::default()
    }
    .activate();
    match gcn::try_train_traced(&ds.pair, &gcn_cfg, &telemetry, None) {
        Err(CeaffError::NumericDivergence {
            stage,
            epoch,
            retries,
        }) => {
            assert_eq!(stage, "gcn");
            assert_eq!(epoch, 0, "permanent NaN pins the loop to epoch 0");
            assert_eq!(retries, MAX_NUMERIC_RETRIES);
        }
        other => panic!("expected NumericDivergence, got {other:?}"),
    }
    let trace = telemetry.take_trace();
    assert_eq!(
        trace.counter("gcn", "numeric_recovery"),
        Some(MAX_NUMERIC_RETRIES as u64 + 1),
        "every retry plus the final failure is counted"
    );
}

#[test]
fn nan_recovery_also_works_inside_the_checkpointed_pipeline() {
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let dir = run_dir("nan-pipeline");
    let _scope = FaultPlan {
        nan_loss_at_epoch: Some(8),
        ..FaultPlan::default()
    }
    .activate();
    let input = EaInput::new(&ds.pair, &src, &tgt);
    let out = try_run_checkpointed(&input, &cfg(), &dir, CheckpointPolicy::EveryNEpochs(5))
        .expect("recovers and completes");
    assert_eq!(out.trace.counter("gcn", "numeric_recovery"), Some(1));
    assert!(out.accuracy > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_io_error_fails_checkpoint_saves_cleanly() {
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let dir = run_dir("io");
    let _scope = FaultPlan {
        io_error_substring: Some(STAGE_STRUCTURAL.into()),
        ..FaultPlan::default()
    }
    .activate();
    let input = EaInput::new(&ds.pair, &src, &tgt);
    match try_run_checkpointed(&input, &cfg(), &dir, CheckpointPolicy::PerStage) {
        Err(CeaffError::Checkpoint { file, reason }) => {
            assert_eq!(file, STAGE_STRUCTURAL);
            assert!(reason.contains("injected"), "{reason}");
        }
        other => panic!("expected an injected I/O failure, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
