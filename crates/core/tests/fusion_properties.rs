//! Property and contract tests for adaptive feature fusion beyond the
//! in-module Figure 3 walk-through.

use ceaff_core::fusion::{
    adaptive_fuse, adaptive_weights, confident_correspondences, two_stage_fuse, FusionConfig,
};
use ceaff_sim::SimilarityMatrix;
use ceaff_tensor::Matrix;
use proptest::prelude::*;

fn sm(vals: Vec<f32>, rows: usize, cols: usize) -> SimilarityMatrix {
    SimilarityMatrix::new(Matrix::from_vec(rows, cols, vals))
}

#[test]
fn identical_features_trigger_equal_fallback() {
    // Two identical matrices: every candidate is shared by all features,
    // so everything is filtered and the fallback fires.
    let a = sm(vec![0.9, 0.1, 0.2, 0.8], 2, 2);
    let report = adaptive_weights(&[&a, &a.clone()], &FusionConfig::default());
    assert!(report.fallback_equal);
    assert_eq!(report.weights, vec![0.5, 0.5]);
}

#[test]
fn a_feature_with_unique_confident_pairs_dominates() {
    // Feature A nails a diagonal the others cannot see.
    let a = sm(vec![0.9, 0.0, 0.0, 0.0, 0.9, 0.0, 0.0, 0.0, 0.9], 3, 3);
    // Feature B is flat noise with one weak candidate off the diagonal
    // that conflicts with nothing A proposes for different sources.
    let b = sm(vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5], 3, 3);
    let report = adaptive_weights(&[&a, &b], &FusionConfig::default());
    assert!(
        report.weights[0] > 0.9,
        "A should dominate: {:?}",
        report.weights
    );
}

#[test]
fn candidate_count_is_bounded_by_min_dimension() {
    // Double-max cells form a partial permutation: at most min(n, m).
    let m = sm(
        vec![0.9, 0.9, 0.1, 0.2, 0.9, 0.9, 0.3, 0.3, 0.3, 0.1, 0.2, 0.3],
        3,
        4,
    );
    let c = confident_correspondences(&m);
    assert!(c.len() <= 3);
    // And they never share a row or a column.
    for (i, a) in c.iter().enumerate() {
        for b in &c[i + 1..] {
            assert_ne!(a.source, b.source);
            assert_ne!(a.target, b.target);
        }
    }
}

proptest! {
    /// Candidates of any matrix form a partial permutation.
    #[test]
    fn candidates_are_partial_permutation(vals in proptest::collection::vec(0.0f32..1.0, 20)) {
        let m = sm(vals, 4, 5);
        let c = confident_correspondences(&m);
        let mut rows: Vec<_> = c.iter().map(|x| x.source).collect();
        let mut cols: Vec<_> = c.iter().map(|x| x.target).collect();
        rows.sort_unstable();
        cols.sort_unstable();
        rows.dedup();
        cols.dedup();
        prop_assert_eq!(rows.len(), c.len());
        prop_assert_eq!(cols.len(), c.len());
    }

    /// Fused output of adaptive_fuse is a convex combination: bounded by
    /// the per-cell min and max over the inputs.
    #[test]
    fn fusion_is_convex_combination(
        a in proptest::collection::vec(0.0f32..1.0, 9),
        b in proptest::collection::vec(0.0f32..1.0, 9),
        c in proptest::collection::vec(0.0f32..1.0, 9),
    ) {
        let ma = sm(a.clone(), 3, 3);
        let mb = sm(b.clone(), 3, 3);
        let mc = sm(c.clone(), 3, 3);
        let (fused, _) = adaptive_fuse(&[&ma, &mb, &mc], &FusionConfig::default());
        for i in 0..3 {
            for j in 0..3 {
                let vals = [ma.get(i, j), mb.get(i, j), mc.get(i, j)];
                let lo = vals.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(fused.get(i, j) >= lo - 1e-5);
                prop_assert!(fused.get(i, j) <= hi + 1e-5);
            }
        }
    }

    /// Two-stage fusion of arbitrary inputs stays within global bounds too
    /// (composition of convex combinations is convex).
    #[test]
    fn two_stage_is_convex(
        s in proptest::collection::vec(0.0f32..1.0, 9),
        n in proptest::collection::vec(0.0f32..1.0, 9),
        l in proptest::collection::vec(0.0f32..1.0, 9),
    ) {
        let ms = sm(s.clone(), 3, 3);
        let mn = sm(n.clone(), 3, 3);
        let ml = sm(l.clone(), 3, 3);
        let (fused, _, _) = two_stage_fuse(Some(&ms), Some(&mn), Some(&ml), &FusionConfig::default());
        for i in 0..3 {
            for j in 0..3 {
                let vals = [ms.get(i, j), mn.get(i, j), ml.get(i, j)];
                let lo = vals.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(fused.get(i, j) >= lo - 1e-5, "cell ({i},{j})");
                prop_assert!(fused.get(i, j) <= hi + 1e-5, "cell ({i},{j})");
            }
        }
    }

    /// Permuting the feature order permutes the weights identically.
    #[test]
    fn weights_are_equivariant_to_feature_order(
        a in proptest::collection::vec(0.0f32..1.0, 9),
        b in proptest::collection::vec(0.0f32..1.0, 9),
    ) {
        let ma = sm(a, 3, 3);
        let mb = sm(b, 3, 3);
        let cfg = FusionConfig::default();
        let ab = adaptive_weights(&[&ma, &mb], &cfg).weights;
        let ba = adaptive_weights(&[&mb, &ma], &cfg).weights;
        prop_assert!((ab[0] - ba[1]).abs() < 1e-6);
        prop_assert!((ab[1] - ba[0]).abs() < 1e-6);
    }
}
