//! Execution-budget end-to-end behavior: the unconstrained invariant
//! (bitwise identity with the unbudgeted pipeline), graceful degradation
//! under step limits and cancellation, the typed memory-budget error,
//! and the budget × checkpoint interplay.

use ceaff_core::checkpoint::CheckpointPolicy;
use ceaff_core::gcn::GcnConfig;
use ceaff_core::pipeline::{
    resume_from, try_run, try_run_checkpointed_with_budget, try_run_with_budget, CeaffConfig,
    CeaffOutput, EaInput,
};
use ceaff_core::{CancelToken, CeaffError, ExecBudget};
use ceaff_datagen::{GenConfig, GeneratedDataset, NameChannel};
use std::path::PathBuf;
use std::time::Duration;

fn dataset() -> GeneratedDataset {
    ceaff_datagen::generate(&GenConfig {
        aligned_entities: 120,
        extra_frac: 0.1,
        avg_degree: 8.0,
        overlap: 0.8,
        channel: NameChannel::CloseLingual {
            morph_rate: 0.5,
            replace_rate: 0.2,
        },
        vocab_size: 400,
        lexicon_coverage: 0.9,
        ..GenConfig::default()
    })
}

fn cfg() -> CeaffConfig {
    CeaffConfig {
        gcn: GcnConfig {
            dim: 16,
            epochs: 30,
            ..GcnConfig::default()
        },
        embed_dim: 16,
        ..CeaffConfig::default()
    }
}

fn run_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ceaff-budget-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Bit-level equality of two runs' outputs: the fused matrix, the
/// matching, and every metric.
fn assert_bitwise_equal(a: &CeaffOutput, b: &CeaffOutput) {
    let (ma, mb) = (a.fused.as_matrix(), b.fused.as_matrix());
    assert_eq!((ma.rows(), ma.cols()), (mb.rows(), mb.cols()));
    for (x, y) in ma.as_slice().iter().zip(mb.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "fused matrices diverge");
    }
    assert_eq!(a.matching.pairs(), b.matching.pairs());
    assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
    assert_eq!(a.ranking.hits1.to_bits(), b.ranking.hits1.to_bits());
    assert_eq!(a.ranking.hits10.to_bits(), b.ranking.hits10.to_bits());
    assert_eq!(a.ranking.mrr.to_bits(), b.ranking.mrr.to_bits());
}

#[test]
fn unlimited_budget_is_bitwise_identical_to_unbudgeted() {
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = cfg();

    let plain = try_run(&EaInput::new(&ds.pair, &src, &tgt), &cfg).expect("plain run");
    let unlimited = try_run_with_budget(
        &EaInput::new(&ds.pair, &src, &tgt),
        &cfg,
        &ExecBudget::unlimited(),
    )
    .expect("unlimited budgeted run");
    assert_bitwise_equal(&plain, &unlimited);
    assert!(unlimited.trace.degradations.is_empty());
}

#[test]
fn unfired_constrained_budget_is_bitwise_identical_too() {
    // The CLI wires a SIGINT cancel token into *every* align run, so the
    // anytime code path with a constrained-but-never-fired budget must
    // also reproduce the unbudgeted output bit for bit.
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = cfg();

    let plain = try_run(&EaInput::new(&ds.pair, &src, &tgt), &cfg).expect("plain run");
    let budget = ExecBudget::unlimited()
        .with_cancel(CancelToken::new())
        .with_deadline(Duration::from_secs(3600))
        .with_step_limit(u64::MAX);
    let budgeted = try_run_with_budget(&EaInput::new(&ds.pair, &src, &tgt), &cfg, &budget)
        .expect("budgeted run");
    assert_bitwise_equal(&plain, &budgeted);
    assert!(budgeted.trace.degradations.is_empty());
    // ... but its trace does carry the budget accounting.
    assert!(budgeted.trace.counter("budget", "steps_consumed").is_some());
}

#[test]
fn step_limited_run_degrades_gracefully() {
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = cfg();

    // 10 granules against 30 GCN epochs + 2 feature stages + matcher
    // rounds: training is cut short and everything after it degrades.
    let budget = ExecBudget::unlimited().with_step_limit(10);
    let out = try_run_with_budget(&EaInput::new(&ds.pair, &src, &tgt), &cfg, &budget)
        .expect("degraded run still succeeds");
    let n = ds.pair.test_pairs().len();
    assert!(out.matching.is_one_to_one());
    assert_eq!(out.matching.len(), n);
    assert!(out.accuracy.is_finite());

    let stages: Vec<&str> = out
        .trace
        .degradations
        .iter()
        .map(|d| d.stage.as_str())
        .collect();
    assert!(stages.contains(&"gcn"), "gcn must degrade: {stages:?}");
    for d in &out.trace.degradations {
        assert_eq!(d.reason, "step_limit");
        assert!(d.fraction_degraded > 0.0 && d.fraction_degraded <= 1.0);
    }
    assert_eq!(out.trace.counter("budget", "steps_consumed"), Some(10));
}

#[test]
fn cancelled_before_start_still_returns_a_valid_result() {
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = cfg();

    let token = CancelToken::new();
    token.cancel();
    let budget = ExecBudget::unlimited().with_cancel(token);
    let out = try_run_with_budget(&EaInput::new(&ds.pair, &src, &tgt), &cfg, &budget)
        .expect("cancelled run degrades, not errors");
    assert!(out.matching.is_one_to_one());
    assert_eq!(out.matching.len(), ds.pair.test_pairs().len());
    assert!(!out.trace.degradations.is_empty());
    for d in &out.trace.degradations {
        assert_eq!(d.reason, "cancelled");
    }
    assert_eq!(out.trace.counter("budget", "cancelled"), Some(1));
}

#[test]
fn already_expired_deadline_degrades_immediately_and_reproducibly() {
    // A deadline that has already passed when the run *enters* the
    // pipeline is the harshest anytime case: every stage must degrade at
    // its first granule — no panic, no division by a zero round count —
    // and still hand back a complete one-to-one matching. The degraded
    // answer must also be bitwise-identical across thread counts, because
    // the deadline check is per-granule, not per-thread-race.
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = cfg();

    let run = |threads: usize| {
        ceaff_parallel::with_threads(threads, || {
            let budget = ExecBudget::unlimited().with_deadline(Duration::ZERO);
            try_run_with_budget(&EaInput::new(&ds.pair, &src, &tgt), &cfg, &budget)
                .expect("expired deadline degrades, not errors")
        })
    };
    let out = run(1);
    assert!(out.matching.is_one_to_one());
    assert_eq!(out.matching.len(), ds.pair.test_pairs().len());
    assert!(out.accuracy.is_finite());
    assert!(
        !out.trace.degradations.is_empty(),
        "an expired deadline must be visible in the trace"
    );
    for d in &out.trace.degradations {
        assert_eq!(d.reason, "deadline");
        assert!((0.0..=1.0).contains(&d.fraction_degraded));
    }
    assert_bitwise_equal(&out, &run(4));
}

#[test]
fn zero_step_limit_degrades_immediately_and_reproducibly() {
    // Zero granules of budget at entry: the degenerate sibling of the
    // expired deadline, exercising the step accounting's boundary (the
    // very first `consume` must fire, never underflow or divide by the
    // zero rounds completed).
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = cfg();

    let run = |threads: usize| {
        ceaff_parallel::with_threads(threads, || {
            let budget = ExecBudget::unlimited().with_step_limit(0);
            try_run_with_budget(&EaInput::new(&ds.pair, &src, &tgt), &cfg, &budget)
                .expect("zero step limit degrades, not errors")
        })
    };
    let out = run(1);
    assert!(out.matching.is_one_to_one());
    assert_eq!(out.matching.len(), ds.pair.test_pairs().len());
    assert!(out.accuracy.is_finite());
    assert!(!out.trace.degradations.is_empty());
    for d in &out.trace.degradations {
        assert_eq!(d.reason, "step_limit");
        match d.stage.as_str() {
            // The feature stage guarantees a minimal valid answer by
            // always computing its first enabled feature before touching
            // the budget, so even a zero budget completes one round there.
            "features" => assert_eq!(d.rounds_completed, 1),
            _ => assert_eq!(d.rounds_completed, 0, "no rounds fit in a zero budget"),
        }
        assert!((0.0..=1.0).contains(&d.fraction_degraded));
    }
    assert_bitwise_equal(&out, &run(4));
}

#[test]
fn tiny_memory_budget_is_a_typed_error_not_an_abort() {
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = cfg();

    let budget = ExecBudget::unlimited().with_max_mem_bytes(4 * 1024);
    let err = try_run_with_budget(&EaInput::new(&ds.pair, &src, &tgt), &cfg, &budget)
        .expect_err("a 4 KiB cap cannot fit the GCN");
    match err {
        CeaffError::BudgetExceeded {
            stage,
            limit_bytes,
            peak_bytes,
        } => {
            assert!(!stage.is_empty());
            assert_eq!(limit_bytes, 4 * 1024);
            assert!(peak_bytes > limit_bytes);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn degraded_checkpoint_run_keeps_training_state_and_resumes_exactly() {
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = cfg();
    let dir = run_dir("degraded-resume");

    let plain = try_run(&EaInput::new(&ds.pair, &src, &tgt), &cfg).expect("plain run");

    // Budgeted checkpointed run: training stops after 10 of 30 epochs.
    // The degraded structural output must NOT be saved as a completed
    // stage artifact — only the in-flight training state stays.
    let budget = ExecBudget::unlimited().with_step_limit(10);
    let degraded = try_run_checkpointed_with_budget(
        &EaInput::new(&ds.pair, &src, &tgt),
        &cfg,
        &dir,
        CheckpointPolicy::EveryNEpochs(5),
        &budget,
    )
    .expect("degraded checkpointed run");
    assert!(!degraded.trace.degradations.is_empty());
    assert!(
        dir.join(ceaff_core::checkpoint::TRAIN_FILE).exists(),
        "in-flight training state must survive a degraded run"
    );
    assert!(
        !dir.join(ceaff_core::checkpoint::STAGE_STRUCTURAL).exists(),
        "a degraded stage must not masquerade as a completed artifact"
    );

    // Resuming without a budget finishes the real computation and lands
    // bit-for-bit on the uninterrupted answer.
    let resumed = resume_from(&dir, &EaInput::new(&ds.pair, &src, &tgt)).expect("resume completes");
    assert_bitwise_equal(&plain, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}
