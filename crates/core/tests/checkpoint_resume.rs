//! Checkpoint/resume end-to-end: a run interrupted mid-GCN-training and
//! resumed from its run directory must produce **bitwise-identical**
//! embeddings and metrics to the same run executed uninterrupted — at any
//! thread count.

use ceaff_core::checkpoint::{CheckpointPolicy, Checkpointer};
use ceaff_core::gcn::GcnConfig;
use ceaff_core::pipeline::{
    resume_from, try_run, try_run_checkpointed, CeaffConfig, CeaffOutput, EaInput,
};
use ceaff_core::CeaffError;
use ceaff_datagen::{GenConfig, GeneratedDataset, NameChannel};
use ceaff_faultinject::FaultPlan;
use std::path::PathBuf;

fn dataset() -> GeneratedDataset {
    ceaff_datagen::generate(&GenConfig {
        aligned_entities: 120,
        extra_frac: 0.1,
        avg_degree: 8.0,
        overlap: 0.8,
        channel: NameChannel::CloseLingual {
            morph_rate: 0.5,
            replace_rate: 0.2,
        },
        vocab_size: 400,
        lexicon_coverage: 0.9,
        ..GenConfig::default()
    })
}

fn cfg() -> CeaffConfig {
    CeaffConfig {
        gcn: GcnConfig {
            dim: 16,
            epochs: 30,
            ..GcnConfig::default()
        },
        embed_dim: 16,
        ..CeaffConfig::default()
    }
}

fn run_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ceaff-resume-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Bit-level equality of two runs' outputs: the fused matrix, the
/// matching, and every metric.
fn assert_bitwise_equal(a: &CeaffOutput, b: &CeaffOutput) {
    let (ma, mb) = (a.fused.as_matrix(), b.fused.as_matrix());
    assert_eq!((ma.rows(), ma.cols()), (mb.rows(), mb.cols()));
    for (x, y) in ma.as_slice().iter().zip(mb.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "fused matrices diverge");
    }
    assert_eq!(a.matching.pairs(), b.matching.pairs());
    assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
    assert_eq!(a.ranking.hits1.to_bits(), b.ranking.hits1.to_bits());
    assert_eq!(a.ranking.hits10.to_bits(), b.ranking.hits10.to_bits());
    assert_eq!(a.ranking.mrr.to_bits(), b.ranking.mrr.to_bits());
}

/// Crash at a given epoch via fault injection, then resume; compare
/// against an uninterrupted plain run. `threads` controls the worker pool
/// of every run in the round trip.
fn crash_and_resume_matches(threads: usize, crash_epoch: usize) {
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = cfg();
    let dir = run_dir(&format!("t{threads}e{crash_epoch}"));

    // Every phase holds a fault scope: the armed plan is process-global,
    // and an inert default plan both serializes concurrent tests and
    // shields fault-free runs from another test's injections.
    let uninterrupted = {
        let _quiet = FaultPlan::default().activate();
        ceaff_parallel::with_threads(threads, || {
            let input = EaInput::new(&ds.pair, &src, &tgt);
            try_run(&input, &cfg).expect("uninterrupted run")
        })
    };

    // First attempt dies mid-training (graceful simulated crash — the
    // checkpoint on disk is whatever the every-5-epochs cadence saved).
    let crashed = {
        let _scope = FaultPlan {
            fail_train_at_epoch: Some(crash_epoch),
            ..FaultPlan::default()
        }
        .activate();
        ceaff_parallel::with_threads(threads, || {
            let input = EaInput::new(&ds.pair, &src, &tgt);
            try_run_checkpointed(&input, &cfg, &dir, CheckpointPolicy::EveryNEpochs(5))
        })
    };
    match crashed {
        Err(CeaffError::Checkpoint { reason, .. }) => {
            assert!(reason.contains("simulated crash"), "{reason}")
        }
        other => panic!("expected the injected crash, got {other:?}"),
    }

    let resumed = {
        let _quiet = FaultPlan::default().activate();
        ceaff_parallel::with_threads(threads, || {
            let input = EaInput::new(&ds.pair, &src, &tgt);
            resume_from(&dir, &input).expect("resumed run")
        })
    };
    assert_bitwise_equal(&uninterrupted, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_and_resume_is_bitwise_identical_single_thread() {
    crash_and_resume_matches(1, 17);
}

#[test]
fn crash_and_resume_is_bitwise_identical_four_threads() {
    crash_and_resume_matches(4, 17);
}

#[test]
fn crash_before_any_checkpoint_restarts_from_scratch() {
    // Epoch 3 < the first every-5 boundary: nothing saved for training,
    // resume re-trains from epoch 0 — still bitwise-equal.
    crash_and_resume_matches(1, 3);
}

#[test]
fn resume_across_thread_counts_is_bitwise_identical() {
    // The determinism contract makes thread count irrelevant: crash at 1
    // thread, resume at 4 — results still match an uninterrupted run.
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = cfg();
    let dir = run_dir("cross");

    let uninterrupted = {
        let _quiet = FaultPlan::default().activate();
        ceaff_parallel::with_threads(1, || {
            let input = EaInput::new(&ds.pair, &src, &tgt);
            try_run(&input, &cfg).expect("uninterrupted run")
        })
    };
    let crashed = {
        let _scope = FaultPlan {
            fail_train_at_epoch: Some(12),
            ..FaultPlan::default()
        }
        .activate();
        ceaff_parallel::with_threads(1, || {
            let input = EaInput::new(&ds.pair, &src, &tgt);
            try_run_checkpointed(&input, &cfg, &dir, CheckpointPolicy::EveryNEpochs(5))
        })
    };
    assert!(crashed.is_err());
    let resumed = {
        let _quiet = FaultPlan::default().activate();
        ceaff_parallel::with_threads(4, || {
            let input = EaInput::new(&ds.pair, &src, &tgt);
            resume_from(&dir, &input).expect("resumed run")
        })
    };
    assert_bitwise_equal(&uninterrupted, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn completed_stages_are_not_recomputed_on_resume() {
    let _quiet = FaultPlan::default().activate();
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = cfg();
    let dir = run_dir("stages");

    let input = EaInput::new(&ds.pair, &src, &tgt);
    let first = try_run_checkpointed(&input, &cfg, &dir, CheckpointPolicy::PerStage)
        .expect("first run completes");
    assert_eq!(first.trace.counter("checkpoint", "stages_saved"), Some(3));
    assert_eq!(first.trace.counter("checkpoint", "stages_resumed"), None);

    // A second pass over the same directory restores all three stages.
    let input = EaInput::new(&ds.pair, &src, &tgt);
    let second = resume_from(&dir, &input).expect("second run completes");
    assert_eq!(
        second.trace.counter("checkpoint", "stages_resumed"),
        Some(3)
    );
    assert_eq!(second.trace.counter("checkpoint", "stages_saved"), None);
    assert_bitwise_equal(&first, &second);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_run_matches_plain_run_even_uninterrupted() {
    // Checkpointing itself must not perturb results.
    let _quiet = FaultPlan::default().activate();
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = cfg();
    let dir = run_dir("noop");

    let input = EaInput::new(&ds.pair, &src, &tgt);
    let plain = try_run(&input, &cfg).expect("plain run");
    let input = EaInput::new(&ds.pair, &src, &tgt);
    let checkpointed = try_run_checkpointed(&input, &cfg, &dir, CheckpointPolicy::EveryNEpochs(5))
        .expect("checkpointed run");
    assert_bitwise_equal(&plain, &checkpointed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn off_policy_runs_without_touching_disk() {
    let _quiet = FaultPlan::default().activate();
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let dir = run_dir("off");
    let input = EaInput::new(&ds.pair, &src, &tgt);
    let out =
        try_run_checkpointed(&input, &cfg(), &dir, CheckpointPolicy::Off).expect("off-policy run");
    assert!(out.accuracy > 0.0);
    assert!(!dir.exists(), "Off policy must not create a run directory");
}

#[test]
fn resume_rejects_a_directory_from_another_config() {
    let _quiet = FaultPlan::default().activate();
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let dir = run_dir("mismatch");
    let base = cfg();
    Checkpointer::create(&dir, CheckpointPolicy::PerStage, &base).unwrap();
    let mut other = base;
    other.gcn.seed ^= 1;
    let input = EaInput::new(&ds.pair, &src, &tgt);
    let err = try_run_checkpointed(&input, &other, &dir, CheckpointPolicy::PerStage).unwrap_err();
    assert!(matches!(err, CeaffError::Checkpoint { .. }));
    std::fs::remove_dir_all(&dir).ok();
}

/// Flip one byte in the middle of a file — a minimal, realistic disk
/// corruption (bit rot, torn sector) that CRC verification must catch.
fn flip_middle_byte(path: &std::path::Path) {
    let mut bytes = std::fs::read(path).expect("read checkpoint file");
    assert!(!bytes.is_empty(), "cannot corrupt an empty file");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(path, bytes).expect("write corrupted file");
}

/// A run directory left by a mid-training crash under the every-N
/// policy: `gcn_train.ckpt` plus its manifest entry are on disk.
fn crashed_gcn_run_dir(
    tag: &str,
    ds: &GeneratedDataset,
    src: &ceaff_embed::SubwordEmbedder,
    tgt: &ceaff_embed::LexiconEmbedder,
) -> PathBuf {
    let dir = run_dir(tag);
    let _scope = FaultPlan {
        fail_train_at_epoch: Some(17),
        ..FaultPlan::default()
    }
    .activate();
    let input = EaInput::new(&ds.pair, src, tgt);
    let crashed = try_run_checkpointed(&input, &cfg(), &dir, CheckpointPolicy::EveryNEpochs(5));
    assert!(crashed.is_err(), "the injected crash must abort the run");
    assert!(dir.join("gcn_train.ckpt").exists());
    dir
}

/// A run directory from a *completed* per-stage run: all three stage
/// artifacts plus the manifest.
fn completed_stage_run_dir(
    tag: &str,
    ds: &GeneratedDataset,
    src: &ceaff_embed::SubwordEmbedder,
    tgt: &ceaff_embed::LexiconEmbedder,
) -> PathBuf {
    let dir = run_dir(tag);
    let _quiet = FaultPlan::default().activate();
    let input = EaInput::new(&ds.pair, src, tgt);
    try_run_checkpointed(&input, &cfg(), &dir, CheckpointPolicy::PerStage)
        .expect("per-stage run completes");
    assert!(dir.join("stage_semantic.bin").exists());
    dir
}

/// One flipped byte in an artifact payload must surface as a typed
/// [`CeaffError::Checkpoint`] naming the damaged file — never a panic,
/// and never a silently-wrong resume.
#[test]
fn corrupted_artifact_payload_is_rejected_with_a_typed_error() {
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);

    // GCN training-state kind. The quiet scope must end before the next
    // helper activates its own plan — the global scope lock is held for
    // a guard's whole lifetime and is not reentrant.
    let dir = crashed_gcn_run_dir("corrupt-train", &ds, &src, &tgt);
    flip_middle_byte(&dir.join("gcn_train.ckpt"));
    {
        let _quiet = FaultPlan::default().activate();
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let err = resume_from(&dir, &input).expect_err("corrupt training state must be rejected");
        match &err {
            CeaffError::Checkpoint { file, .. } => assert_eq!(file, "gcn_train.ckpt"),
            other => panic!("expected a typed checkpoint error, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();

    // Per-stage kind.
    let dir = completed_stage_run_dir("corrupt-stage", &ds, &src, &tgt);
    flip_middle_byte(&dir.join("stage_semantic.bin"));
    let _quiet = FaultPlan::default().activate();
    let input = EaInput::new(&ds.pair, &src, &tgt);
    let err = resume_from(&dir, &input).expect_err("corrupt stage artifact must be rejected");
    match &err {
        CeaffError::Checkpoint { file, .. } => assert_eq!(file, "stage_semantic.bin"),
        other => panic!("expected a typed checkpoint error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// One flipped byte in `manifest.json` must likewise fail typed — for
/// both checkpoint kinds — whether the flip breaks the JSON, a recorded
/// CRC, or a field name.
#[test]
fn corrupted_manifest_is_rejected_with_a_typed_error() {
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);

    for (dir, kind) in [
        (
            crashed_gcn_run_dir("manifest-train", &ds, &src, &tgt),
            "every-N",
        ),
        (
            completed_stage_run_dir("manifest-stage", &ds, &src, &tgt),
            "per-stage",
        ),
    ] {
        flip_middle_byte(&dir.join("manifest.json"));
        let _quiet = FaultPlan::default().activate();
        let input = EaInput::new(&ds.pair, &src, &tgt);
        let err = resume_from(&dir, &input)
            .map(|_| ())
            .expect_err("corrupt manifest must be rejected");
        assert!(
            matches!(err, CeaffError::Checkpoint { .. }),
            "{kind}: expected a typed checkpoint error, got {err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
