//! The incremental≡from-scratch parity gate (CI job `incremental`).
//!
//! Replays a generated 50-edit stream through a warm [`DeltaState`] and
//! asserts, at several checkpoints along the stream and at the end, that
//! the warm state is **bitwise-identical** to a from-scratch pipeline run
//! on the edited pair: fused store bits, matching pairs, and accuracy
//! bits. Runs under whatever `CEAFF_THREADS` the environment sets — the
//! CI job executes it at 1 and at 4 threads.

use ceaff_core::delta::DeltaState;
use ceaff_core::pipeline::{try_run_with_features, CeaffConfig, CeaffOutput, EaInput, FeatureSet};
use ceaff_core::{GcnConfig, Telemetry};
use ceaff_datagen::{evolve, EvolveConfig, GenConfig, NameChannel};
use ceaff_graph::KgPair;
use ceaff_sim::SimStore;

const STREAM_LEN: usize = 50;
/// From-scratch comparison points (a full pipeline run each — kept sparse
/// so the gate stays fast; the final step is always checked).
const CHECKPOINTS: [usize; 5] = [1, 13, 25, 40, STREAM_LEN];

fn dataset() -> ceaff_datagen::GeneratedDataset {
    ceaff_datagen::generate(&GenConfig {
        aligned_entities: 80,
        channel: NameChannel::Identical { typo_rate: 0.05 },
        ..GenConfig::default()
    })
}

fn config(blocked: bool) -> CeaffConfig {
    let mut cfg = CeaffConfig::builder()
        .gcn(GcnConfig {
            dim: 16,
            ..GcnConfig::default()
        })
        .embed_dim(32)
        .build()
        .expect("valid config")
        .with_propagation(2);
    if blocked {
        cfg = cfg.with_blocking(8);
    }
    cfg
}

fn assert_bitwise_equal(warm: &CeaffOutput, fresh: &CeaffOutput, step: usize) {
    assert_eq!(
        warm.matching.pairs(),
        fresh.matching.pairs(),
        "matching diverged at step {step}"
    );
    assert_eq!(
        warm.accuracy.to_bits(),
        fresh.accuracy.to_bits(),
        "accuracy diverged at step {step}: {} vs {}",
        warm.accuracy,
        fresh.accuracy
    );
    match (&warm.fused, &fresh.fused) {
        (SimStore::Dense(a), SimStore::Dense(b)) => {
            assert_eq!(
                a.sources(),
                b.sources(),
                "fused row count diverged at step {step}"
            );
            let (am, bm) = (a.as_matrix().as_slice(), b.as_matrix().as_slice());
            assert_eq!(am.len(), bm.len(), "fused size diverged at step {step}");
            for (i, (x, y)) in am.iter().zip(bm).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "fused store diverged at step {step}, flat cell {i}: {x} vs {y}"
                );
            }
        }
        (SimStore::Sparse(a), SimStore::Sparse(b)) => {
            assert_eq!(a, b, "sparse fused store diverged at step {step}");
        }
        _ => panic!("store kinds diverged at step {step}"),
    }
}

fn from_scratch(
    pair: &KgPair,
    cfg: &CeaffConfig,
    ds: &ceaff_datagen::GeneratedDataset,
) -> CeaffOutput {
    let src = ds.source_embedder(32);
    let tgt = ds.target_embedder(32);
    let input = EaInput::new(pair, &src, &tgt);
    let features = FeatureSet::compute(&input, cfg);
    try_run_with_features(pair, &features, cfg, &Telemetry::disabled()).expect("fresh run")
}

fn replay_and_compare(blocked: bool) {
    let ds = dataset();
    let cfg = config(blocked);
    let src = ds.source_embedder(32);
    let tgt = ds.target_embedder(32);

    let stream = evolve(
        &ds.pair,
        &EvolveConfig {
            steps: STREAM_LEN,
            seed: 11,
            ..EvolveConfig::default()
        },
    );
    assert_eq!(stream.len(), STREAM_LEN);

    let mut state = DeltaState::new(&EaInput::new(&ds.pair, &src, &tgt), &cfg).expect("warm state");
    // Step 0: the warm state itself must equal a from-scratch run.
    assert_bitwise_equal(state.output(), &from_scratch(&ds.pair, &cfg, &ds), 0);

    let mut cur = ds.pair.clone();
    let mut fractions = Vec::with_capacity(STREAM_LEN);
    for td in &stream {
        cur = td.delta.apply(&cur).expect("stream replays").pair;
        let diff = state
            .apply(&td.delta, &src, &tgt)
            .unwrap_or_else(|e| panic!("delta step {} must apply: {e}", td.step));
        assert_eq!(diff.step, td.step);
        fractions.push(diff.recompute_fraction);
        if CHECKPOINTS.contains(&td.step) {
            assert_eq!(
                state.pair(),
                &cur,
                "pair state diverged at step {}",
                td.step
            );
            assert_bitwise_equal(state.output(), &from_scratch(&cur, &cfg, &ds), td.step);
        }
    }

    // The incremental path must actually be incremental: on average most
    // of the store survives each edit untouched.
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    assert!(
        mean < 0.6,
        "mean recompute fraction {mean:.3} — dirty tracking is not pruning work"
    );
}

#[test]
fn fifty_edit_stream_parity_dense() {
    replay_and_compare(false);
}

#[test]
fn fifty_edit_stream_parity_blocked() {
    replay_and_compare(true);
}

/// The fingerprint chain is a pure function of (config, edit stream):
/// two independent replays agree step by step, and the blocked/dense
/// configurations disagree from step 0.
#[test]
fn fingerprint_chain_identifies_history() {
    let ds = dataset();
    let src = ds.source_embedder(32);
    let tgt = ds.target_embedder(32);
    let stream = evolve(
        &ds.pair,
        &EvolveConfig {
            steps: 5,
            seed: 3,
            ..EvolveConfig::default()
        },
    );
    let cfg_a = config(false);
    let cfg_b = config(true);
    let input = EaInput::new(&ds.pair, &src, &tgt);
    let mut a1 = DeltaState::new(&input, &cfg_a).expect("a1");
    let mut a2 = DeltaState::new(&input, &cfg_a).expect("a2");
    let mut b = DeltaState::new(&input, &cfg_b).expect("b");
    assert_ne!(a1.fingerprint(), b.fingerprint());
    for td in &stream {
        let f1 = a1.apply(&td.delta, &src, &tgt).expect("a1 applies");
        let f2 = a2.apply(&td.delta, &src, &tgt).expect("a2 applies");
        let fb = b.apply(&td.delta, &src, &tgt).expect("b applies");
        assert_eq!(f1.fingerprint, f2.fingerprint, "step {}", td.step);
        assert_ne!(f1.fingerprint, fb.fingerprint, "step {}", td.step);
    }
}
