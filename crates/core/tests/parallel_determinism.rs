//! End-to-end determinism: feature similarity matrices and the full CEAFF
//! pipeline must produce bitwise-identical output for 1, 2 and 8 threads
//! — and for every kernel tile width (`ceaff_tensor::with_tile`).
//!
//! This is the integration-level counterpart of the kernel tests in
//! `ceaff-tensor`: it exercises the real feature stack (GCN training,
//! name-embedding cosine, Levenshtein string similarity), adaptive
//! fusion, and collective matching under `ceaff_parallel::with_threads`.

use ceaff_core::features::{Feature, SemanticFeature, StringFeature, StructuralFeature};
use ceaff_core::pipeline::{try_run, CeaffConfig, EaInput, FeatureSet};
use ceaff_core::GcnConfig;
use ceaff_datagen::{GenConfig, GeneratedDataset, NameChannel};
use ceaff_parallel::with_threads;
use ceaff_sim::SimilarityMatrix;

fn dataset() -> GeneratedDataset {
    ceaff_datagen::generate(&GenConfig {
        aligned_entities: 120,
        extra_frac: 0.1,
        avg_degree: 6.0,
        overlap: 0.8,
        channel: NameChannel::CloseLingual {
            morph_rate: 0.5,
            replace_rate: 0.2,
        },
        vocab_size: 300,
        lexicon_coverage: 0.9,
        ..GenConfig::default()
    })
}

fn fast_cfg() -> CeaffConfig {
    CeaffConfig {
        gcn: GcnConfig {
            dim: 16,
            epochs: 20,
            ..GcnConfig::default()
        },
        embed_dim: 16,
        ..CeaffConfig::default()
    }
}

/// Assert that `f` yields the same similarity matrix at 1, 2 and 8 threads.
fn assert_matrix_invariant(label: &str, f: impl Fn() -> SimilarityMatrix) {
    let baseline = with_threads(1, &f);
    for threads in [2, 8] {
        let m = with_threads(threads, &f);
        assert_eq!(
            m.as_matrix().as_slice(),
            baseline.as_matrix().as_slice(),
            "{label}: similarity matrix differs between 1 and {threads} threads"
        );
    }
}

#[test]
fn structural_similarity_matrix_is_thread_count_independent() {
    let ds = dataset();
    let gcn = GcnConfig {
        dim: 16,
        epochs: 20,
        ..GcnConfig::default()
    };
    assert_matrix_invariant("structural", || {
        StructuralFeature::compute(&ds.pair, &gcn)
            .test_matrix()
            .clone()
    });
}

#[test]
fn semantic_similarity_matrix_is_thread_count_independent() {
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    assert_matrix_invariant("semantic", || {
        SemanticFeature::compute(&ds.pair, &src, &tgt)
            .test_matrix()
            .clone()
    });
}

#[test]
fn string_similarity_matrix_is_thread_count_independent() {
    let ds = dataset();
    assert_matrix_invariant("string", || {
        StringFeature::compute(&ds.pair).test_matrix().clone()
    });
}

#[test]
fn csls_adjustment_is_thread_count_independent() {
    let ds = dataset();
    let string = StringFeature::compute(&ds.pair);
    assert_matrix_invariant("csls", || {
        ceaff_sim::csls_adjusted(string.test_matrix(), 10)
    });
}

#[test]
fn full_pipeline_output_is_thread_count_independent() {
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = fast_cfg();
    let run = |threads: usize| {
        with_threads(threads, || {
            let input = EaInput::new(&ds.pair, &src, &tgt);
            try_run(&input, &cfg).expect("pipeline runs")
        })
    };
    let baseline = run(1);
    for threads in [2, 8] {
        let out = run(threads);
        assert_eq!(
            out.fused.as_matrix().as_slice(),
            baseline.fused.as_matrix().as_slice(),
            "fused matrix differs between 1 and {threads} threads"
        );
        assert_eq!(
            out.matching.pairs(),
            baseline.matching.pairs(),
            "matching differs between 1 and {threads} threads"
        );
        assert_eq!(out.accuracy, baseline.accuracy);
        assert_eq!(out.ranking.hits1, baseline.ranking.hits1);
        assert_eq!(out.ranking.hits10, baseline.ranking.hits10);
        assert_eq!(out.ranking.mrr, baseline.ranking.mrr);
    }
}

#[test]
fn full_pipeline_output_is_tile_width_independent() {
    // The cache-blocked kernels promise that tile width only changes
    // traversal order, never a single accumulation — so GCN training and
    // every similarity matrix must be byte-identical across the
    // {2, 8 threads} × {tile 16, tile 64} matrix.
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = fast_cfg();
    let run = |threads: usize, tile: usize| {
        with_threads(threads, || {
            ceaff_tensor::with_tile(tile, || {
                let input = EaInput::new(&ds.pair, &src, &tgt);
                try_run(&input, &cfg).expect("pipeline runs")
            })
        })
    };
    let baseline = run(1, 64);
    for threads in [2, 8] {
        for tile in [16, 64] {
            let out = run(threads, tile);
            assert_eq!(
                out.fused.as_matrix().as_slice(),
                baseline.fused.as_matrix().as_slice(),
                "fused matrix differs at {threads} threads, tile {tile}"
            );
            assert_eq!(
                out.matching.pairs(),
                baseline.matching.pairs(),
                "matching differs at {threads} threads, tile {tile}"
            );
            assert_eq!(out.accuracy, baseline.accuracy);
            assert_eq!(out.ranking.mrr, baseline.ranking.mrr);
        }
    }
}

#[test]
fn precomputed_feature_reuse_is_thread_count_independent() {
    // Features computed at one width, fusion + matching replayed at
    // several widths — the ablation-harness usage pattern.
    let ds = dataset();
    let src = ds.source_embedder(16);
    let tgt = ds.target_embedder(16);
    let cfg = fast_cfg();
    let input = EaInput::new(&ds.pair, &src, &tgt);
    let features = with_threads(4, || FeatureSet::compute_all(&input, &cfg));
    let decide = |threads: usize| {
        with_threads(threads, || {
            ceaff_core::pipeline::try_run_with_features(
                &ds.pair,
                &features,
                &cfg,
                &ceaff_telemetry::Telemetry::disabled(),
            )
            .expect("pipeline runs")
        })
    };
    let baseline = decide(1);
    for threads in [2, 8] {
        let out = decide(threads);
        assert_eq!(
            out.fused.as_matrix().as_slice(),
            baseline.fused.as_matrix().as_slice()
        );
        assert_eq!(out.matching.pairs(), baseline.matching.pairs());
    }
}
