//! Synthetic KG-pair generation.
//!
//! A dataset is generated in three steps:
//!
//! 1. **World graph** — one latent KG over the aligned entities, grown with
//!    a mixture of preferential attachment (heavy-tailed, real-life-like
//!    degrees, as in SRPRS) and uniform attachment (even degrees, as in the
//!    dense DBP15K/DBP100K benchmarks), controlled by `degree_skew`.
//! 2. **Two views** — each KG keeps every world triple independently with
//!    probability `overlap` (structural heterogeneity between the KGs) and
//!    is padded with unaligned extra entities, mirroring the size asymmetry
//!    of the real benchmarks.
//! 3. **Names, lexicon and attributes** — the source KG uses pivot-language
//!    names; target names derive from them through the configured
//!    [`NameChannel`]; the word-level channel mapping becomes the synthetic
//!    bilingual lexicon (with imperfect `lexicon_coverage`, the MUSE OOV
//!    simulation); noisy attribute-type tables are drawn for the attribute
//!    baselines.

use crate::names::{generate_entity_names_with_seen, generate_relation_names, Vocabulary};
use crate::translate::NameChannel;
use ceaff_embed::{BilingualLexicon, LexiconEmbedder, SubwordEmbedder};
use ceaff_graph::{Alignment, AttributeTable, EntityId, KgPair, KnowledgeGraph, Triple};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Full configuration of one synthetic EA dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenConfig {
    /// Human-readable dataset label (e.g. `"DBP15K-ZH-EN (sim)"`).
    pub name: String,
    /// Number of aligned entity pairs (the gold standard size).
    pub aligned_entities: usize,
    /// Unaligned padding entities per KG, as a fraction of
    /// `aligned_entities`.
    pub extra_frac: f64,
    /// Number of relations in the world graph.
    pub relations: usize,
    /// Average *world* total degree (in+out) per aligned entity.
    pub avg_degree: f64,
    /// Probability that an endpoint is chosen by preferential attachment
    /// rather than uniformly; 0 = even degrees (dense benchmarks),
    /// → 1 = heavy tail (SRPRS-style real-life distribution).
    pub degree_skew: f64,
    /// Probability each KG view keeps a world triple.
    pub overlap: f64,
    /// How target names derive from pivot names.
    pub channel: NameChannel,
    /// Fraction of target words covered by the bilingual lexicon (semantic
    /// feature OOV control; 1.0 = perfect MUSE coverage).
    pub lexicon_coverage: f64,
    /// Cross-lingual embedding perturbation passed to [`LexiconEmbedder`].
    pub semantic_noise: f32,
    /// Seed fraction of the gold standard (paper: 0.3).
    pub seed_fraction: f64,
    /// Pivot vocabulary size.
    pub vocab_size: usize,
    /// Attribute-type vocabulary size (0 disables attribute generation).
    pub attribute_types: usize,
    /// Probability that a view keeps each world attribute (attribute
    /// noisiness; the paper cites 69–99% attribute incompleteness).
    pub attribute_keep: f64,
    /// When set, the world graph is grown oversized and sampled back down
    /// with the SRPRS degree-grouped random-PageRank protocol (§VII-A).
    pub srprs_sampling: Option<SrprsSampling>,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
}

/// Parameters of the SRPRS sampling step.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SrprsSampling {
    /// The world graph is grown with `world_factor ×` the aligned entity
    /// count before sampling down.
    pub world_factor: f64,
    /// Kolmogorov–Smirnov threshold the sampled degree distribution should
    /// meet against the oversized world's.
    pub max_ks: f64,
    /// Sampling attempts; the best (lowest-K-S) sample is kept even if the
    /// threshold is not met, and the achieved value is reported in
    /// [`GeneratedDataset::srprs_ks`].
    pub attempts: usize,
}

impl Default for SrprsSampling {
    fn default() -> Self {
        Self {
            world_factor: 2.0,
            max_ks: 0.2,
            attempts: 5,
        }
    }
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            name: "synthetic".into(),
            aligned_entities: 1000,
            extra_frac: 0.3,
            relations: 32,
            avg_degree: 8.0,
            degree_skew: 0.3,
            overlap: 0.75,
            channel: NameChannel::Identical { typo_rate: 0.02 },
            lexicon_coverage: 0.95,
            semantic_noise: 0.05,
            seed_fraction: 0.3,
            vocab_size: 2000,
            attribute_types: 64,
            attribute_keep: 0.6,
            srprs_sampling: None,
            seed: 0x000C_EAFF,
        }
    }
}

/// A generated dataset: the alignment problem plus the side resources the
/// features need (bilingual lexicon, attribute tables).
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The configuration that produced this dataset.
    pub config: GenConfig,
    /// The alignment problem instance.
    pub pair: KgPair,
    /// Target-word → pivot-word lexicon (the MUSE substitute).
    pub lexicon: BilingualLexicon,
    /// Attribute types of source-KG entities.
    pub source_attributes: AttributeTable,
    /// Attribute types of target-KG entities.
    pub target_attributes: AttributeTable,
    /// Kolmogorov–Smirnov statistic achieved by the SRPRS sampling step,
    /// when it was enabled.
    pub srprs_ks: Option<f64>,
}

impl GeneratedDataset {
    /// Word embedder for source-KG (pivot-language) names.
    pub fn source_embedder(&self, dim: usize) -> SubwordEmbedder {
        SubwordEmbedder::new(dim, self.config.seed ^ 0x736f7572)
    }

    /// Word embedder for target-KG names, routed through the bilingual
    /// lexicon into the pivot space (shared space, imperfect coverage).
    ///
    /// When the channel keeps the script identical (mono-lingual), unmapped
    /// words still embed reasonably via the subword embedder — handled by
    /// the caller composing embedders; here we return the lexicon embedder
    /// exactly as a MUSE user would.
    pub fn target_embedder(&self, dim: usize) -> LexiconEmbedder {
        LexiconEmbedder::new(
            self.source_embedder(dim),
            self.lexicon.clone(),
            self.config.semantic_noise,
        )
    }

    /// Names of the test source entities, in test order.
    pub fn test_source_names(&self) -> Vec<&str> {
        self.pair
            .test_sources()
            .iter()
            .map(|&e| self.pair.source.entity_name(e).expect("interned"))
            .collect()
    }

    /// Names of the test target entities, in test order.
    pub fn test_target_names(&self) -> Vec<&str> {
        self.pair
            .test_targets()
            .iter()
            .map(|&e| self.pair.target.entity_name(e).expect("interned"))
            .collect()
    }
}

/// One latent world triple, in aligned-entity index space.
#[derive(Debug, Clone, Copy)]
struct WorldTriple {
    head: usize,
    rel: usize,
    tail: usize,
}

/// Grow the world graph's triple list.
fn grow_world<R: Rng>(cfg: &GenConfig, rng: &mut R) -> Vec<WorldTriple> {
    let n = cfg.aligned_entities;
    let num_triples = ((n as f64) * cfg.avg_degree / 2.0).round() as usize;
    let mut triples = Vec::with_capacity(num_triples);
    // Endpoint multiset for preferential attachment.
    let mut endpoints: Vec<usize> = Vec::with_capacity(num_triples * 2);
    let mut seen: HashSet<(usize, usize, usize)> = HashSet::with_capacity(num_triples);
    // Zipf-ish relation sampling: relation r with weight 1/(r+1)^0.7.
    let rel_cum: Vec<f64> = {
        let mut acc = 0.0;
        (0..cfg.relations)
            .map(|r| {
                acc += 1.0 / ((r + 1) as f64).powf(0.7);
                acc
            })
            .collect()
    };
    let sample_rel = |rng: &mut R, cum: &[f64]| -> usize {
        let total = *cum.last().expect("non-empty relations");
        let x = rng.gen_range(0.0..total);
        cum.partition_point(|&c| c < x).min(cum.len() - 1)
    };
    let pick = |rng: &mut R, endpoints: &[usize]| -> usize {
        if !endpoints.is_empty() && rng.gen_bool(cfg.degree_skew) {
            endpoints[rng.gen_range(0..endpoints.len())]
        } else {
            rng.gen_range(0..n)
        }
    };
    let mut attempts = 0usize;
    while triples.len() < num_triples && attempts < num_triples * 20 {
        attempts += 1;
        let h = pick(rng, &endpoints);
        let t = pick(rng, &endpoints);
        if h == t {
            continue;
        }
        let r = sample_rel(rng, &rel_cum);
        if !seen.insert((h, r, t)) {
            continue;
        }
        endpoints.push(h);
        endpoints.push(t);
        triples.push(WorldTriple {
            head: h,
            rel: r,
            tail: t,
        });
    }
    triples
}

/// Assemble one KG view.
#[allow(clippy::too_many_arguments)]
fn build_view<R: Rng>(
    cfg: &GenConfig,
    world: &[WorldTriple],
    aligned_names: &[String],
    relation_names: &[String],
    extra_names: &[String],
    translate: impl Fn(&str) -> String,
    vocab: &Vocabulary,
    rng: &mut R,
) -> (KnowledgeGraph, Vec<EntityId>) {
    let mut kg = KnowledgeGraph::new();
    // Distinct pivot names can collide after translation (hash-based word
    // mappings are not injective); disambiguate so entity counts stay exact.
    let mut used: HashSet<String> = HashSet::new();
    let mut add_unique = |kg: &mut KnowledgeGraph, name: String| -> EntityId {
        if used.insert(name.clone()) {
            return kg.add_entity(&name);
        }
        let mut k = 2;
        loop {
            let candidate = format!("{name} ~{k}");
            if used.insert(candidate.clone()) {
                return kg.add_entity(&candidate);
            }
            k += 1;
        }
    };
    // Aligned entities first, so their view ids are 0..n in gold order.
    let ids: Vec<EntityId> = aligned_names
        .iter()
        .map(|name| add_unique(&mut kg, translate(name)))
        .collect();
    let rel_ids: Vec<_> = relation_names
        .iter()
        .map(|r| kg.add_relation(&translate(r)))
        .collect();
    for t in world {
        if rng.gen_bool(cfg.overlap) {
            kg.add_triple(Triple::new(ids[t.head], rel_ids[t.rel], ids[t.tail]))
                .expect("fresh ids are valid");
        }
    }
    // Unaligned padding entities: 1–3 triples each onto random aligned
    // entities.
    for name in extra_names {
        let e = add_unique(&mut kg, translate(name));
        for _ in 0..rng.gen_range(1..=3) {
            let other = ids[rng.gen_range(0..ids.len())];
            let r = rel_ids[rng.gen_range(0..rel_ids.len())];
            let (h, t) = if rng.gen_bool(0.5) {
                (e, other)
            } else {
                (other, e)
            };
            kg.add_triple(Triple::new(h, r, t))
                .expect("fresh ids are valid");
        }
    }
    let _ = vocab;
    (kg, ids)
}

/// Draw the latent attribute-type sets of the aligned entities.
fn world_attributes<R: Rng>(cfg: &GenConfig, rng: &mut R) -> Vec<Vec<u32>> {
    (0..cfg.aligned_entities)
        .map(|_| {
            let k = rng.gen_range(1..=6);
            let mut tys: Vec<u32> = (0..k)
                .map(|_| {
                    // Zipf-ish: square a uniform so low type-ids dominate.
                    let u: f64 = rng.gen::<f64>();
                    ((u * u) * cfg.attribute_types as f64) as u32
                })
                .map(|t| t.min(cfg.attribute_types as u32 - 1))
                .collect();
            tys.sort_unstable();
            tys.dedup();
            tys
        })
        .collect()
}

/// Project world attributes into one noisy view.
fn view_attributes<R: Rng>(
    cfg: &GenConfig,
    world: &[Vec<u32>],
    total_entities: usize,
    rng: &mut R,
) -> AttributeTable {
    let mut table = AttributeTable::new(total_entities, cfg.attribute_types.max(1));
    if cfg.attribute_types == 0 {
        return table;
    }
    for (e, tys) in world.iter().enumerate() {
        for &ty in tys {
            if rng.gen_bool(cfg.attribute_keep) {
                table.add(EntityId::new(e as u32), ty);
            }
        }
        // Small chance of a spurious extra attribute (noise).
        if rng.gen_bool(0.15) {
            table.add(
                EntityId::new(e as u32),
                rng.gen_range(0..cfg.attribute_types) as u32,
            );
        }
    }
    table
}

/// Grow an oversized world and sample it down with the SRPRS protocol.
/// Returns the re-indexed world triples (entities `0..aligned_entities`)
/// and the achieved K-S statistic (best across attempts).
fn srprs_world<R: Rng>(
    cfg: &GenConfig,
    sampling: SrprsSampling,
    rng: &mut R,
) -> (Vec<WorldTriple>, f64) {
    use crate::sampling::{degree_grouped_pagerank_sample, induced_subgraph};
    use ceaff_graph::stats::{degree_sequence, ks_statistic};

    let n_big = ((cfg.aligned_entities as f64) * sampling.world_factor.max(1.0)).round() as usize;
    let big_cfg = GenConfig {
        aligned_entities: n_big,
        ..cfg.clone()
    };
    let big_world = grow_world(&big_cfg, rng);

    // Materialise a throwaway KG (numeric labels) to run the sampler on.
    let mut big_kg = KnowledgeGraph::new();
    for i in 0..n_big {
        big_kg.add_entity(&i.to_string());
    }
    for r in 0..cfg.relations {
        big_kg.add_relation(&r.to_string());
    }
    for t in &big_world {
        big_kg
            .add_triple(Triple::new(
                EntityId::new(t.head as u32),
                ceaff_graph::RelationId::new(t.rel as u32),
                EntityId::new(t.tail as u32),
            ))
            .expect("world indices are in bounds");
    }

    let original = degree_sequence(&big_kg);
    let mut best: Option<(Vec<EntityId>, f64)> = None;
    for _ in 0..sampling.attempts.max(1) {
        let keep = degree_grouped_pagerank_sample(&big_kg, cfg.aligned_entities, rng);
        let (sub, _) = induced_subgraph(&big_kg, &keep);
        let ks = ks_statistic(&original, &degree_sequence(&sub));
        if best.as_ref().is_none_or(|(_, b)| ks < *b) {
            best = Some((keep, ks));
        }
        if ks <= sampling.max_ks {
            break;
        }
    }
    let (keep, ks) = best.expect("at least one sampling attempt ran");
    let mut old_to_new: Vec<Option<usize>> = vec![None; n_big];
    for (new, old) in keep.iter().enumerate() {
        old_to_new[old.index()] = Some(new);
    }
    let world = big_world
        .into_iter()
        .filter_map(|t| {
            let h = old_to_new[t.head]?;
            let ta = old_to_new[t.tail]?;
            Some(WorldTriple {
                head: h,
                rel: t.rel,
                tail: ta,
            })
        })
        .collect();
    (world, ks)
}

/// Generate a complete synthetic EA dataset from `cfg`.
pub fn generate(cfg: &GenConfig) -> GeneratedDataset {
    assert!(
        cfg.aligned_entities >= 10,
        "need at least 10 aligned entities"
    );
    assert!(cfg.relations > 0, "need at least one relation");
    assert!(
        (0.0..=1.0).contains(&cfg.overlap) && cfg.overlap > 0.0,
        "overlap must be in (0, 1]"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    let vocab = Vocabulary::generate(cfg.vocab_size, &mut rng);
    let mut seen_names = HashSet::new();
    let aligned_names =
        generate_entity_names_with_seen(&vocab, cfg.aligned_entities, &mut rng, &mut seen_names);
    let relation_names = generate_relation_names(&vocab, cfg.relations, &mut rng);
    let n_extra = (cfg.aligned_entities as f64 * cfg.extra_frac).round() as usize;
    // Distinct extra-name pools per side (unaligned entities differ between
    // real KGs), kept disjoint from the aligned names.
    let extra_src = generate_entity_names_with_seen(&vocab, n_extra, &mut rng, &mut seen_names);
    let extra_tgt = generate_entity_names_with_seen(&vocab, n_extra, &mut rng, &mut seen_names);

    let (world, srprs_ks) = match cfg.srprs_sampling {
        None => (grow_world(cfg, &mut rng), None),
        Some(sampling) => {
            let (world, ks) = srprs_world(cfg, sampling, &mut rng);
            (world, Some(ks))
        }
    };

    let salt = cfg.seed ^ 0x6368616e;
    let (source, src_ids) = build_view(
        cfg,
        &world,
        &aligned_names,
        &relation_names,
        &extra_src,
        |s| s.to_owned(),
        &vocab,
        &mut rng,
    );
    let channel = cfg.channel;
    let (target, tgt_ids) = build_view(
        cfg,
        &world,
        &aligned_names,
        &relation_names,
        &extra_tgt,
        |s| channel.translate_name(s, salt),
        &vocab,
        &mut rng,
    );

    // Bilingual lexicon over every pivot word that can occur in target
    // names, with imperfect coverage.
    let mut lexicon = BilingualLexicon::new();
    for word in vocab.words() {
        if rng.gen_bool(cfg.lexicon_coverage) {
            let foreign = channel.translate_word(word, salt);
            lexicon.insert(&foreign, word);
        }
    }

    let world_attrs = world_attributes(cfg, &mut rng);
    let source_attributes = view_attributes(cfg, &world_attrs, source.num_entities(), &mut rng);
    let target_attributes = view_attributes(cfg, &world_attrs, target.num_entities(), &mut rng);

    let gold: Vec<(EntityId, EntityId)> = src_ids.into_iter().zip(tgt_ids).collect();
    let alignment = Alignment::new(gold).expect("gold pairs are one-to-one by construction");
    let pair = KgPair::new(source, target, alignment, cfg.seed_fraction, &mut rng);

    GeneratedDataset {
        config: cfg.clone(),
        pair,
        lexicon,
        source_attributes,
        target_attributes,
        srprs_ks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_graph::stats::KgStats;

    fn small_cfg() -> GenConfig {
        GenConfig {
            aligned_entities: 200,
            vocab_size: 400,
            ..GenConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a.pair.source.num_triples(), b.pair.source.num_triples());
        assert_eq!(
            a.pair.source.entity_name(EntityId::new(0)),
            b.pair.source.entity_name(EntityId::new(0))
        );
        assert_eq!(a.pair.seeds(), b.pair.seeds());
    }

    #[test]
    fn sizes_match_config() {
        let ds = generate(&small_cfg());
        let n = 200;
        let extra = 60;
        assert_eq!(ds.pair.alignment.len(), n);
        assert_eq!(ds.pair.source.num_entities(), n + extra);
        assert_eq!(ds.pair.target.num_entities(), n + extra);
        assert_eq!(ds.pair.seeds().len(), 60); // 30% of 200
        assert_eq!(ds.pair.test_pairs().len(), 140);
    }

    #[test]
    fn aligned_names_correspond_through_channel() {
        let mut cfg = small_cfg();
        cfg.channel = NameChannel::Identical { typo_rate: 0.0 };
        let ds = generate(&cfg);
        for &(u, v) in ds.pair.alignment.pairs().iter().take(20) {
            assert_eq!(
                ds.pair.source.entity_name(u),
                ds.pair.target.entity_name(v),
                "identical channel with zero typo rate must preserve names"
            );
        }
    }

    #[test]
    fn distant_channel_changes_script() {
        let mut cfg = small_cfg();
        cfg.channel = NameChannel::DistantLingual;
        let ds = generate(&cfg);
        let (u, v) = ds.pair.alignment.pairs()[0];
        let s = ds.pair.source.entity_name(u).unwrap();
        let t = ds.pair.target.entity_name(v).unwrap();
        assert!(s.is_ascii());
        assert!(t.chars().any(|c| (c as u32) >= 0x4E00));
    }

    #[test]
    fn density_tracks_avg_degree() {
        let mut cfg = small_cfg();
        cfg.avg_degree = 10.0;
        cfg.overlap = 1.0;
        cfg.extra_frac = 0.0;
        let ds = generate(&cfg);
        let stats = KgStats::of(&ds.pair.source);
        assert!(
            (stats.mean_degree - 10.0).abs() < 1.5,
            "mean degree {} too far from 10",
            stats.mean_degree
        );
    }

    #[test]
    fn skew_increases_tail_fraction() {
        let mut even = small_cfg();
        even.degree_skew = 0.0;
        even.avg_degree = 6.0;
        let mut skewed = small_cfg();
        skewed.degree_skew = 0.8;
        skewed.avg_degree = 6.0;
        let tail_even = KgStats::of(&generate(&even).pair.source).tail_fraction;
        let tail_skewed = KgStats::of(&generate(&skewed).pair.source).tail_fraction;
        assert!(
            tail_skewed > tail_even,
            "skewed tail {tail_skewed} should exceed even tail {tail_even}"
        );
    }

    #[test]
    fn lexicon_coverage_controls_size() {
        let mut full = small_cfg();
        full.lexicon_coverage = 1.0;
        let mut half = small_cfg();
        half.lexicon_coverage = 0.5;
        let l_full = generate(&full).lexicon.len();
        let l_half = generate(&half).lexicon.len();
        assert!(l_half < l_full);
        assert!(l_full <= 400);
    }

    #[test]
    fn attributes_are_generated_and_noisy() {
        let ds = generate(&small_cfg());
        assert_eq!(
            ds.source_attributes.num_entities(),
            ds.pair.source.num_entities()
        );
        // Dropout must leave some entities without attributes.
        assert!(ds.source_attributes.empty_fraction() > 0.0);
        // Aligned entities should still share more attributes than random
        // pairs, on average.
        let pairs = ds.pair.alignment.pairs();
        let mut aligned_sim = 0.0f32;
        let mut random_sim = 0.0f32;
        let k = 50;
        for i in 0..k {
            let (u, v) = pairs[i];
            aligned_sim += ds.source_attributes.jaccard(u, &ds.target_attributes, v);
            let (x, _) = pairs[i];
            let (_, y) = pairs[(i + 7) % k];
            random_sim += ds.source_attributes.jaccard(x, &ds.target_attributes, y);
        }
        assert!(
            aligned_sim > random_sim,
            "aligned {aligned_sim} vs random {random_sim}"
        );
    }

    #[test]
    fn embedders_share_space_through_lexicon() {
        use ceaff_embed::{embed_name, WordEmbedder};
        let mut cfg = small_cfg();
        cfg.channel = NameChannel::DistantLingual;
        cfg.lexicon_coverage = 1.0;
        cfg.semantic_noise = 0.0;
        let ds = generate(&cfg);
        let src_emb = ds.source_embedder(32);
        let tgt_emb = ds.target_embedder(32);
        let (u, v) = ds.pair.alignment.pairs()[3];
        let sn = ds.pair.source.entity_name(u).unwrap();
        let tn = ds.pair.target.entity_name(v).unwrap();
        let sv = embed_name(&src_emb, sn);
        let tv = embed_name(&tgt_emb, tn);
        if let (Some(sv), Some(tv)) = (sv, tv) {
            let cos = ceaff_sim::cosine(&sv, &tv);
            assert!(cos > 0.9, "aligned names should embed together, cos={cos}");
        }
        let _ = tgt_emb.embed_word("zzz-unmapped");
    }
}
