//! The nine benchmark presets mirroring the paper's evaluation datasets
//! (Table II): DBP15K (ZH-EN, JA-EN, FR-EN), DBP100K (DBP-WD, DBP-YG) and
//! SRPRS (EN-FR, EN-DE, DBP-WD, DBP-YG).
//!
//! Absolute sizes are scaled down for a laptop-class single core (the
//! paper's gold standards are 15k–100k pairs); `scale = 1.0` yields 1 000
//! aligned pairs for the 15k-class datasets and 2 000 for the 100k-class
//! ones, and everything grows linearly with `scale`. What the presets
//! preserve is the *difficulty structure* the paper's analysis relies on:
//!
//! * DBP15K / DBP100K are **dense** with even degrees; SRPRS is **sparse**
//!   with a real-life heavy-tailed degree distribution (via the SRPRS
//!   degree-grouped PageRank sampling protocol) — structure-only methods
//!   degrade on SRPRS (§VII-B);
//! * ZH-EN and JA-EN are **distant** language pairs (string feature
//!   useless, semantic feature limited by lexicon coverage); FR-EN, EN-FR
//!   and EN-DE are **close** pairs (string feature strong); the mono-lingual
//!   pairs have near-identical names (string feature near-perfect, §VII-C);
//! * attribute tables are noisy and incomplete everywhere, which is why
//!   attribute-based baselines are inconsistent (§VII-B).

use crate::kggen::{generate, GenConfig, GeneratedDataset, SrprsSampling};
use crate::translate::NameChannel;
use serde::{Deserialize, Serialize};

/// The nine evaluation KG pairs of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Preset {
    /// DBP15K Chinese–English (dense, distant languages).
    Dbp15kZhEn,
    /// DBP15K Japanese–English (dense, distant languages).
    Dbp15kJaEn,
    /// DBP15K French–English (dense, close languages).
    Dbp15kFrEn,
    /// DBP100K DBpedia–Wikidata (dense, mono-lingual).
    Dbp100kDbpWd,
    /// DBP100K DBpedia–YAGO3 (dense, mono-lingual).
    Dbp100kDbpYg,
    /// SRPRS English–French (sparse/real-life, close languages).
    SrprsEnFr,
    /// SRPRS English–German (sparse/real-life, close languages).
    SrprsEnDe,
    /// SRPRS DBpedia–Wikidata (sparse/real-life, mono-lingual).
    SrprsDbpWd,
    /// SRPRS DBpedia–YAGO3 (sparse/real-life, mono-lingual).
    SrprsDbpYg,
    /// **Extension** (the paper's §VIII future work): a *challenging*
    /// mono-lingual pair where names differ by abbreviation, word drops
    /// and reordering, so the string feature no longer saturates at 1.0.
    /// Not part of the paper's nine pairs ([`Preset::ALL`]).
    HardMonoDbpWd,
}

impl Preset {
    /// All presets, in the paper's table order.
    pub const ALL: [Preset; 9] = [
        Preset::Dbp15kZhEn,
        Preset::Dbp15kJaEn,
        Preset::Dbp15kFrEn,
        Preset::Dbp100kDbpWd,
        Preset::Dbp100kDbpYg,
        Preset::SrprsEnFr,
        Preset::SrprsEnDe,
        Preset::SrprsDbpWd,
        Preset::SrprsDbpYg,
    ];

    /// The cross-lingual presets (Table III).
    pub const CROSS_LINGUAL: [Preset; 5] = [
        Preset::Dbp15kZhEn,
        Preset::Dbp15kJaEn,
        Preset::Dbp15kFrEn,
        Preset::SrprsEnFr,
        Preset::SrprsEnDe,
    ];

    /// The mono-lingual presets (Table IV).
    pub const MONO_LINGUAL: [Preset; 4] = [
        Preset::Dbp100kDbpWd,
        Preset::Dbp100kDbpYg,
        Preset::SrprsDbpWd,
        Preset::SrprsDbpYg,
    ];

    /// Extension presets beyond the paper's evaluation.
    pub const EXTENSIONS: [Preset; 1] = [Preset::HardMonoDbpWd];

    /// Display label matching the paper's dataset names.
    pub fn label(self) -> &'static str {
        match self {
            Preset::Dbp15kZhEn => "DBP15K ZH-EN",
            Preset::Dbp15kJaEn => "DBP15K JA-EN",
            Preset::Dbp15kFrEn => "DBP15K FR-EN",
            Preset::Dbp100kDbpWd => "DBP100K DBP-WD",
            Preset::Dbp100kDbpYg => "DBP100K DBP-YG",
            Preset::SrprsEnFr => "SRPRS EN-FR",
            Preset::SrprsEnDe => "SRPRS EN-DE",
            Preset::SrprsDbpWd => "SRPRS DBP-WD",
            Preset::SrprsDbpYg => "SRPRS DBP-YG",
            Preset::HardMonoDbpWd => "HARD-MONO DBP-WD",
        }
    }

    /// Whether this pair is mono-lingual.
    pub fn is_mono_lingual(self) -> bool {
        matches!(
            self,
            Preset::Dbp100kDbpWd
                | Preset::Dbp100kDbpYg
                | Preset::SrprsDbpWd
                | Preset::SrprsDbpYg
                | Preset::HardMonoDbpWd
        )
    }

    /// The generator configuration at a given `scale` (1.0 = default
    /// single-core sizes; the paper's gold-standard sizes would correspond
    /// to `scale = 15` for the 15k-class and `scale = 50` for the
    /// 100k-class datasets).
    pub fn config(self, scale: f64) -> GenConfig {
        assert!(scale > 0.0, "scale must be positive");
        let n15 = ((1000.0 * scale).round() as usize).max(50);
        let n100 = ((2000.0 * scale).round() as usize).max(50);
        let vocab = |n: usize| (2 * n).max(500);

        let dense = |n: usize| GenConfig {
            aligned_entities: n,
            extra_frac: 0.3,
            relations: 48,
            avg_degree: 9.0,
            degree_skew: 0.25,
            overlap: 0.75,
            vocab_size: vocab(n),
            srprs_sampling: None,
            ..GenConfig::default()
        };
        // The world degree is set high because the SRPRS sampling step keeps
        // only edges whose both endpoints survive: with a 2× world, roughly
        // a quarter to a third of edges survive, landing the sampled KGs
        // near the real SRPRS density (≈2.4 triples per entity) with a
        // heavy tail.
        let sparse = |n: usize| GenConfig {
            aligned_entities: n,
            extra_frac: 0.0,
            relations: 48,
            avg_degree: 14.0,
            degree_skew: 0.75,
            overlap: 0.7,
            vocab_size: vocab(n),
            srprs_sampling: Some(SrprsSampling::default()),
            ..GenConfig::default()
        };

        let mut cfg = match self {
            // Distant-pair difficulty (lexicon coverage, cross-lingual
            // noise, structural overlap) is calibrated so the full-scale
            // CEAFF accuracy lands near the paper's Table III values
            // (ZH-EN 0.795, JA-EN 0.860) with the paper's feature ordering.
            Preset::Dbp15kZhEn => GenConfig {
                name: "DBP15K ZH-EN (sim)".into(),
                channel: NameChannel::DistantLingual,
                lexicon_coverage: 0.55,
                semantic_noise: 0.27,
                overlap: 0.68,
                seed: 0x1521,
                ..dense(n15)
            },
            Preset::Dbp15kJaEn => GenConfig {
                name: "DBP15K JA-EN (sim)".into(),
                channel: NameChannel::DistantLingual,
                lexicon_coverage: 0.65,
                semantic_noise: 0.20,
                overlap: 0.72,
                seed: 0x1522,
                ..dense(n15)
            },
            Preset::Dbp15kFrEn => GenConfig {
                name: "DBP15K FR-EN (sim)".into(),
                channel: NameChannel::CloseLingual {
                    morph_rate: 0.6,
                    replace_rate: 0.22,
                },
                lexicon_coverage: 0.75,
                semantic_noise: 0.13,
                seed: 0x1523,
                ..dense(n15)
            },
            Preset::Dbp100kDbpWd => GenConfig {
                name: "DBP100K DBP-WD (sim)".into(),
                channel: NameChannel::Identical { typo_rate: 0.02 },
                lexicon_coverage: 0.95,
                semantic_noise: 0.03,
                seed: 0x1001,
                ..dense(n100)
            },
            Preset::Dbp100kDbpYg => GenConfig {
                name: "DBP100K DBP-YG (sim)".into(),
                channel: NameChannel::Identical { typo_rate: 0.05 },
                lexicon_coverage: 0.92,
                semantic_noise: 0.04,
                seed: 0x1002,
                ..dense(n100)
            },
            Preset::SrprsEnFr => GenConfig {
                name: "SRPRS EN-FR (sim)".into(),
                channel: NameChannel::CloseLingual {
                    morph_rate: 0.55,
                    replace_rate: 0.25,
                },
                lexicon_coverage: 0.72,
                semantic_noise: 0.15,
                seed: 0x5211,
                ..sparse(n15)
            },
            Preset::SrprsEnDe => GenConfig {
                name: "SRPRS EN-DE (sim)".into(),
                channel: NameChannel::CloseLingual {
                    morph_rate: 0.5,
                    replace_rate: 0.15,
                },
                lexicon_coverage: 0.78,
                semantic_noise: 0.12,
                seed: 0x5212,
                ..sparse(n15)
            },
            Preset::SrprsDbpWd => GenConfig {
                name: "SRPRS DBP-WD (sim)".into(),
                channel: NameChannel::Identical { typo_rate: 0.02 },
                lexicon_coverage: 0.95,
                semantic_noise: 0.03,
                seed: 0x5213,
                ..sparse(n15)
            },
            Preset::HardMonoDbpWd => GenConfig {
                name: "HARD-MONO DBP-WD (sim)".into(),
                channel: NameChannel::HardMonoLingual {
                    abbrev_rate: 0.3,
                    drop_rate: 0.35,
                    swap_rate: 0.25,
                },
                lexicon_coverage: 0.9,
                semantic_noise: 0.05,
                seed: 0x4a4d,
                ..sparse(n15)
            },
            Preset::SrprsDbpYg => GenConfig {
                name: "SRPRS DBP-YG (sim)".into(),
                channel: NameChannel::Identical { typo_rate: 0.04 },
                lexicon_coverage: 0.93,
                semantic_noise: 0.04,
                seed: 0x5214,
                ..sparse(n15)
            },
        };
        cfg.seed_fraction = 0.3; // the paper's 30% seed alignment
        cfg
    }

    /// Generate the dataset at `scale`.
    pub fn generate(self, scale: f64) -> GeneratedDataset {
        generate(&self.config(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_graph::stats::KgStats;

    #[test]
    fn all_presets_have_distinct_labels_and_seeds() {
        let labels: std::collections::HashSet<_> = Preset::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 9);
        let seeds: std::collections::HashSet<_> =
            Preset::ALL.iter().map(|p| p.config(1.0).seed).collect();
        assert_eq!(seeds.len(), 9);
    }

    #[test]
    fn groups_partition_correctly() {
        for p in Preset::CROSS_LINGUAL {
            assert!(!p.is_mono_lingual());
        }
        for p in Preset::MONO_LINGUAL {
            assert!(p.is_mono_lingual());
        }
        assert_eq!(
            Preset::CROSS_LINGUAL.len() + Preset::MONO_LINGUAL.len(),
            Preset::ALL.len()
        );
    }

    #[test]
    fn scale_changes_sizes_linearly() {
        let small = Preset::Dbp15kZhEn.config(0.2);
        let big = Preset::Dbp15kZhEn.config(1.0);
        assert_eq!(small.aligned_entities, 200);
        assert_eq!(big.aligned_entities, 1000);
        let mono = Preset::Dbp100kDbpWd.config(0.5);
        assert_eq!(mono.aligned_entities, 1000);
    }

    #[test]
    fn srprs_presets_are_sparser_and_heavier_tailed_than_dbp15k() {
        let dense = Preset::Dbp15kFrEn.generate(0.3);
        let sparse = Preset::SrprsEnFr.generate(0.3);
        let ds = KgStats::of(&dense.pair.source);
        let ss = KgStats::of(&sparse.pair.source);
        assert!(
            ds.mean_degree > ss.mean_degree,
            "DBP15K-sim ({}) must be denser than SRPRS-sim ({})",
            ds.mean_degree,
            ss.mean_degree
        );
        assert!(
            ss.tail_fraction > ds.tail_fraction,
            "SRPRS-sim tail {} must exceed DBP15K-sim tail {}",
            ss.tail_fraction,
            ds.tail_fraction
        );
        assert!(sparse.srprs_ks.is_some());
        assert!(dense.srprs_ks.is_none());
    }

    #[test]
    fn mono_presets_have_same_script_names() {
        let ds = Preset::SrprsDbpWd.generate(0.1);
        let (_, v) = ds.pair.alignment.pairs()[0];
        let name = ds.pair.target.entity_name(v).unwrap();
        assert!(
            name.is_ascii(),
            "mono-lingual names must stay Latin: {name}"
        );
    }
}
