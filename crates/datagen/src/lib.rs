#![warn(missing_docs)]

//! # ceaff-datagen
//!
//! Synthetic entity-alignment benchmark generation reproducing the
//! *difficulty structure* of the paper's evaluation datasets (DBP15K,
//! DBP100K, SRPRS — Table II): controllable density and degree-tail shape
//! (including the SRPRS degree-grouped random-PageRank sampling protocol
//! with Kolmogorov–Smirnov control), three name regimes (mono-lingual,
//! closely-related, distantly-related languages), imperfect bilingual
//! lexicon coverage for the semantic feature, and noisy incomplete
//! attribute tables for the attribute-based baselines.
//!
//! The entry points are the nine [`Preset`]s mirroring the paper's KG
//! pairs, or a custom [`GenConfig`] passed to [`generate`].

pub mod evolve;
pub mod kggen;
pub mod names;
pub mod presets;
pub mod sampling;
pub mod translate;

pub use evolve::{evolve, EvolveConfig, TimestampedDelta};
pub use kggen::{generate, GenConfig, GeneratedDataset, SrprsSampling};
pub use names::Vocabulary;
pub use presets::Preset;
pub use translate::NameChannel;
