//! Pivot-language vocabulary and entity-name generation.
//!
//! Entity names in the synthetic benchmarks are short sequences of words
//! drawn from a generated pivot-language vocabulary (pronounceable
//! consonant–vowel syllable words, Zipf-weighted like natural language).
//! Target-KG names are derived from these pivot names by a
//! [`crate::translate::NameChannel`].

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

const ONSETS: &[&str] = &[
    "b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "dr", "gr", "kr",
    "st", "tr", "ch", "sh",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ou"];
const CODAS: &[&str] = &["", "", "", "n", "r", "s", "l", "m", "t", "k"];

/// A generated pivot-language vocabulary with Zipf-like sampling weights.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
    /// Cumulative Zipf weights for sampling.
    cumulative: Vec<f64>,
}

impl Vocabulary {
    /// Generate `size` distinct pronounceable words.
    pub fn generate<R: Rng>(size: usize, rng: &mut R) -> Self {
        assert!(size > 0, "vocabulary must be non-empty");
        let mut seen = HashSet::with_capacity(size);
        let mut words = Vec::with_capacity(size);
        while words.len() < size {
            let syllables = rng.gen_range(2..=4);
            let mut w = String::new();
            for _ in 0..syllables {
                w.push_str(ONSETS.choose(rng).expect("non-empty"));
                w.push_str(VOWELS.choose(rng).expect("non-empty"));
                w.push_str(CODAS.choose(rng).expect("non-empty"));
            }
            if seen.insert(w.clone()) {
                words.push(w);
            }
        }
        // Zipf weights: rank r gets weight 1/r^0.8 (mildly skewed so common
        // words repeat across names without dominating).
        let mut cumulative = Vec::with_capacity(size);
        let mut total = 0.0f64;
        for r in 0..size {
            total += 1.0 / ((r + 1) as f64).powf(0.8);
            cumulative.push(total);
        }
        Self { words, cumulative }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty (never true after `generate`).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// All words in rank order.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Sample one word with Zipf weighting.
    pub fn sample<'a, R: Rng>(&'a self, rng: &mut R) -> &'a str {
        let total = *self.cumulative.last().expect("non-empty vocabulary");
        let x = rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c < x);
        &self.words[idx.min(self.words.len() - 1)]
    }
}

/// Generate `n` distinct entity names of 1–3 words each. Collisions are
/// disambiguated with a numeric suffix (mirroring Wikipedia-style
/// `Name (2)` disambiguation).
pub fn generate_entity_names<R: Rng>(vocab: &Vocabulary, n: usize, rng: &mut R) -> Vec<String> {
    let mut seen = HashSet::with_capacity(n);
    generate_entity_names_with_seen(vocab, n, rng, &mut seen)
}

/// Like [`generate_entity_names`], but drawing uniqueness against (and
/// extending) a caller-provided set — used when several name pools (aligned
/// entities plus per-KG padding entities) must stay mutually distinct.
pub fn generate_entity_names_with_seen<R: Rng>(
    vocab: &Vocabulary,
    n: usize,
    rng: &mut R,
    seen: &mut HashSet<String>,
) -> Vec<String> {
    let mut names = Vec::with_capacity(n);
    while names.len() < n {
        let words = rng.gen_range(1..=3);
        let mut name = String::new();
        for i in 0..words {
            if i > 0 {
                name.push(' ');
            }
            name.push_str(vocab.sample(rng));
        }
        let name = if seen.contains(&name) {
            let mut k = 2;
            loop {
                let candidate = format!("{name} ({k})");
                if !seen.contains(&candidate) {
                    break candidate;
                }
                k += 1;
            }
        } else {
            name
        };
        seen.insert(name.clone());
        names.push(name);
    }
    names
}

/// Generate `n` distinct relation names (single words, prefixed so they are
/// disjoint from entity names).
pub fn generate_relation_names<R: Rng>(vocab: &Vocabulary, n: usize, rng: &mut R) -> Vec<String> {
    let mut seen = HashSet::with_capacity(n);
    let mut names = Vec::with_capacity(n);
    while names.len() < n {
        let w = format!("rel_{}", vocab.sample(rng));
        let name = if seen.contains(&w) {
            format!("{w}_{}", names.len())
        } else {
            w
        };
        seen.insert(name.clone());
        names.push(name);
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn vocabulary_is_distinct_and_sized() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v = Vocabulary::generate(500, &mut rng);
        assert_eq!(v.len(), 500);
        let set: HashSet<_> = v.words().iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn words_are_lowercase_ascii() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let v = Vocabulary::generate(100, &mut rng);
        for w in v.words() {
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "word {w}");
            assert!(w.len() >= 2);
        }
    }

    #[test]
    fn zipf_sampling_prefers_low_ranks() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let v = Vocabulary::generate(200, &mut rng);
        let mut low = 0;
        for _ in 0..2000 {
            let w = v.sample(&mut rng);
            let rank = v.words().iter().position(|x| x == w).unwrap();
            if rank < 50 {
                low += 1;
            }
        }
        // Top quarter of ranks should collect well over a quarter of mass.
        assert!(low > 700, "low-rank draws: {low}");
    }

    #[test]
    fn entity_names_are_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let v = Vocabulary::generate(50, &mut rng); // small vocab forces collisions
        let names = generate_entity_names(&v, 500, &mut rng);
        assert_eq!(names.len(), 500);
        let set: HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 500, "names must be unique");
    }

    #[test]
    fn relation_names_are_distinct_and_prefixed() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let v = Vocabulary::generate(30, &mut rng);
        let names = generate_relation_names(&v, 40, &mut rng);
        let set: HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 40);
        assert!(names.iter().all(|n| n.starts_with("rel_")));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(9);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        let v1 = Vocabulary::generate(50, &mut r1);
        let v2 = Vocabulary::generate(50, &mut r2);
        assert_eq!(v1.words(), v2.words());
    }
}
