//! Evolving-KG edit streams: timestamped, replayable [`KgDelta`]
//! sequences over a generated pair — the workload of the incremental
//! alignment pipeline (`ceaff_core::delta`) and its parity gate.
//!
//! Every emitted delta is **validated against the pair state it will meet
//! during replay**: the generator applies each delta to its own copy as it
//! goes, so a stream replays cleanly from the starting pair no matter how
//! edits interact (a removed triple is never removed twice, fresh names
//! never collide). Generation is fully deterministic in
//! [`EvolveConfig::seed`].

use ceaff_graph::{DeltaOp, KgDelta, KgPair, LinkSplit, Side};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Tuning for one generated edit stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvolveConfig {
    /// Number of deltas (stream entries) to emit.
    pub steps: usize,
    /// Edit groups per delta are drawn from `1..=max_groups_per_step`
    /// (each group is one logical edit: a wired entity insertion, a
    /// triple removal, an aligned-pair addition, or a link removal).
    pub max_groups_per_step: usize,
    /// RNG seed; same seed + same pair ⇒ same stream.
    pub seed: u64,
    /// Timestamp of the first delta, Unix milliseconds.
    pub base_unix_ms: u64,
    /// Milliseconds between consecutive deltas.
    pub step_interval_ms: u64,
    /// Never shrink the test split below this many pairs.
    pub min_test_pairs: usize,
}

impl Default for EvolveConfig {
    fn default() -> Self {
        Self {
            steps: 50,
            max_groups_per_step: 3,
            seed: 7,
            base_unix_ms: 1_700_000_000_000,
            step_interval_ms: 60_000,
            min_test_pairs: 8,
        }
    }
}

/// One stream entry: a delta plus when it "happened".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimestampedDelta {
    /// 1-based position in the stream.
    pub step: usize,
    /// Event time, Unix milliseconds.
    pub at_unix_ms: u64,
    /// The edit batch itself.
    pub delta: KgDelta,
}

/// Generate a replayable edit stream over `pair`.
///
/// The mix per group: ~30% wire a fresh entity into one graph, ~25%
/// remove a random triple, ~30% add a *new aligned test pair* (same name
/// on both sides, wired into both graphs), ~15% remove a random test
/// link. Groups that happen to collide with earlier edits of the same
/// delta are skipped, never emitted invalid.
pub fn evolve(pair: &KgPair, cfg: &EvolveConfig) -> Vec<TimestampedDelta> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut cur = pair.clone();
    let mut fresh = 0usize;
    let mut stream = Vec::with_capacity(cfg.steps);
    for step in 1..=cfg.steps {
        let mut ops: Vec<DeltaOp> = Vec::new();
        let mut scratch = cur.clone();
        let groups = rng.gen_range(1..=cfg.max_groups_per_step.max(1));
        for _ in 0..groups {
            let group = random_group(&scratch, cfg, &mut rng, &mut fresh);
            if group.is_empty() {
                continue;
            }
            // Validate the group against everything already in this delta.
            match KgDelta::new(group.clone()).apply(&scratch) {
                Ok(applied) => {
                    scratch = applied.pair;
                    ops.extend(group);
                }
                Err(_) => continue,
            }
        }
        if ops.is_empty() {
            // Degenerate draw — fall back to an always-valid insertion.
            let name = fresh_name(&mut fresh);
            ops.push(DeltaOp::AddEntity {
                side: Side::Source,
                name,
                at: None,
            });
            scratch = KgDelta::new(ops.clone())
                .apply(&scratch)
                .expect("fresh entity insertion is always valid")
                .pair;
        }
        cur = scratch;
        stream.push(TimestampedDelta {
            step,
            at_unix_ms: cfg.base_unix_ms + (step as u64 - 1) * cfg.step_interval_ms,
            delta: KgDelta::new(ops),
        });
    }
    stream
}

/// A fresh, lexically distinctive entity name. Stream entities must not
/// all share a common token: blocking keys are tokens + trigrams, and a
/// shared prefix like "evolved entity N" would make every stream entity a
/// blocking candidate of every other, defeating the incremental
/// pipeline's dirty-row pruning (real KG entities rarely share a name
/// stem either).
fn fresh_name(counter: &mut usize) -> String {
    *counter += 1;
    const SYL: [&str; 24] = [
        "ba", "ce", "di", "fo", "gu", "han", "jel", "kir", "lom", "mu", "nev", "pa", "qi", "rol",
        "sut", "ta", "ved", "wi", "xo", "yun", "zam", "bri", "cor", "delt",
    ];
    let mut x = (*counter as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut word = String::new();
    for _ in 0..3 {
        word.push_str(SYL[(x % SYL.len() as u64) as usize]);
        x /= SYL.len() as u64;
    }
    format!("{word} {counter}")
}

fn side_of(pair: &KgPair, side: Side) -> &ceaff_graph::KnowledgeGraph {
    match side {
        Side::Source => &pair.source,
        Side::Target => &pair.target,
    }
}

/// Ops that intern `name` into `side` and wire it to a random existing
/// entity over a random existing relation (plus the relation itself on a
/// relation-free graph).
fn wire_entity_ops<R: Rng>(pair: &KgPair, side: Side, name: String, rng: &mut R) -> Vec<DeltaOp> {
    let kg = side_of(pair, side);
    let mut ops = vec![DeltaOp::AddEntity {
        side,
        name: name.clone(),
        at: None,
    }];
    let relation = if kg.num_relations() == 0 {
        ops.push(DeltaOp::AddRelation {
            side,
            name: "evolved relation".into(),
            at: None,
        });
        "evolved relation".to_owned()
    } else {
        let r = ceaff_graph::RelationId::new(rng.gen_range(0..kg.num_relations()) as u32);
        kg.relation_name(r).expect("interned").to_owned()
    };
    if kg.num_entities() > 0 {
        let anchor = ceaff_graph::EntityId::new(rng.gen_range(0..kg.num_entities()) as u32);
        let anchor = kg.entity_name(anchor).expect("interned").to_owned();
        let (head, tail) = if rng.gen_bool(0.5) {
            (name, anchor)
        } else {
            (anchor, name)
        };
        ops.push(DeltaOp::AddTriple {
            side,
            head,
            relation,
            tail,
            at: None,
        });
    }
    ops
}

fn random_group<R: Rng>(
    pair: &KgPair,
    cfg: &EvolveConfig,
    rng: &mut R,
    fresh: &mut usize,
) -> Vec<DeltaOp> {
    let roll: f64 = rng.gen_range(0.0..1.0);
    if roll < 0.30 {
        // Wire a fresh entity into one graph.
        let side = if rng.gen_bool(0.5) {
            Side::Source
        } else {
            Side::Target
        };
        wire_entity_ops(pair, side, fresh_name(fresh), rng)
    } else if roll < 0.55 {
        // Remove a random triple.
        let side = if rng.gen_bool(0.5) {
            Side::Source
        } else {
            Side::Target
        };
        let kg = side_of(pair, side);
        if kg.triples().is_empty() {
            return Vec::new();
        }
        let at = rng.gen_range(0..kg.triples().len());
        let t = &kg.triples()[at];
        vec![DeltaOp::RemoveTriple {
            side,
            head: kg.entity_name(t.head).expect("interned").to_owned(),
            relation: kg.relation_name(t.relation).expect("interned").to_owned(),
            tail: kg.entity_name(t.tail).expect("interned").to_owned(),
            at: Some(at as u32),
        }]
    } else if roll < 0.85 {
        // A brand-new aligned test pair: the same name interned on both
        // sides (string/semantic features can see the correspondence),
        // each wired into its graph, linked in the test split.
        let name = fresh_name(fresh);
        let mut ops = wire_entity_ops(pair, Side::Source, name.clone(), rng);
        ops.extend(wire_entity_ops(pair, Side::Target, name.clone(), rng));
        ops.push(DeltaOp::AddLink {
            source: name.clone(),
            target: name,
            split: Some(LinkSplit::Test),
            alignment_at: None,
            split_at: None,
        });
        ops
    } else {
        // Retire a random test link (but never shrink below the floor).
        let tests = pair.test_pairs();
        if tests.len() <= cfg.min_test_pairs {
            return Vec::new();
        }
        let (u, v) = tests[rng.gen_range(0..tests.len())];
        vec![DeltaOp::RemoveLink {
            source: pair.source.entity_name(u).expect("interned").to_owned(),
            target: pair.target.entity_name(v).expect("interned").to_owned(),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GenConfig, NameChannel};

    fn small_pair() -> KgPair {
        generate(&GenConfig {
            aligned_entities: 60,
            channel: NameChannel::Identical { typo_rate: 0.05 },
            ..GenConfig::default()
        })
        .pair
    }

    #[test]
    fn streams_replay_cleanly_and_are_deterministic() {
        let pair = small_pair();
        let cfg = EvolveConfig {
            steps: 20,
            ..EvolveConfig::default()
        };
        let a = evolve(&pair, &cfg);
        let b = evolve(&pair, &cfg);
        assert_eq!(a, b, "same seed must give the same stream");
        assert_eq!(a.len(), 20);
        let mut cur = pair;
        for (i, td) in a.iter().enumerate() {
            assert_eq!(td.step, i + 1);
            cur = td
                .delta
                .apply(&cur)
                .unwrap_or_else(|e| panic!("step {} must replay: {e}", td.step))
                .pair;
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let pair = small_pair();
        let cfg = EvolveConfig {
            steps: 10,
            ..EvolveConfig::default()
        };
        let stream = evolve(&pair, &cfg);
        for w in stream.windows(2) {
            assert!(w[0].at_unix_ms < w[1].at_unix_ms);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let pair = small_pair();
        let a = evolve(&pair, &EvolveConfig::default());
        let b = evolve(
            &pair,
            &EvolveConfig {
                seed: 8,
                ..EvolveConfig::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn test_split_never_drops_below_floor() {
        let pair = small_pair();
        let cfg = EvolveConfig {
            steps: 40,
            min_test_pairs: 8,
            ..EvolveConfig::default()
        };
        let mut cur = pair;
        for td in evolve(&cur.clone(), &cfg) {
            cur = td.delta.apply(&cur).expect("replays").pair;
            assert!(cur.test_pairs().len() >= 8);
        }
    }
}
