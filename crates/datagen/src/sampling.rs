//! The SRPRS benchmark construction protocol (paper §VII-A).
//!
//! Guo et al. built SRPRS by (1) dividing the entities of a large KG into
//! groups by degree, (2) performing random PageRank sampling within each
//! group, and (3) controlling the difference between the sampled and the
//! original degree distribution with a Kolmogorov–Smirnov test. This module
//! implements that protocol over our [`KnowledgeGraph`]s: the SRPRS presets
//! grow an oversized world graph and sample it down with
//! [`srprs_sample`], so the sampled KGs keep the heavy-tailed, real-life
//! degree shape that makes SRPRS harder than DBP15K for structural methods.

use ceaff_graph::stats::{degree_sequence, ks_statistic, pagerank};
use ceaff_graph::{EntityId, KnowledgeGraph, Triple};
use rand::Rng;

/// The subgraph of `kg` induced by `keep` (triples with both endpoints
/// kept). Returns the new graph plus the kept entities' new ids, parallel
/// to `keep`. Entity and relation names are preserved.
pub fn induced_subgraph(kg: &KnowledgeGraph, keep: &[EntityId]) -> (KnowledgeGraph, Vec<EntityId>) {
    let mut out = KnowledgeGraph::new();
    let mut old_to_new: Vec<Option<EntityId>> = vec![None; kg.num_entities()];
    let mut new_ids = Vec::with_capacity(keep.len());
    for &e in keep {
        let name = kg.entity_name(e).expect("kept entity is interned");
        let id = out.add_entity(name);
        old_to_new[e.index()] = Some(id);
        new_ids.push(id);
    }
    for t in kg.triples() {
        if let (Some(h), Some(ta)) = (old_to_new[t.head.index()], old_to_new[t.tail.index()]) {
            let rname = kg.relation_name(t.relation).expect("interned relation");
            let r = out.add_relation(rname);
            out.add_triple(Triple::new(h, r, ta))
                .expect("remapped ids are valid");
        }
    }
    (out, new_ids)
}

/// Degree-grouped random PageRank sampling: entities are bucketed by
/// `floor(log2(degree + 1))`, and each bucket contributes its proportional
/// share of `target_n` entities, drawn without replacement with probability
/// proportional to PageRank (the efficient exponential-clocks method).
pub fn degree_grouped_pagerank_sample<R: Rng>(
    kg: &KnowledgeGraph,
    target_n: usize,
    rng: &mut R,
) -> Vec<EntityId> {
    assert!(
        target_n <= kg.num_entities(),
        "cannot sample {target_n} from {} entities",
        kg.num_entities()
    );
    let pr = pagerank(kg, 0.85, 50, 1e-9);
    // Bucket by log-degree.
    let mut buckets: Vec<Vec<EntityId>> = Vec::new();
    for e in kg.entity_ids() {
        let b = (kg.degree(e) as f64 + 1.0).log2().floor() as usize;
        while buckets.len() <= b {
            buckets.push(Vec::new());
        }
        buckets[b].push(e);
    }
    let n_total = kg.num_entities() as f64;
    let mut chosen = Vec::with_capacity(target_n);
    for bucket in &buckets {
        if bucket.is_empty() {
            continue;
        }
        let share = ((bucket.len() as f64 / n_total) * target_n as f64).round() as usize;
        let share = share.min(bucket.len());
        if share == 0 {
            continue;
        }
        // Weighted sampling without replacement: key = U^(1/w), take top-k.
        let mut keyed: Vec<(f64, EntityId)> = bucket
            .iter()
            .map(|&e| {
                let w = pr[e.index()].max(1e-12);
                let u: f64 = rng.gen_range(1e-12..1.0);
                (u.powf(1.0 / w), e)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
        chosen.extend(keyed.into_iter().take(share).map(|(_, e)| e));
    }
    // Rounding may leave us short or long of target_n; trim or top up
    // uniformly from the remainder.
    if chosen.len() > target_n {
        chosen.truncate(target_n);
    } else {
        let have: std::collections::HashSet<_> = chosen.iter().copied().collect();
        let mut rest: Vec<EntityId> = kg.entity_ids().filter(|e| !have.contains(e)).collect();
        while chosen.len() < target_n {
            let i = rng.gen_range(0..rest.len());
            chosen.push(rest.swap_remove(i));
        }
    }
    chosen
}

/// Error returned when no sample passes the K-S control.
#[derive(Debug)]
pub struct SamplingFailed {
    /// Best (lowest) K-S statistic among the attempts.
    pub best_ks: f64,
    /// The threshold that was required.
    pub max_ks: f64,
}

impl std::fmt::Display for SamplingFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no sample met the K-S threshold {} (best attempt: {})",
            self.max_ks, self.best_ks
        )
    }
}

impl std::error::Error for SamplingFailed {}

/// Full SRPRS sampling: repeat degree-grouped PageRank sampling until the
/// sampled degree distribution passes the two-sample K-S test against the
/// original (`ks ≤ max_ks`), up to `attempts` tries. Returns the induced
/// subgraph, the kept old-id list, and the achieved K-S statistic.
pub fn srprs_sample<R: Rng>(
    kg: &KnowledgeGraph,
    target_n: usize,
    max_ks: f64,
    attempts: usize,
    rng: &mut R,
) -> Result<(KnowledgeGraph, Vec<EntityId>, f64), SamplingFailed> {
    let original = degree_sequence(kg);
    let mut best: Option<(KnowledgeGraph, Vec<EntityId>, f64)> = None;
    for _ in 0..attempts.max(1) {
        let keep = degree_grouped_pagerank_sample(kg, target_n, rng);
        let (sub, _) = induced_subgraph(kg, &keep);
        let ks = ks_statistic(&original, &degree_sequence(&sub));
        let better = best.as_ref().is_none_or(|(_, _, b)| ks < *b);
        if better {
            best = Some((sub, keep, ks));
        }
        if ks <= max_ks {
            break;
        }
    }
    let (sub, keep, ks) = best.expect("at least one attempt ran");
    if ks <= max_ks {
        Ok((sub, keep, ks))
    } else {
        Err(SamplingFailed {
            best_ks: ks,
            max_ks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kggen::{generate, GenConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn world() -> KnowledgeGraph {
        let cfg = GenConfig {
            aligned_entities: 600,
            avg_degree: 6.0,
            degree_skew: 0.7,
            overlap: 1.0,
            extra_frac: 0.0,
            vocab_size: 800,
            ..GenConfig::default()
        };
        generate(&cfg).pair.source
    }

    #[test]
    fn induced_subgraph_keeps_only_internal_triples() {
        let mut kg = KnowledgeGraph::new();
        kg.add_fact("a", "r", "b");
        kg.add_fact("b", "r", "c");
        kg.add_fact("c", "r", "a");
        let a = kg.entity_id("a").unwrap();
        let b = kg.entity_id("b").unwrap();
        let (sub, ids) = induced_subgraph(&kg, &[a, b]);
        assert_eq!(sub.num_entities(), 2);
        assert_eq!(sub.num_triples(), 1); // only a->b survives
        assert_eq!(sub.entity_name(ids[0]), Some("a"));
        assert_eq!(sub.entity_name(ids[1]), Some("b"));
    }

    #[test]
    fn sample_has_requested_size() {
        let kg = world();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let keep = degree_grouped_pagerank_sample(&kg, 200, &mut rng);
        assert_eq!(keep.len(), 200);
        let set: std::collections::HashSet<_> = keep.iter().collect();
        assert_eq!(set.len(), 200, "sampling must be without replacement");
    }

    #[test]
    fn srprs_sample_controls_ks() {
        let kg = world();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (sub, keep, ks) = srprs_sample(&kg, 300, 0.25, 10, &mut rng)
            .expect("a K-S-controlled sample should exist at this threshold");
        assert_eq!(sub.num_entities(), 300);
        assert_eq!(keep.len(), 300);
        assert!(ks <= 0.25, "reported ks {ks}");
    }

    #[test]
    fn impossible_threshold_reports_best() {
        let kg = world();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let err = srprs_sample(&kg, 50, 0.0, 2, &mut rng).unwrap_err();
        assert!(err.best_ks > 0.0);
        assert!(err.to_string().contains("K-S"));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let kg = world();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let _ = degree_grouped_pagerank_sample(&kg, 10_000, &mut rng);
    }
}
