//! Name channels: how target-KG entity names derive from pivot names.
//!
//! The paper's nine KG pairs fall into three name regimes, which drive
//! which features work where (§VII-B, §VII-C):
//!
//! * **mono-lingual** (DBP-WD, DBP-YG): names nearly identical — the string
//!   feature is "extremely effective" (accuracy 1.0 with it, ~0.9 without);
//! * **closely-related languages** (FR-EN, EN-FR, EN-DE): words are
//!   recognisable variants — string still strong, semantics strong;
//! * **distantly-related languages** (ZH-EN, JA-EN): different scripts —
//!   string useless, semantics dependent on cross-lingual word coverage.
//!
//! Every transform here is *deterministic per word* (keyed by a hash of the
//! word), so the same word translates identically everywhere it occurs, and
//! the word-level translation table doubles as the synthetic bilingual
//! lexicon for the semantic feature.

use serde::{Deserialize, Serialize};

/// How target names are derived from pivot names.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NameChannel {
    /// Mono-lingual: identical words except for rare typos/format noise.
    Identical {
        /// Per-word probability of one small character edit.
        typo_rate: f64,
    },
    /// Closely-related language: per-word morphological perturbation
    /// (suffixes, vowel shifts, consonant swaps) applied at `morph_rate`,
    /// and full lexical replacement at `replace_rate` — closely-related
    /// languages share many cognates but also have entirely different
    /// words ("king" → "roi"), which is what actually limits the string
    /// feature on EN-FR/EN-DE (paper Table V).
    CloseLingual {
        /// Per-word probability of being morphed (unmorphed words pass
        /// through unchanged, as cognates do).
        morph_rate: f64,
        /// Per-word probability of being replaced by an unrelated word
        /// (checked before `morph_rate`).
        replace_rate: f64,
    },
    /// Distantly-related language: every word is rewritten into a disjoint
    /// (CJK) script, destroying string similarity entirely.
    DistantLingual,
    /// The paper's future-work "more challenging mono-lingual EA
    /// benchmark" (§VIII): same language, but names differ by
    /// abbreviation, word dropping and word reordering — the regimes where
    /// a plain Levenshtein ratio stops saturating at 1.0.
    HardMonoLingual {
        /// Per-word probability of being abbreviated to its initial.
        abbrev_rate: f64,
        /// Per-name probability of dropping one non-initial word.
        drop_rate: f64,
        /// Per-name probability of swapping the first two words.
        swap_rate: f64,
    },
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Uniform in [0,1) derived from a word and a salt.
fn word_unit(word: &str, salt: u64) -> f64 {
    let h = fnv1a(word.as_bytes()) ^ salt.wrapping_mul(0x9e3779b97f4a7c15);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

const VOWELS: &[char] = &['a', 'e', 'i', 'o', 'u'];

fn apply_typo(word: &str, h: u64) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 3 {
        return word.to_owned();
    }
    let pos = 1 + (h as usize) % (chars.len() - 2);
    let mut out: Vec<char> = chars.clone();
    match (h >> 8) % 3 {
        0 => {
            out.remove(pos); // deletion
        }
        1 => out.swap(pos, pos + 1),      // transposition
        _ => out.insert(pos, chars[pos]), // duplication
    }
    out.into_iter().collect()
}

fn morph_word(word: &str, h: u64) -> String {
    let mut out: String = word.to_owned();
    // 1) consonant shift.
    match (h >> 4) % 4 {
        0 => out = out.replace('k', "c"),
        1 => out = out.replace('s', "z"),
        2 => out = out.replace('f', "ph"),
        _ => out = out.replace("sh", "sch"),
    }
    // 2) vowel shift on the last vowel.
    if let Some((idx, c)) = out.char_indices().rev().find(|&(_, c)| VOWELS.contains(&c)) {
        let vi = VOWELS.iter().position(|&v| v == c).expect("vowel");
        let replacement = VOWELS[(vi + 1 + (h as usize >> 16) % 3) % VOWELS.len()];
        out.replace_range(idx..idx + c.len_utf8(), &replacement.to_string());
    }
    // 3) suffix.
    const SUFFIXES: &[&str] = &["", "e", "en", "re", "o", "ia"];
    out.push_str(SUFFIXES[(h as usize >> 24) % SUFFIXES.len()]);
    out
}

/// A pseudo-word sharing no intended surface form with the source word —
/// the non-cognate replacement of the close-lingual channel.
fn replacement_word(h: u64) -> String {
    const ONSETS: &[&str] = &[
        "b", "ch", "d", "f", "g", "j", "l", "m", "n", "p", "qu", "r", "s", "t", "v",
    ];
    const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ou", "eau", "ie"];
    let mut state = h ^ 0x7265706c;
    let mut next = || {
        state = state
            .wrapping_mul(0x5851f42d4c957f2d)
            .wrapping_add(0x14057b7ef767814f);
        (state >> 33) as usize
    };
    let syllables = 2 + next() % 2;
    let mut out = String::new();
    for _ in 0..syllables {
        out.push_str(ONSETS[next() % ONSETS.len()]);
        out.push_str(VOWELS[next() % VOWELS.len()]);
    }
    out
}

fn cjk_word(word: &str, h: u64) -> String {
    // 1–4 codepoints from the CJK Unified Ideographs block, keyed on the
    // word hash so the mapping is a consistent "dictionary". The length is
    // hash-driven (not derived from the source word), so no Latin↔CJK
    // length correlation leaks into the string feature — real translation
    // does not preserve word lengths.
    let n = 1 + (h % 4) as usize;
    let mut out = String::new();
    let mut state = h;
    for _ in 0..n {
        state = state
            .wrapping_mul(0x5851f42d4c957f2d)
            .wrapping_add(0x14057b7ef767814f);
        let cp = 0x4E00 + (state >> 33) % 2500;
        out.push(char::from_u32(cp as u32).expect("CJK block codepoint"));
    }
    let _ = word;
    out
}

impl NameChannel {
    /// Translate a single pivot word. Deterministic: equal inputs always
    /// produce equal outputs, so the induced word mapping is a function.
    pub fn translate_word(&self, word: &str, salt: u64) -> String {
        let h = fnv1a(word.as_bytes()) ^ salt;
        match *self {
            NameChannel::Identical { typo_rate } => {
                if word_unit(word, salt ^ 0x7970) < typo_rate {
                    apply_typo(word, h)
                } else {
                    word.to_owned()
                }
            }
            NameChannel::CloseLingual {
                morph_rate,
                replace_rate,
            } => {
                if word_unit(word, salt ^ 0x7265) < replace_rate {
                    replacement_word(h)
                } else if word_unit(word, salt ^ 0x6d6f) < morph_rate {
                    morph_word(word, h)
                } else {
                    word.to_owned()
                }
            }
            NameChannel::DistantLingual => cjk_word(word, h),
            NameChannel::HardMonoLingual { abbrev_rate, .. } => {
                if word_unit(word, salt ^ 0x6162) < abbrev_rate {
                    let mut it = word.chars();
                    match it.next() {
                        Some(c) => format!("{c}."),
                        None => word.to_owned(),
                    }
                } else {
                    word.to_owned()
                }
            }
        }
    }

    /// Translate a whole (space-separated) name word by word. Parenthesised
    /// disambiguation suffixes (`"(2)"`) are preserved verbatim for
    /// same-script channels and transliterated into the target script for
    /// distant ones (a Chinese title does not carry a Latin suffix).
    pub fn translate_name(&self, name: &str, salt: u64) -> String {
        let mut words: Vec<String> = name
            .split(' ')
            .map(|word| {
                if word.starts_with('(') && self.same_script() {
                    word.to_owned()
                } else {
                    self.translate_word(word, salt)
                }
            })
            .collect();
        if let NameChannel::HardMonoLingual {
            drop_rate,
            swap_rate,
            ..
        } = *self
        {
            // Name-level perturbations, keyed on the whole name so they
            // are deterministic per entity.
            let content = words.iter().filter(|w| !w.starts_with('(')).count();
            if content >= 2 && word_unit(name, salt ^ 0x64726f70) < drop_rate {
                // Drop the last content word (keep the head word: real
                // title truncation drops qualifiers, not subjects).
                if let Some(pos) = words.iter().rposition(|w| !w.starts_with('(')) {
                    if pos > 0 {
                        words.remove(pos);
                    }
                }
            }
            if words.len() >= 2
                && !words[1].starts_with('(')
                && word_unit(name, salt ^ 0x73776170) < swap_rate
            {
                words.swap(0, 1);
            }
        }
        words.join(" ")
    }

    /// Whether this channel leaves the script Latin (string feature viable).
    pub fn same_script(&self) -> bool {
        !matches!(self, NameChannel::DistantLingual)
    }

    /// Whether this is the hard mono-lingual (future-work) channel.
    pub fn is_hard_mono(&self) -> bool {
        matches!(self, NameChannel::HardMonoLingual { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceaff_sim::levenshtein_ratio;

    #[test]
    fn identical_channel_mostly_passes_through() {
        let ch = NameChannel::Identical { typo_rate: 0.0 };
        assert_eq!(ch.translate_name("gavora benat", 1), "gavora benat");
    }

    #[test]
    fn typos_keep_names_recognisable() {
        let ch = NameChannel::Identical { typo_rate: 1.0 };
        let out = ch.translate_name("gavora benatil", 1);
        assert_ne!(out, "gavora benatil");
        assert!(
            levenshtein_ratio("gavora benatil", &out) > 0.75,
            "got {out}"
        );
    }

    #[test]
    fn close_lingual_is_similar_but_not_identical() {
        let ch = NameChannel::CloseLingual {
            morph_rate: 1.0,
            replace_rate: 0.0,
        };
        let out = ch.translate_name("gavora benatil", 3);
        assert_ne!(out, "gavora benatil");
        let r = levenshtein_ratio("gavora benatil", &out);
        assert!(r > 0.5, "close-lingual too destructive: {out} (r={r})");
        assert!(r < 1.0);
    }

    #[test]
    fn distant_lingual_destroys_string_similarity() {
        let ch = NameChannel::DistantLingual;
        let out = ch.translate_name("gavora benatil", 3);
        // Only the separating space can match, so the ratio stays tiny.
        let r = levenshtein_ratio("gavora benatil", &out);
        assert!(
            r <= 0.15,
            "distant names must not share script: {out} (r={r})"
        );
        assert!(out.chars().any(|c| (0x4E00..=0x9FFF).contains(&(c as u32))));
    }

    #[test]
    fn translation_is_deterministic_per_word() {
        for ch in [
            NameChannel::Identical { typo_rate: 0.5 },
            NameChannel::CloseLingual {
                morph_rate: 0.7,
                replace_rate: 0.0,
            },
            NameChannel::DistantLingual,
        ] {
            let a = ch.translate_word("gavora", 42);
            let b = ch.translate_word("gavora", 42);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_words_map_to_different_cjk() {
        let ch = NameChannel::DistantLingual;
        let a = ch.translate_word("gavora", 1);
        let b = ch.translate_word("benatil", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn disambiguation_suffix_preserved_only_within_script() {
        let close = NameChannel::CloseLingual {
            morph_rate: 1.0,
            replace_rate: 0.0,
        };
        let out = close.translate_name("gavora (2)", 1);
        assert!(out.ends_with(" (2)"), "got {out}");
        let distant = NameChannel::DistantLingual;
        let out = distant.translate_name("gavora (2)", 1);
        assert!(
            !out.contains("(2)"),
            "distant suffix must transliterate: {out}"
        );
    }

    #[test]
    fn hard_mono_abbreviates_words() {
        let ch = NameChannel::HardMonoLingual {
            abbrev_rate: 1.0,
            drop_rate: 0.0,
            swap_rate: 0.0,
        };
        assert_eq!(ch.translate_name("gavora benat", 1), "g. b.");
        assert!(ch.same_script());
        assert!(ch.is_hard_mono());
    }

    #[test]
    fn hard_mono_drops_trailing_content_word() {
        let ch = NameChannel::HardMonoLingual {
            abbrev_rate: 0.0,
            drop_rate: 1.0,
            swap_rate: 0.0,
        };
        assert_eq!(ch.translate_name("gavora benat triskel", 1), "gavora benat");
        // Single-word names cannot drop.
        assert_eq!(ch.translate_name("gavora", 1), "gavora");
        // Disambiguation suffixes are not content words.
        assert_eq!(ch.translate_name("gavora (2)", 1), "gavora (2)");
    }

    #[test]
    fn hard_mono_swaps_leading_words() {
        let ch = NameChannel::HardMonoLingual {
            abbrev_rate: 0.0,
            drop_rate: 0.0,
            swap_rate: 1.0,
        };
        assert_eq!(ch.translate_name("gavora benat", 1), "benat gavora");
        assert_eq!(ch.translate_name("solo", 1), "solo");
    }

    #[test]
    fn hard_mono_is_deterministic() {
        let ch = NameChannel::HardMonoLingual {
            abbrev_rate: 0.5,
            drop_rate: 0.5,
            swap_rate: 0.5,
        };
        assert_eq!(
            ch.translate_name("gavora benat triskel", 7),
            ch.translate_name("gavora benat triskel", 7)
        );
    }

    #[test]
    fn salt_changes_the_mapping() {
        let ch = NameChannel::DistantLingual;
        assert_ne!(
            ch.translate_word("gavora", 1),
            ch.translate_word("gavora", 2)
        );
    }
}
