//! Property-based invariants of the synthetic benchmark generator.

use ceaff_datagen::{generate, GenConfig, NameChannel, Preset};
use proptest::prelude::*;

fn small_config(
    aligned: usize,
    avg_degree: f64,
    skew: f64,
    overlap: f64,
    channel: NameChannel,
    seed: u64,
) -> GenConfig {
    GenConfig {
        aligned_entities: aligned,
        extra_frac: 0.2,
        avg_degree,
        degree_skew: skew,
        overlap,
        channel,
        vocab_size: 300,
        seed,
        ..GenConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Structural invariants hold for arbitrary generator parameters:
    /// alignment is a bijection over the aligned prefix, triples reference
    /// valid entities (guaranteed by construction, checked via counts),
    /// and the seed/test split partitions the gold standard.
    #[test]
    fn generated_datasets_are_well_formed(
        aligned in 30usize..120,
        avg_degree in 3.0f64..10.0,
        skew in 0.0f64..0.9,
        overlap in 0.4f64..1.0,
        seed in 0u64..1000,
        channel_pick in 0usize..3,
    ) {
        let channel = match channel_pick {
            0 => NameChannel::Identical { typo_rate: 0.05 },
            1 => NameChannel::CloseLingual { morph_rate: 0.5, replace_rate: 0.2 },
            _ => NameChannel::DistantLingual,
        };
        let cfg = small_config(aligned, avg_degree, skew, overlap, channel, seed);
        let ds = generate(&cfg);
        let pair = &ds.pair;

        // Gold standard size and split partition.
        prop_assert_eq!(pair.alignment.len(), aligned);
        prop_assert_eq!(pair.seeds().len() + pair.test_pairs().len(), aligned);

        // Alignment ids lie in the aligned prefix (build_view interned them
        // first) and are unique on both sides.
        let mut src: Vec<_> = pair.alignment.pairs().iter().map(|&(u, _)| u).collect();
        let mut tgt: Vec<_> = pair.alignment.pairs().iter().map(|&(_, v)| v).collect();
        src.sort_unstable();
        src.dedup();
        tgt.sort_unstable();
        tgt.dedup();
        prop_assert_eq!(src.len(), aligned);
        prop_assert_eq!(tgt.len(), aligned);
        prop_assert!(src.iter().all(|e| e.index() < aligned));
        prop_assert!(tgt.iter().all(|e| e.index() < aligned));

        // Entity counts include the padding entities.
        let expected = aligned + ((aligned as f64) * cfg.extra_frac).round() as usize;
        prop_assert_eq!(pair.source.num_entities(), expected);
        prop_assert_eq!(pair.target.num_entities(), expected);

        // Attribute tables cover all entities.
        prop_assert_eq!(ds.source_attributes.num_entities(), pair.source.num_entities());
        prop_assert_eq!(ds.target_attributes.num_entities(), pair.target.num_entities());

        // Determinism: the same config generates the same dataset.
        let again = generate(&cfg);
        prop_assert_eq!(again.pair.source.num_triples(), pair.source.num_triples());
        prop_assert_eq!(again.pair.seeds(), pair.seeds());
    }

    /// The lexicon never maps a word that the channel could not have
    /// produced: every key is the channel translation of some vocabulary
    /// word (spot-checked via round-trip through the pivot).
    #[test]
    fn lexicon_entries_are_channel_consistent(seed in 0u64..200) {
        let cfg = small_config(
            40,
            6.0,
            0.3,
            0.8,
            NameChannel::DistantLingual,
            seed,
        );
        let ds = generate(&cfg);
        let salt = cfg.seed ^ 0x6368616e;
        for (foreign, pivot) in ds.lexicon.iter().take(50) {
            prop_assert_eq!(
                cfg.channel.translate_word(pivot, salt),
                foreign,
                "lexicon key must be the channel image of its pivot"
            );
        }
    }
}

#[test]
fn every_preset_generates_at_tiny_scale() {
    for preset in Preset::ALL.iter().chain(Preset::EXTENSIONS.iter()) {
        let ds = preset.generate(0.06);
        assert!(
            ds.pair.alignment.len() >= 50,
            "{}: gold too small",
            preset.label()
        );
        assert!(!ds.pair.seeds().is_empty(), "{}", preset.label());
        assert!(!ds.pair.test_pairs().is_empty(), "{}", preset.label());
    }
}
