#![warn(missing_docs)]

//! # ceaff-faultinject
//!
//! Test-support fault injection for the CEAFF fault-tolerance layer. The
//! production code calls the cheap hooks in this crate at its recovery
//! points (epoch boundaries of the GCN training loop, TSV loader opens,
//! the alignment server's request handlers); the hooks do nothing unless
//! a fault plan is active, so every recovery path can be exercised by
//! real tests without `#[cfg(test)]` seams in the pipeline itself.
//!
//! Three ways to arm a plan, innermost wins:
//!
//! * **Thread-scoped** — build a [`FaultPlan`] and call
//!   [`FaultPlan::activate_local`]. The plan is armed *only for the
//!   current thread* until the returned [`LocalFaultScope`] drops, with
//!   its own one-shot latches. This is the per-request mode: the
//!   alignment server arms a fresh plan on the worker thread for the
//!   duration of one chaotic request, so concurrent requests never race
//!   on shared latch state the way a process-global plan would.
//! * **Process-global programmatic** — build a [`FaultPlan`] and call
//!   [`FaultPlan::activate`]. The returned [`FaultScope`] guard holds a
//!   global lock (so concurrent tests serialize) and disarms the plan on
//!   drop.
//! * **Environment** — set `CEAFF_FI_*` variables before the process
//!   starts (read once per process; this remains the default when no
//!   programmatic plan is armed). This is how the kill-and-resume e2e
//!   test drives a *child* process into a mid-training abort:
//!   - `CEAFF_FI_ABORT_AT_EPOCH=N` — `std::process::abort()` when the
//!     training loop reaches epoch `N` (simulates SIGKILL mid-run),
//!   - `CEAFF_FI_FAIL_TRAIN_AT_EPOCH=N` — the training loop returns a
//!     typed error at epoch `N` (graceful simulated crash, one-shot),
//!   - `CEAFF_FI_SIGINT_AT_EPOCH=N` — raise SIGINT against the process
//!     itself when the training loop reaches epoch `N` (one-shot; unix
//!     only), driving a real signal through the CLI's cancel handler,
//!   - `CEAFF_FI_SIGTERM_AT_EPOCH=N` — the SIGTERM sibling, driving the
//!     CLI's terminate-with-partial-results path deterministically,
//!   - `CEAFF_FI_NAN_LOSS_EPOCH=N` — force a NaN loss at epoch `N`
//!     (one-shot),
//!   - `CEAFF_FI_NAN_LOSS_ALWAYS=1` — force a NaN loss every epoch,
//!   - `CEAFF_FI_IO_ERROR_MATCH=SUBSTR` — hooked file reads whose path
//!     contains `SUBSTR` fail with an injected `io::Error`,
//!   - `CEAFF_FI_CRASH_AT_WRITE=N` — `std::process::abort()` at the
//!     `N`-th [`durable_write`] event (1-based), simulating a power cut
//!     at any WAL append, fsync, snapshot write, or rename,
//!   - `CEAFF_FI_TORN_WRITE=OFF` or `N:OFF` — tear the `N`-th (default
//!     first) append-class [`durable_write`] event `OFF` bytes in: the
//!     caller truncates the in-flight record at that offset and aborts,
//!     leaving a torn tail the recovery path must detect and drop.
//!
//! The request-level hooks ([`panic_point`], [`sleep_point`],
//! [`nan_point`]) exist for the serving path: a caught worker panic, an
//! injected latency spike, and a forced non-finite score respectively.
//! They match on a *point name* rather than an epoch because requests
//! have no epoch structure.
//!
//! [`truncate_file`] and [`flip_byte`] round the harness out for
//! corrupted-checkpoint tests.

use std::cell::RefCell;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What faults to inject, and where.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Abort the whole process (no unwinding — like SIGKILL) when the
    /// training loop reaches this epoch.
    pub abort_at_epoch: Option<usize>,
    /// Make the training loop return a typed error when it reaches this
    /// epoch — a graceful simulated crash, testable in-process (one-shot).
    pub fail_train_at_epoch: Option<usize>,
    /// Raise SIGINT against the current process when the training loop
    /// reaches this epoch (one-shot; unix only) — exercises a real signal
    /// delivery through whatever handler the binary installed.
    pub sigint_at_epoch: Option<usize>,
    /// Raise SIGTERM against the current process when the training loop
    /// reaches this epoch (one-shot; unix only) — the supervisor-initiated
    /// sibling of [`FaultPlan::sigint_at_epoch`].
    pub sigterm_at_epoch: Option<usize>,
    /// Force a non-finite loss at this epoch (one-shot), exercising the
    /// rollback + learning-rate-halving recovery.
    pub nan_loss_at_epoch: Option<usize>,
    /// Force a non-finite loss at *every* epoch, exhausting the bounded
    /// retries into `NumericDivergence`.
    pub nan_loss_always: bool,
    /// Fail any hooked I/O whose path contains this substring.
    pub io_error_substring: Option<String>,
    /// Panic at the named [`panic_point`] (one-shot). The serving path
    /// wraps request handlers in `catch_unwind`, so this exercises the
    /// worker-panic → typed-500 conversion without poisoning warm state.
    pub panic_at_point: Option<String>,
    /// Sleep for the given milliseconds at the named [`sleep_point`]
    /// (one-shot) — an injected latency spike that drives a per-request
    /// deadline into graceful degradation.
    pub sleep_at_point: Option<(String, u64)>,
    /// Report `true` from the named [`nan_point`] (one-shot), telling the
    /// caller to corrupt its in-flight scores with a NaN so the numeric
    /// guards must catch it.
    pub nan_at_point: Option<String>,
    /// Abort the process at the `n`-th [`durable_write`] event (1-based,
    /// counted across all labels within the armed scope) — a power cut
    /// injected at an exact WAL append / fsync / snapshot write / rename.
    pub crash_at_write: Option<usize>,
    /// Tear the `n`-th append-class [`durable_write`] event: the hook
    /// returns [`WriteFault::Torn`] with the byte offset, and the caller
    /// is expected to truncate its in-flight record there and abort,
    /// leaving a partial frame on disk.
    pub torn_write: Option<(usize, u64)>,
}

/// Decision returned by [`durable_write`]: what fault, if any, the armed
/// plan injects at this write event. The *caller* performs the abort (for
/// `Crash`, immediately; for `Torn`, after truncating its in-flight
/// record at the given offset) so that unit tests can observe decisions
/// without dying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// No fault at this event.
    None,
    /// Simulated power cut: the caller must `std::process::abort()`
    /// without completing the write.
    Crash,
    /// Torn write: the caller must truncate the record it just wrote to
    /// this many bytes past the record start, then abort.
    Torn(u64),
}

/// One-shot latch state owned by whichever scope armed the plan, so a
/// thread-local scope never races a global one (and consecutive scopes
/// start fresh).
#[derive(Debug, Default)]
struct Latches {
    fail_train: AtomicBool,
    nan: AtomicBool,
    sigint: AtomicBool,
    sigterm: AtomicBool,
    panic: AtomicBool,
    sleep: AtomicBool,
    nan_point: AtomicBool,
    /// Durable-write events seen by this scope (all labels).
    writes: AtomicUsize,
    /// Append-class durable-write events seen by this scope.
    appends: AtomicUsize,
}

impl Latches {
    /// Fire a one-shot latch: `true` the first time, `false` after.
    fn fire(latch: &AtomicBool) -> bool {
        !latch.swap(true, Ordering::SeqCst)
    }
}

/// Serializes process-global fault-injection tests within one process.
static SCOPE_LOCK: Mutex<()> = Mutex::new(());
/// The programmatically armed global plan, if any.
static ACTIVE: Mutex<Option<FaultPlan>> = Mutex::new(None);
/// Latches of the global plan (env or [`FaultPlan::activate`]).
static GLOBAL_LATCHES: Latches = Latches {
    fail_train: AtomicBool::new(false),
    nan: AtomicBool::new(false),
    sigint: AtomicBool::new(false),
    sigterm: AtomicBool::new(false),
    panic: AtomicBool::new(false),
    sleep: AtomicBool::new(false),
    nan_point: AtomicBool::new(false),
    writes: AtomicUsize::new(0),
    appends: AtomicUsize::new(0),
};

thread_local! {
    /// The thread-scoped plan armed by [`FaultPlan::activate_local`],
    /// with its own latch state. Innermost scope wins; nesting restores
    /// the outer plan on drop.
    static LOCAL: RefCell<Vec<(FaultPlan, std::rc::Rc<Latches>)>> = const { RefCell::new(Vec::new()) };
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Parse a `CEAFF_FI_TORN_WRITE` value: either `OFF` (tear the first
/// append `OFF` bytes in) or `N:OFF` (tear the `N`-th append).
fn parse_torn(v: &str) -> Option<(usize, u64)> {
    match v.split_once(':') {
        Some((n, off)) => Some((n.trim().parse().ok()?, off.trim().parse().ok()?)),
        None => Some((1, v.trim().parse().ok()?)),
    }
}

/// The plan described by `CEAFF_FI_*` environment variables, read once per
/// process (a child launched with the variables set keeps them for life).
fn env_plan() -> &'static FaultPlan {
    static PLAN: OnceLock<FaultPlan> = OnceLock::new();
    PLAN.get_or_init(|| FaultPlan {
        abort_at_epoch: env_usize("CEAFF_FI_ABORT_AT_EPOCH"),
        fail_train_at_epoch: env_usize("CEAFF_FI_FAIL_TRAIN_AT_EPOCH"),
        sigint_at_epoch: env_usize("CEAFF_FI_SIGINT_AT_EPOCH"),
        sigterm_at_epoch: env_usize("CEAFF_FI_SIGTERM_AT_EPOCH"),
        nan_loss_at_epoch: env_usize("CEAFF_FI_NAN_LOSS_EPOCH"),
        nan_loss_always: std::env::var("CEAFF_FI_NAN_LOSS_ALWAYS").as_deref() == Ok("1"),
        io_error_substring: std::env::var("CEAFF_FI_IO_ERROR_MATCH").ok(),
        panic_at_point: None,
        sleep_at_point: None,
        nan_at_point: None,
        crash_at_write: env_usize("CEAFF_FI_CRASH_AT_WRITE"),
        torn_write: std::env::var("CEAFF_FI_TORN_WRITE")
            .ok()
            .and_then(|v| parse_torn(&v)),
    })
}

/// Run `f` against the effective plan and its latch state: the innermost
/// thread-scoped plan wins, then the global programmatic plan, then the
/// environment plan (the default).
fn with_effective<R>(f: impl FnOnce(&FaultPlan, &Latches) -> R) -> R {
    let local = LOCAL.with(|cell| {
        cell.borrow()
            .last()
            .map(|(plan, latches)| (plan.clone(), latches.clone()))
    });
    if let Some((plan, latches)) = local {
        return f(&plan, &latches);
    }
    let armed = ACTIVE.lock().expect("fault plan lock");
    match &*armed {
        Some(plan) => f(plan, &GLOBAL_LATCHES),
        None => f(env_plan(), &GLOBAL_LATCHES),
    }
}

/// Guard of a process-globally armed [`FaultPlan`]; dropping it disarms
/// the plan and releases the global test lock.
pub struct FaultScope {
    _lock: MutexGuard<'static, ()>,
}

/// Guard of a thread-scoped [`FaultPlan`]; dropping it disarms the plan
/// on this thread (restoring any outer scope).
pub struct LocalFaultScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl FaultPlan {
    /// Arm this plan process-wide until the returned guard drops.
    /// One-shot latches reset, so consecutive tests start fresh.
    pub fn activate(self) -> FaultScope {
        // A panicking previous test may have poisoned the lock; the plan
        // state is reset below either way.
        let lock = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for latch in [
            &GLOBAL_LATCHES.fail_train,
            &GLOBAL_LATCHES.nan,
            &GLOBAL_LATCHES.sigint,
            &GLOBAL_LATCHES.sigterm,
            &GLOBAL_LATCHES.panic,
            &GLOBAL_LATCHES.sleep,
            &GLOBAL_LATCHES.nan_point,
        ] {
            latch.store(false, Ordering::SeqCst);
        }
        GLOBAL_LATCHES.writes.store(0, Ordering::SeqCst);
        GLOBAL_LATCHES.appends.store(0, Ordering::SeqCst);
        *ACTIVE.lock().expect("fault plan lock") = Some(self);
        FaultScope { _lock: lock }
    }

    /// Arm this plan *for the current thread only* until the returned
    /// guard drops. No global lock is taken and latch state is private to
    /// the scope, so many threads can each run their own plan
    /// concurrently — the per-request chaos mode of the alignment
    /// server. Nestable; the innermost scope wins; the guard is `!Send`
    /// (it must drop on the arming thread).
    pub fn activate_local(self) -> LocalFaultScope {
        LOCAL.with(|cell| {
            cell.borrow_mut()
                .push((self, std::rc::Rc::new(Latches::default())))
        });
        LocalFaultScope {
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        *ACTIVE.lock().expect("fault plan lock") = None;
    }
}

impl Drop for LocalFaultScope {
    fn drop(&mut self) {
        LOCAL.with(|cell| {
            cell.borrow_mut().pop();
        });
    }
}

/// Training-loop hook: abort the process when the armed plan says this
/// epoch dies. No unwinding, no destructors — the closest in-process
/// approximation of a kill signal.
pub fn abort_point(epoch: usize) {
    if with_effective(|plan, _| plan.abort_at_epoch == Some(epoch)) {
        eprintln!("ceaff-faultinject: aborting at epoch {epoch}");
        std::process::abort();
    }
}

/// Training-loop hook: raise SIGINT against the current process when the
/// armed plan says this epoch is interrupted. One-shot. Delivers a *real*
/// signal (via `raise`), so whatever SIGINT handler the binary installed
/// runs exactly as it would for a user's Ctrl-C; without a handler the
/// default disposition terminates the process. No-op on non-unix targets.
pub fn sigint_point(epoch: usize) {
    let fire = with_effective(|plan, latches| {
        plan.sigint_at_epoch == Some(epoch) && Latches::fire(&latches.sigint)
    });
    if fire {
        #[cfg(unix)]
        {
            const SIGINT: i32 = 2;
            extern "C" {
                fn raise(sig: i32) -> i32;
            }
            eprintln!("ceaff-faultinject: raising SIGINT at epoch {epoch}");
            unsafe {
                raise(SIGINT);
            }
        }
        #[cfg(not(unix))]
        eprintln!("ceaff-faultinject: SIGINT injection unsupported on this target");
    }
}

/// Training-loop hook: raise SIGTERM against the current process when
/// the armed plan says this epoch is terminated. One-shot; real signal
/// delivery exactly as [`sigint_point`], but through the SIGTERM handler
/// — the CLI's "supervisor asked us to stop" path. No-op on non-unix.
pub fn sigterm_point(epoch: usize) {
    let fire = with_effective(|plan, latches| {
        plan.sigterm_at_epoch == Some(epoch) && Latches::fire(&latches.sigterm)
    });
    if fire {
        #[cfg(unix)]
        {
            const SIGTERM: i32 = 15;
            extern "C" {
                fn raise(sig: i32) -> i32;
            }
            eprintln!("ceaff-faultinject: raising SIGTERM at epoch {epoch}");
            unsafe {
                raise(SIGTERM);
            }
        }
        #[cfg(not(unix))]
        eprintln!("ceaff-faultinject: SIGTERM injection unsupported on this target");
    }
}

/// Training-loop hook: whether to simulate a graceful crash (typed error)
/// at this epoch. One-shot — fires at most once per armed plan.
pub fn simulated_crash(epoch: usize) -> bool {
    with_effective(|plan, latches| {
        plan.fail_train_at_epoch == Some(epoch) && Latches::fire(&latches.fail_train)
    })
}

/// Training-loop hook: whether the loss of this epoch must be forced to
/// NaN. `nan_loss_at_epoch` is one-shot; `nan_loss_always` fires forever.
pub fn nan_loss(epoch: usize) -> bool {
    with_effective(|plan, latches| {
        if plan.nan_loss_always {
            return true;
        }
        plan.nan_loss_at_epoch == Some(epoch) && Latches::fire(&latches.nan)
    })
}

/// Request hook: panic when the armed plan names this point (one-shot).
/// The serving path calls this inside the `catch_unwind` boundary of its
/// worker loop, so an injected panic becomes a typed 500.
pub fn panic_point(name: &str) {
    let fire = with_effective(|plan, latches| {
        plan.panic_at_point.as_deref() == Some(name) && Latches::fire(&latches.panic)
    });
    if fire {
        panic!("ceaff-faultinject: injected panic at point '{name}'");
    }
}

/// Request hook: sleep for the planned milliseconds when the armed plan
/// names this point (one-shot) — an injected latency spike.
pub fn sleep_point(name: &str) {
    let ms = with_effective(|plan, latches| match &plan.sleep_at_point {
        Some((point, ms)) if point == name && Latches::fire(&latches.sleep) => Some(*ms),
        _ => None,
    });
    if let Some(ms) = ms {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Request hook: whether the caller must corrupt its in-flight scores
/// with a NaN at this point (one-shot), exercising the numeric guards on
/// the serving path.
pub fn nan_point(name: &str) -> bool {
    with_effective(|plan, latches| {
        plan.nan_at_point.as_deref() == Some(name) && Latches::fire(&latches.nan_point)
    })
}

/// Durability hook: called by the WAL/snapshot layer at every point where
/// a crash must be recoverable — frame appends, fsyncs, snapshot tmp
/// writes, renames, rotations. Each call is one *write event*; the armed
/// plan's [`FaultPlan::crash_at_write`] targets the `n`-th event overall,
/// while [`FaultPlan::torn_write`] targets the `n`-th event whose label
/// ends in `"append"` (only appends can tear — a rename is atomic).
///
/// Counting is per armed scope and entirely inert without a plan that
/// sets one of the two fields, so production pays one branch per event.
/// The decision is returned, not executed: the caller aborts (see
/// [`WriteFault`]), which keeps this testable in-process.
pub fn durable_write(label: &str) -> WriteFault {
    fn decide(label: &str, plan: &FaultPlan, latches: &Latches) -> WriteFault {
        if plan.crash_at_write.is_none() && plan.torn_write.is_none() {
            return WriteFault::None;
        }
        let event = latches.writes.fetch_add(1, Ordering::SeqCst) + 1;
        if plan.crash_at_write == Some(event) {
            return WriteFault::Crash;
        }
        if label.ends_with("append") {
            let nth = latches.appends.fetch_add(1, Ordering::SeqCst) + 1;
            if let Some((at, offset)) = plan.torn_write {
                if at == nth {
                    return WriteFault::Torn(offset);
                }
            }
        }
        WriteFault::None
    }

    // Durable-write faults simulate the whole *process* dying, so an
    // inert scope cannot shield them the way it shields request-level
    // faults: resolution skips any scope that expresses no opinion
    // (both fields `None`) and keeps the process-wide event numbering
    // in the global latches. A scope that *does* arm a durable-write
    // fault wins innermost-first and counts on its own latches.
    let local = LOCAL.with(|cell| {
        cell.borrow().iter().rev().find_map(|(plan, latches)| {
            (plan.crash_at_write.is_some() || plan.torn_write.is_some())
                .then(|| (plan.clone(), latches.clone()))
        })
    });
    if let Some((plan, latches)) = local {
        return decide(label, &plan, &latches);
    }
    let armed = ACTIVE.lock().expect("fault plan lock");
    match &*armed {
        Some(plan) if plan.crash_at_write.is_some() || plan.torn_write.is_some() => {
            decide(label, plan, &GLOBAL_LATCHES)
        }
        Some(_) | None => decide(label, env_plan(), &GLOBAL_LATCHES),
    }
}

/// I/O hook: an injected error for `path`, when the armed plan matches it.
pub fn io_error(path: &Path) -> Option<io::Error> {
    let pat = with_effective(|plan, _| plan.io_error_substring.clone())?;
    if !pat.is_empty() && path.to_string_lossy().contains(&pat) {
        Some(io::Error::other(format!(
            "injected i/o error for {}",
            path.display()
        )))
    } else {
        None
    }
}

/// Truncate a file to its first `keep_bytes` bytes (simulates a crash
/// mid-write on a filesystem without atomic rename).
pub fn truncate_file<P: AsRef<Path>>(path: P, keep_bytes: u64) -> io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep_bytes)
}

/// Flip every bit of the byte at `offset` (simulates silent corruption;
/// checksums must catch it).
pub fn flip_byte<P: AsRef<Path>>(path: P, offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut byte = [0u8; 1];
    f.read_exact(&mut byte)?;
    byte[0] = !byte[0];
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&byte)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_without_a_plan() {
        let _scope = FaultPlan::default().activate();
        abort_point(0);
        assert!(!simulated_crash(0));
        assert!(!nan_loss(0));
        assert!(io_error(Path::new("/tmp/anything")).is_none());
        panic_point("anything");
        sleep_point("anything");
        assert!(!nan_point("anything"));
    }

    #[test]
    fn simulated_crash_fires_once_at_the_chosen_epoch() {
        let _scope = FaultPlan {
            fail_train_at_epoch: Some(3),
            ..FaultPlan::default()
        }
        .activate();
        assert!(!simulated_crash(2));
        assert!(simulated_crash(3));
        assert!(!simulated_crash(3), "one-shot: must not fire twice");
    }

    #[test]
    fn nan_loss_one_shot_and_always_modes() {
        {
            let _scope = FaultPlan {
                nan_loss_at_epoch: Some(1),
                ..FaultPlan::default()
            }
            .activate();
            assert!(!nan_loss(0));
            assert!(nan_loss(1));
            assert!(!nan_loss(1));
        }
        let _scope = FaultPlan {
            nan_loss_always: true,
            ..FaultPlan::default()
        }
        .activate();
        assert!(nan_loss(0) && nan_loss(7) && nan_loss(7));
    }

    #[test]
    fn io_error_matches_path_substring() {
        let _scope = FaultPlan {
            io_error_substring: Some("triples_1".into()),
            ..FaultPlan::default()
        }
        .activate();
        assert!(io_error(Path::new("/data/bench/triples_1")).is_some());
        assert!(io_error(Path::new("/data/bench/links")).is_none());
    }

    #[test]
    fn corruption_helpers_modify_files() {
        let dir = std::env::temp_dir().join(format!("ceaff-fi-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        std::fs::write(&path, [1u8, 2, 3, 4, 5]).unwrap();
        truncate_file(&path, 2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, 2]);
        flip_byte(&path, 1).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, !2u8]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn local_scope_shadows_global_and_restores_on_drop() {
        let _global = FaultPlan {
            fail_train_at_epoch: Some(1),
            ..FaultPlan::default()
        }
        .activate();
        {
            let _local = FaultPlan {
                nan_at_point: Some("req".into()),
                ..FaultPlan::default()
            }
            .activate_local();
            // The local plan has no fail_train fault — it shadows, not
            // merges.
            assert!(!simulated_crash(1));
            assert!(nan_point("req"));
            assert!(!nan_point("req"), "local one-shot");
        }
        // Outer (global) plan visible again, its latch untouched.
        assert!(simulated_crash(1));
        assert!(!nan_point("req"));
    }

    #[test]
    fn local_scopes_have_independent_latches_across_threads() {
        let fired: Vec<bool> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let _scope = FaultPlan {
                            panic_at_point: Some("boom".into()),
                            ..FaultPlan::default()
                        }
                        .activate_local();
                        std::panic::catch_unwind(|| panic_point("boom")).is_err()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(
            fired.iter().all(|&f| f),
            "every thread's scope must fire its own one-shot: {fired:?}"
        );
    }

    #[test]
    fn local_scopes_nest_innermost_wins() {
        let _outer = FaultPlan {
            sleep_at_point: Some(("slow".into(), 0)),
            ..FaultPlan::default()
        }
        .activate_local();
        {
            let _inner = FaultPlan::default().activate_local();
            // Inner empty plan shadows the outer sleep plan.
            sleep_point("slow");
        }
        // Outer scope intact with an unfired latch.
        let t0 = std::time::Instant::now();
        sleep_point("slow");
        assert!(t0.elapsed() < std::time::Duration::from_secs(1));
    }

    #[test]
    fn durable_write_is_inert_without_write_faults() {
        let _scope = FaultPlan {
            fail_train_at_epoch: Some(1),
            ..FaultPlan::default()
        }
        .activate();
        for _ in 0..5 {
            assert_eq!(durable_write("wal/append"), WriteFault::None);
        }
    }

    #[test]
    fn crash_at_write_fires_at_exactly_the_nth_event() {
        let _scope = FaultPlan {
            crash_at_write: Some(3),
            ..FaultPlan::default()
        }
        .activate();
        assert_eq!(durable_write("wal/append"), WriteFault::None);
        assert_eq!(durable_write("wal/sync"), WriteFault::None);
        assert_eq!(durable_write("snap/rename"), WriteFault::Crash);
        // Later events pass: the plan targets one exact power-cut point.
        assert_eq!(durable_write("wal/append"), WriteFault::None);
    }

    #[test]
    fn torn_write_targets_the_nth_append_only() {
        let _scope = FaultPlan {
            torn_write: Some((2, 5)),
            ..FaultPlan::default()
        }
        .activate();
        // Non-append events advance the global counter but never tear and
        // never consume the append count.
        assert_eq!(durable_write("wal/sync"), WriteFault::None);
        assert_eq!(durable_write("wal/append"), WriteFault::None);
        assert_eq!(durable_write("snap/rename"), WriteFault::None);
        assert_eq!(durable_write("wal/append"), WriteFault::Torn(5));
        assert_eq!(durable_write("wal/append"), WriteFault::None);
    }

    #[test]
    fn write_counters_reset_between_scopes() {
        {
            let _scope = FaultPlan {
                crash_at_write: Some(2),
                ..FaultPlan::default()
            }
            .activate();
            assert_eq!(durable_write("wal/append"), WriteFault::None);
        }
        let _scope = FaultPlan {
            crash_at_write: Some(2),
            ..FaultPlan::default()
        }
        .activate();
        // A fresh scope starts counting from zero again.
        assert_eq!(durable_write("wal/append"), WriteFault::None);
        assert_eq!(durable_write("wal/sync"), WriteFault::Crash);
    }

    #[test]
    fn local_write_plans_count_independently_per_thread() {
        let results: Vec<bool> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let _scope = FaultPlan {
                            crash_at_write: Some(2),
                            ..FaultPlan::default()
                        }
                        .activate_local();
                        durable_write("wal/append") == WriteFault::None
                            && durable_write("wal/sync") == WriteFault::Crash
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(
            results.iter().all(|&ok| ok),
            "each thread's local scope must own its own event counter: {results:?}"
        );
    }

    #[test]
    fn torn_env_value_parses_both_forms() {
        assert_eq!(parse_torn("7"), Some((1, 7)));
        assert_eq!(parse_torn("3:12"), Some((3, 12)));
        assert_eq!(parse_torn("bogus"), None);
        assert_eq!(parse_torn("x:1"), None);
    }

    #[test]
    fn request_hooks_fire_from_a_local_plan() {
        let _scope = FaultPlan {
            panic_at_point: Some("server/handler".into()),
            sleep_at_point: Some(("server/slow".into(), 1)),
            nan_at_point: Some("server/scores".into()),
            io_error_substring: Some("server/response".into()),
            ..FaultPlan::default()
        }
        .activate_local();
        assert!(std::panic::catch_unwind(|| panic_point("server/handler")).is_err());
        let t0 = std::time::Instant::now();
        sleep_point("server/slow");
        assert!(t0.elapsed() >= std::time::Duration::from_millis(1));
        assert!(nan_point("server/scores"));
        assert!(io_error(Path::new("ceaff-server/response")).is_some());
    }
}
