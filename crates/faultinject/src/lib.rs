#![warn(missing_docs)]

//! # ceaff-faultinject
//!
//! Test-support fault injection for the CEAFF fault-tolerance layer. The
//! production code calls the cheap hooks in this crate at its recovery
//! points (epoch boundaries of the GCN training loop, TSV loader opens);
//! the hooks do nothing unless a fault plan is active, so every recovery
//! path can be exercised by real tests without `#[cfg(test)]` seams in the
//! pipeline itself.
//!
//! Two ways to arm a plan:
//!
//! * **Programmatic** — build a [`FaultPlan`] and call
//!   [`FaultPlan::activate`]. The returned [`FaultScope`] guard holds a
//!   global lock (so concurrent tests serialize) and disarms the plan on
//!   drop.
//! * **Environment** — set `CEAFF_FI_*` variables before the process
//!   starts. This is how the kill-and-resume e2e test drives a *child*
//!   process into a mid-training abort:
//!   - `CEAFF_FI_ABORT_AT_EPOCH=N` — `std::process::abort()` when the
//!     training loop reaches epoch `N` (simulates SIGKILL mid-run),
//!   - `CEAFF_FI_FAIL_TRAIN_AT_EPOCH=N` — the training loop returns a
//!     typed error at epoch `N` (graceful simulated crash, one-shot),
//!   - `CEAFF_FI_SIGINT_AT_EPOCH=N` — raise SIGINT against the process
//!     itself when the training loop reaches epoch `N` (one-shot; unix
//!     only), driving a real signal through the CLI's cancel handler,
//!   - `CEAFF_FI_NAN_LOSS_EPOCH=N` — force a NaN loss at epoch `N`
//!     (one-shot),
//!   - `CEAFF_FI_NAN_LOSS_ALWAYS=1` — force a NaN loss every epoch,
//!   - `CEAFF_FI_IO_ERROR_MATCH=SUBSTR` — hooked file reads whose path
//!     contains `SUBSTR` fail with an injected `io::Error`.
//!
//! [`truncate_file`] and [`flip_byte`] round the harness out for
//! corrupted-checkpoint tests.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What faults to inject, and where.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Abort the whole process (no unwinding — like SIGKILL) when the
    /// training loop reaches this epoch.
    pub abort_at_epoch: Option<usize>,
    /// Make the training loop return a typed error when it reaches this
    /// epoch — a graceful simulated crash, testable in-process (one-shot).
    pub fail_train_at_epoch: Option<usize>,
    /// Raise SIGINT against the current process when the training loop
    /// reaches this epoch (one-shot; unix only) — exercises a real signal
    /// delivery through whatever handler the binary installed.
    pub sigint_at_epoch: Option<usize>,
    /// Force a non-finite loss at this epoch (one-shot), exercising the
    /// rollback + learning-rate-halving recovery.
    pub nan_loss_at_epoch: Option<usize>,
    /// Force a non-finite loss at *every* epoch, exhausting the bounded
    /// retries into `NumericDivergence`.
    pub nan_loss_always: bool,
    /// Fail any hooked I/O whose path contains this substring.
    pub io_error_substring: Option<String>,
}

/// Serializes fault-injection tests within one process.
static SCOPE_LOCK: Mutex<()> = Mutex::new(());
/// The programmatically armed plan, if any.
static ACTIVE: Mutex<Option<FaultPlan>> = Mutex::new(None);
/// One-shot latches (true = already fired).
static FIRED_FAIL_TRAIN: AtomicBool = AtomicBool::new(false);
static FIRED_NAN: AtomicBool = AtomicBool::new(false);
static FIRED_SIGINT: AtomicBool = AtomicBool::new(false);

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// The plan described by `CEAFF_FI_*` environment variables, read once per
/// process (a child launched with the variables set keeps them for life).
fn env_plan() -> &'static FaultPlan {
    static PLAN: OnceLock<FaultPlan> = OnceLock::new();
    PLAN.get_or_init(|| FaultPlan {
        abort_at_epoch: env_usize("CEAFF_FI_ABORT_AT_EPOCH"),
        fail_train_at_epoch: env_usize("CEAFF_FI_FAIL_TRAIN_AT_EPOCH"),
        sigint_at_epoch: env_usize("CEAFF_FI_SIGINT_AT_EPOCH"),
        nan_loss_at_epoch: env_usize("CEAFF_FI_NAN_LOSS_EPOCH"),
        nan_loss_always: std::env::var("CEAFF_FI_NAN_LOSS_ALWAYS").as_deref() == Ok("1"),
        io_error_substring: std::env::var("CEAFF_FI_IO_ERROR_MATCH").ok(),
    })
}

/// The effective plan right now: the programmatic one wins over the
/// environment one.
fn effective() -> FaultPlan {
    let armed = ACTIVE.lock().expect("fault plan lock");
    match &*armed {
        Some(plan) => plan.clone(),
        None => env_plan().clone(),
    }
}

/// Guard of an armed [`FaultPlan`]; dropping it disarms the plan and
/// releases the global test lock.
pub struct FaultScope {
    _lock: MutexGuard<'static, ()>,
}

impl FaultPlan {
    /// Arm this plan process-wide until the returned guard drops.
    /// One-shot latches reset, so consecutive tests start fresh.
    pub fn activate(self) -> FaultScope {
        // A panicking previous test may have poisoned the lock; the plan
        // state is reset below either way.
        let lock = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        FIRED_FAIL_TRAIN.store(false, Ordering::SeqCst);
        FIRED_NAN.store(false, Ordering::SeqCst);
        FIRED_SIGINT.store(false, Ordering::SeqCst);
        *ACTIVE.lock().expect("fault plan lock") = Some(self);
        FaultScope { _lock: lock }
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        *ACTIVE.lock().expect("fault plan lock") = None;
    }
}

/// Training-loop hook: abort the process when the armed plan says this
/// epoch dies. No unwinding, no destructors — the closest in-process
/// approximation of a kill signal.
pub fn abort_point(epoch: usize) {
    if effective().abort_at_epoch == Some(epoch) {
        eprintln!("ceaff-faultinject: aborting at epoch {epoch}");
        std::process::abort();
    }
}

/// Training-loop hook: raise SIGINT against the current process when the
/// armed plan says this epoch is interrupted. One-shot. Delivers a *real*
/// signal (via `raise`), so whatever SIGINT handler the binary installed
/// runs exactly as it would for a user's Ctrl-C; without a handler the
/// default disposition terminates the process. No-op on non-unix targets.
pub fn sigint_point(epoch: usize) {
    if effective().sigint_at_epoch == Some(epoch) && !FIRED_SIGINT.swap(true, Ordering::SeqCst) {
        #[cfg(unix)]
        {
            const SIGINT: i32 = 2;
            extern "C" {
                fn raise(sig: i32) -> i32;
            }
            eprintln!("ceaff-faultinject: raising SIGINT at epoch {epoch}");
            unsafe {
                raise(SIGINT);
            }
        }
        #[cfg(not(unix))]
        eprintln!("ceaff-faultinject: SIGINT injection unsupported on this target");
    }
}

/// Training-loop hook: whether to simulate a graceful crash (typed error)
/// at this epoch. One-shot — fires at most once per armed plan.
pub fn simulated_crash(epoch: usize) -> bool {
    if effective().fail_train_at_epoch == Some(epoch) {
        return !FIRED_FAIL_TRAIN.swap(true, Ordering::SeqCst);
    }
    false
}

/// Training-loop hook: whether the loss of this epoch must be forced to
/// NaN. `nan_loss_at_epoch` is one-shot; `nan_loss_always` fires forever.
pub fn nan_loss(epoch: usize) -> bool {
    let plan = effective();
    if plan.nan_loss_always {
        return true;
    }
    if plan.nan_loss_at_epoch == Some(epoch) {
        return !FIRED_NAN.swap(true, Ordering::SeqCst);
    }
    false
}

/// I/O hook: an injected error for `path`, when the armed plan matches it.
pub fn io_error(path: &Path) -> Option<io::Error> {
    let plan = effective();
    let pat = plan.io_error_substring.as_deref()?;
    if !pat.is_empty() && path.to_string_lossy().contains(pat) {
        Some(io::Error::other(format!(
            "injected i/o error for {}",
            path.display()
        )))
    } else {
        None
    }
}

/// Truncate a file to its first `keep_bytes` bytes (simulates a crash
/// mid-write on a filesystem without atomic rename).
pub fn truncate_file<P: AsRef<Path>>(path: P, keep_bytes: u64) -> io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep_bytes)
}

/// Flip every bit of the byte at `offset` (simulates silent corruption;
/// checksums must catch it).
pub fn flip_byte<P: AsRef<Path>>(path: P, offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut byte = [0u8; 1];
    f.read_exact(&mut byte)?;
    byte[0] = !byte[0];
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&byte)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_without_a_plan() {
        let _scope = FaultPlan::default().activate();
        abort_point(0);
        assert!(!simulated_crash(0));
        assert!(!nan_loss(0));
        assert!(io_error(Path::new("/tmp/anything")).is_none());
    }

    #[test]
    fn simulated_crash_fires_once_at_the_chosen_epoch() {
        let _scope = FaultPlan {
            fail_train_at_epoch: Some(3),
            ..FaultPlan::default()
        }
        .activate();
        assert!(!simulated_crash(2));
        assert!(simulated_crash(3));
        assert!(!simulated_crash(3), "one-shot: must not fire twice");
    }

    #[test]
    fn nan_loss_one_shot_and_always_modes() {
        {
            let _scope = FaultPlan {
                nan_loss_at_epoch: Some(1),
                ..FaultPlan::default()
            }
            .activate();
            assert!(!nan_loss(0));
            assert!(nan_loss(1));
            assert!(!nan_loss(1));
        }
        let _scope = FaultPlan {
            nan_loss_always: true,
            ..FaultPlan::default()
        }
        .activate();
        assert!(nan_loss(0) && nan_loss(7) && nan_loss(7));
    }

    #[test]
    fn io_error_matches_path_substring() {
        let _scope = FaultPlan {
            io_error_substring: Some("triples_1".into()),
            ..FaultPlan::default()
        }
        .activate();
        assert!(io_error(Path::new("/data/bench/triples_1")).is_some());
        assert!(io_error(Path::new("/data/bench/links")).is_none());
    }

    #[test]
    fn corruption_helpers_modify_files() {
        let dir = std::env::temp_dir().join(format!("ceaff-fi-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        std::fs::write(&path, [1u8, 2, 3, 4, 5]).unwrap();
        truncate_file(&path, 2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, 2]);
        flip_byte(&path, 1).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, !2u8]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
