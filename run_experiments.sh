#!/bin/bash
# Regenerates every paper table plus the extension experiments at the
# recorded scale (1.0). Outputs land in results/.
set -x
cd /root/repo
for t in table2_stats table3_cross_lingual table4_mono_lingual table5_ablation table6_ranking runtime extensions; do
  cargo run --release -p ceaff-bench --bin $t -- --scale 1.0 --json results/$t.json > results/$t.txt 2>&1
done
for s in seed theta dim; do
  cargo run --release -p ceaff-bench --bin sweeps -- --sweep $s --scale 1.0 --json results/sweep_$s.json > results/sweep_$s.txt 2>&1
done
echo ALL_EXPERIMENTS_DONE
