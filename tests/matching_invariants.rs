//! Cross-crate matching invariants on *real* fused matrices (not synthetic
//! random ones): stability, perfection, and the §VI utility relations.

use ceaff::matching::{Greedy, Hungarian, Matcher, StableMarriage};
use ceaff::prelude::*;
use ceaff::{ExecBudget, Telemetry};

fn fused_matrix(preset: Preset) -> (ceaff::sim::SimilarityMatrix, usize) {
    let task = DatasetTask::from_preset(preset, 0.1, 32);
    let mut cfg = CeaffConfig::default();
    cfg.gcn.dim = 16;
    cfg.gcn.epochs = 25;
    let out = ceaff::try_run(&task.input(), &cfg).expect("pipeline runs");
    let n = task.dataset.pair.test_pairs().len();
    (out.fused.into_dense(), n)
}

#[test]
fn stable_matching_on_real_fused_matrices_has_no_blocking_pairs() {
    for preset in [Preset::Dbp15kJaEn, Preset::SrprsEnDe] {
        let (m, n) = fused_matrix(preset);
        let matching = StableMarriage.matching(&m);
        assert_eq!(matching.len(), n, "stable matching must be perfect");
        assert!(matching.is_one_to_one());
        assert_eq!(
            matching.find_blocking_pair(&m),
            None,
            "stable matching must contain no blocking pair"
        );
    }
}

#[test]
fn utility_ordering_hungarian_ge_stable_ge_each_nonnegative() {
    let (m, _) = fused_matrix(Preset::SrprsEnDe);
    let h = Hungarian.matching(&m).total_weight(&m);
    let s = StableMarriage.matching(&m).total_weight(&m);
    assert!(h >= s - 1e-4, "hungarian {h} < stable {s}");
    assert!(s >= 0.0);
    // Greedy picks each source's maximum, so its (possibly conflicting)
    // total is an upper bound on any one-to-one assignment.
    let g = Greedy.matching(&m).total_weight(&m);
    assert!(g >= h - 1e-4, "greedy row-max sum {g} < hungarian {h}");
}

#[test]
fn budgeted_matchers_with_headroom_are_identical_to_exact() {
    let (m, _) = fused_matrix(Preset::SrprsEnDe);
    let telemetry = Telemetry::disabled();
    for matcher in [&StableMarriage as &dyn Matcher, &Hungarian] {
        let exact = matcher.matching(&m);
        // Truly unlimited budget: short-circuits to the exact code path.
        let unlimited = matcher.matching_budgeted(&m, &ExecBudget::unlimited(), &telemetry);
        assert!(unlimited.is_exact());
        assert_eq!(unlimited.matching.pairs(), exact.pairs());
        // A *constrained* budget that never fires must take the anytime
        // code path to the very same answer.
        let roomy = ExecBudget::unlimited().with_step_limit(1_000_000);
        let headroom = matcher.matching_budgeted(&m, &roomy, &telemetry);
        assert!(headroom.is_exact(), "a roomy budget must not degrade");
        assert_eq!(headroom.matching.pairs(), exact.pairs());
    }
}

#[test]
fn degraded_matchings_stay_one_to_one_and_perfect() {
    let (m, n) = fused_matrix(Preset::SrprsEnDe);
    let telemetry = Telemetry::disabled();
    for matcher in [&StableMarriage as &dyn Matcher, &Hungarian] {
        for limit in [0u64, 1, (n / 4) as u64, (n / 2) as u64] {
            let budget = ExecBudget::unlimited().with_step_limit(limit);
            let out = matcher.matching_budgeted(&m, &budget, &telemetry);
            let d = out
                .degradation
                .as_ref()
                .expect("a starved budget must degrade");
            assert_eq!(d.stage, "matcher");
            assert_eq!(d.reason, "step_limit");
            assert!(!out.degraded_rows.is_empty());
            assert!(d.fraction_degraded > 0.0 && d.fraction_degraded <= 1.0);
            // The greedy completion must still deliver a perfect
            // one-to-one matching on a square instance.
            assert!(out.matching.is_one_to_one());
            assert_eq!(out.matching.len(), n, "limit {limit}: not perfect");
        }
    }
}

#[test]
fn degraded_stable_marriage_has_no_blocking_pair_among_settled_rows() {
    let (m, n) = fused_matrix(Preset::Dbp15kJaEn);
    let telemetry = Telemetry::disabled();
    for limit in [1u64, (n / 4) as u64, (n / 2) as u64, (n - 1) as u64] {
        let budget = ExecBudget::unlimited().with_step_limit(limit);
        let out = StableMarriage.matching_budgeted(&m, &budget, &telemetry);
        assert!(!out.is_exact(), "limit {limit} must starve n = {n} rows");
        let degraded: std::collections::HashSet<usize> =
            out.degraded_rows.iter().copied().collect();
        // Rows the deferred-acceptance loop settled keep the stability
        // guarantee even though the rest of the matching was completed
        // greedily: targets never vacate, so every target a settled row
        // prefers over its own is still held by a partner that target
        // prefers.
        for u in (0..n).filter(|u| !degraded.contains(u)) {
            for v in 0..n {
                assert!(
                    !out.matching.is_blocking_pair(&m, u, v),
                    "limit {limit}: settled row {u} forms a blocking pair with {v}"
                );
            }
        }
    }
}

#[test]
fn one_to_one_constraint_fixes_greedy_collisions() {
    // On a harder instance greedy collides; the collective matchers must
    // resolve every collision (one-to-one) without losing accuracy.
    let (m, n) = fused_matrix(Preset::Dbp15kJaEn);
    let greedy = Greedy.matching(&m);
    let stable = StableMarriage.matching(&m);
    let greedy_acc = ceaff::accuracy(&greedy, n);
    let stable_acc = ceaff::accuracy(&stable, n);
    assert!(stable.is_one_to_one());
    assert!(
        stable_acc >= greedy_acc - 1e-9,
        "stable {stable_acc} must not lose to greedy {greedy_acc}"
    );
}
