//! Cross-crate matching invariants on *real* fused matrices (not synthetic
//! random ones): stability, perfection, and the §VI utility relations.

use ceaff::matching::{Greedy, Hungarian, Matcher, StableMarriage};
use ceaff::prelude::*;

fn fused_matrix(preset: Preset) -> (ceaff::sim::SimilarityMatrix, usize) {
    let task = DatasetTask::from_preset(preset, 0.1, 32);
    let mut cfg = CeaffConfig::default();
    cfg.gcn.dim = 16;
    cfg.gcn.epochs = 25;
    let out = ceaff::try_run(&task.input(), &cfg).expect("pipeline runs");
    let n = task.dataset.pair.test_pairs().len();
    (out.fused, n)
}

#[test]
fn stable_matching_on_real_fused_matrices_has_no_blocking_pairs() {
    for preset in [Preset::Dbp15kJaEn, Preset::SrprsEnDe] {
        let (m, n) = fused_matrix(preset);
        let matching = StableMarriage.matching(&m);
        assert_eq!(matching.len(), n, "stable matching must be perfect");
        assert!(matching.is_one_to_one());
        assert_eq!(
            matching.find_blocking_pair(&m),
            None,
            "stable matching must contain no blocking pair"
        );
    }
}

#[test]
fn utility_ordering_hungarian_ge_stable_ge_each_nonnegative() {
    let (m, _) = fused_matrix(Preset::SrprsEnDe);
    let h = Hungarian.matching(&m).total_weight(&m);
    let s = StableMarriage.matching(&m).total_weight(&m);
    assert!(h >= s - 1e-4, "hungarian {h} < stable {s}");
    assert!(s >= 0.0);
    // Greedy picks each source's maximum, so its (possibly conflicting)
    // total is an upper bound on any one-to-one assignment.
    let g = Greedy.matching(&m).total_weight(&m);
    assert!(g >= h - 1e-4, "greedy row-max sum {g} < hungarian {h}");
}

#[test]
fn one_to_one_constraint_fixes_greedy_collisions() {
    // On a harder instance greedy collides; the collective matchers must
    // resolve every collision (one-to-one) without losing accuracy.
    let (m, n) = fused_matrix(Preset::Dbp15kJaEn);
    let greedy = Greedy.matching(&m);
    let stable = StableMarriage.matching(&m);
    let greedy_acc = ceaff::accuracy(&greedy, n);
    let stable_acc = ceaff::accuracy(&stable, n);
    assert!(stable.is_one_to_one());
    assert!(
        stable_acc >= greedy_acc - 1e-9,
        "stable {stable_acc} must not lose to greedy {greedy_acc}"
    );
}
