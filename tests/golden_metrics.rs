//! Golden regression test: the end-to-end metrics of a small synthetic
//! preset are snapshotted into `tests/golden/` and every run is compared
//! against the snapshot field by field.
//!
//! The pipeline is fully deterministic (seeded generation, seeded GCN
//! init, thread-count-independent kernels), so any drift in these numbers
//! means an intentional algorithmic change — regenerate the snapshot with
//!
//! ```text
//! CEAFF_UPDATE_GOLDEN=1 cargo test -p ceaff --test golden_metrics
//! ```
//!
//! and review the diff alongside the code change that caused it.

use ceaff::prelude::*;
use serde_json::{json, Value};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/dbp15k_zh_en_small.json")
}

/// Round to 6 decimals so the snapshot survives a JSON round-trip exactly.
fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

fn compute_metrics() -> Value {
    let task = DatasetTask::from_preset(Preset::Dbp15kZhEn, 0.05, 16);
    let cfg = CeaffConfig {
        gcn: GcnConfig {
            dim: 16,
            epochs: 20,
            ..GcnConfig::default()
        },
        embed_dim: 16,
        ..CeaffConfig::default()
    };
    let out = try_run(&task.input(), &cfg).expect("pipeline runs on the golden preset");
    json!({
        "preset": "Dbp15kZhEn",
        "scale": 0.05,
        "accuracy": round6(out.accuracy),
        "hits1": round6(out.ranking.hits1),
        "hits10": round6(out.ranking.hits10),
        "mrr": round6(out.ranking.mrr),
    })
}

#[test]
fn metrics_match_golden_snapshot() {
    let got = compute_metrics();
    let path = golden_path();

    if std::env::var("CEAFF_UPDATE_GOLDEN").is_ok() {
        let pretty = serde_json::to_string_pretty(&got).expect("serialize snapshot");
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, pretty + "\n").expect("write golden snapshot");
        eprintln!("updated golden snapshot at {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with CEAFF_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let want: Value = serde_json::from_str(&text).expect("parse golden snapshot");

    // Explicit per-field diff so a failure says exactly which metric moved
    // and by how much, not just "JSON values differ".
    let mut diffs = Vec::new();
    for key in ["accuracy", "hits1", "hits10", "mrr"] {
        let w = want
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("golden snapshot missing numeric field {key:?}"));
        let g = got
            .get(key)
            .and_then(Value::as_f64)
            .expect("computed metrics always carry every field");
        if w != g {
            diffs.push(format!(
                "  {key}: golden {w} -> current {g} (delta {:+e})",
                g - w
            ));
        }
    }
    assert!(
        diffs.is_empty(),
        "metrics drifted from {}:\n{}\nif the change is intentional, regenerate with CEAFF_UPDATE_GOLDEN=1",
        path.display(),
        diffs.join("\n")
    );
}
