//! Persistence integration tests: TSV benchmark directories round-trip and
//! the public configuration types serialise.

use ceaff::graph::{io, stats::KgStats};
use ceaff::prelude::*;
use rand::SeedableRng;

#[test]
fn generated_dataset_roundtrips_through_tsv_directory() {
    let ds = Preset::SrprsDbpYg.generate(0.08);
    let dir = std::env::temp_dir().join(format!("ceaff-it-io-{}", std::process::id()));
    io::save_pair_to_dir(&ds.pair, &dir).expect("save");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let loaded = io::load_pair_from_dir(&dir, 0.3, &mut rng).expect("load");
    assert_eq!(loaded.source.num_entities(), ds.pair.source.num_entities());
    assert_eq!(loaded.source.num_triples(), ds.pair.source.num_triples());
    assert_eq!(loaded.target.num_triples(), ds.pair.target.num_triples());
    assert_eq!(loaded.alignment.len(), ds.pair.alignment.len());
    // Statistics identical after the round trip, except that relations
    // with no triples cannot be represented in the triples file.
    let (a, b) = (KgStats::of(&loaded.source), KgStats::of(&ds.pair.source));
    assert_eq!(a.triples, b.triples);
    assert_eq!(a.entities, b.entities);
    assert!(a.relations <= b.relations);
    assert_eq!(a.mean_degree, b.mean_degree);
    assert_eq!(a.max_degree, b.max_degree);
    assert_eq!(a.tail_fraction, b.tail_fraction);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reloaded_pair_supports_the_full_pipeline() {
    let ds = Preset::SrprsDbpWd.generate(0.08);
    let dir = std::env::temp_dir().join(format!("ceaff-it-io2-{}", std::process::id()));
    io::save_pair_to_dir(&ds.pair, &dir).expect("save");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    let loaded = io::load_pair_from_dir(&dir, 0.3, &mut rng).expect("load");
    // Mono-lingual: one subword embedder for both sides works on reload
    // (the lexicon is a generator artefact; real users bring their own).
    let emb = ceaff::embed::SubwordEmbedder::new(32, 9);
    let input = EaInput::new(&loaded, &emb, &emb);
    let mut cfg = CeaffConfig::default();
    cfg.gcn.dim = 16;
    cfg.gcn.epochs = 20;
    let out = ceaff::try_run(&input, &cfg).expect("pipeline runs");
    assert!(
        out.accuracy > 0.8,
        "pipeline should work on reloaded data: {}",
        out.accuracy
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn configs_serialize_to_json_and_back() {
    let cfg = CeaffConfig::default();
    let json = serde_json::to_string(&cfg).expect("serialize CeaffConfig");
    let back: CeaffConfig = serde_json::from_str(&json).expect("deserialize CeaffConfig");
    assert_eq!(back.fusion.theta1, cfg.fusion.theta1);
    assert_eq!(back.gcn.dim, cfg.gcn.dim);

    let gen = Preset::Dbp15kZhEn.config(1.0);
    let json = serde_json::to_string(&gen).expect("serialize GenConfig");
    let back: GenConfig = serde_json::from_str(&json).expect("deserialize GenConfig");
    assert_eq!(back.aligned_entities, gen.aligned_entities);
    assert_eq!(back.name, gen.name);
}

#[test]
fn kg_pair_serializes_with_serde() {
    let ds = Preset::SrprsDbpWd.generate(0.05);
    let json = serde_json::to_string(&ds.pair).expect("serialize KgPair");
    let back: ceaff::graph::KgPair = serde_json::from_str(&json).expect("deserialize KgPair");
    assert_eq!(back.source.num_triples(), ds.pair.source.num_triples());
    assert_eq!(back.seeds(), ds.pair.seeds());
}
