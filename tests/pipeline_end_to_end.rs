//! End-to-end integration tests: the full CEAFF pipeline over generated
//! benchmarks, asserting the paper's headline *comparative* claims.

use ceaff::graph::KgPair;
use ceaff::prelude::*;

/// Shorthand over [`try_run_with_features`] with disabled telemetry.
fn run_with_features(pair: &KgPair, features: &FeatureSet, cfg: &CeaffConfig) -> CeaffOutput {
    try_run_with_features(pair, features, cfg, &Telemetry::disabled()).expect("pipeline runs")
}

/// A configuration small enough for debug-mode CI.
fn tiny_cfg() -> CeaffConfig {
    let mut cfg = CeaffConfig::default();
    cfg.gcn.dim = 16;
    cfg.gcn.epochs = 30;
    cfg.embed_dim = 32;
    cfg
}

fn tiny_task(preset: Preset) -> DatasetTask {
    DatasetTask::from_preset(preset, 0.12, 32)
}

#[test]
fn collective_matching_never_loses_to_greedy() {
    for preset in [Preset::Dbp15kZhEn, Preset::SrprsEnFr, Preset::SrprsDbpWd] {
        let task = tiny_task(preset);
        let cfg = tiny_cfg();
        let features = FeatureSet::compute_all(&task.input(), &cfg);
        let full = run_with_features(&task.dataset.pair, &features, &cfg);
        let greedy = run_with_features(
            &task.dataset.pair,
            &features,
            &cfg.clone().without_collective(),
        );
        assert!(
            full.accuracy >= greedy.accuracy - 1e-9,
            "{}: collective {} < greedy {}",
            task.dataset.config.name,
            full.accuracy,
            greedy.accuracy
        );
        assert!(full.matching.is_one_to_one());
    }
}

#[test]
fn mono_lingual_with_string_feature_is_near_perfect() {
    // Table IV's headline: CEAFF reaches ~1.0 on mono-lingual pairs, and
    // removing the string feature costs measurable accuracy.
    let task = tiny_task(Preset::SrprsDbpWd);
    let cfg = tiny_cfg();
    let features = FeatureSet::compute_all(&task.input(), &cfg);
    let full = run_with_features(&task.dataset.pair, &features, &cfg);
    let wo_string = run_with_features(&task.dataset.pair, &features, &cfg.clone().without_string());
    assert!(full.accuracy > 0.9, "CEAFF mono accuracy {}", full.accuracy);
    assert!(
        full.accuracy >= wo_string.accuracy,
        "string feature must not hurt mono-lingual EA: {} vs {}",
        full.accuracy,
        wo_string.accuracy
    );
}

#[test]
fn distant_language_pair_depends_on_semantic_feature() {
    // §VII-D: semantic information matters most on distantly-related pairs.
    let task = tiny_task(Preset::Dbp15kZhEn);
    let cfg = tiny_cfg();
    let features = FeatureSet::compute_all(&task.input(), &cfg);
    let full = run_with_features(&task.dataset.pair, &features, &cfg);
    let wo_sem = run_with_features(
        &task.dataset.pair,
        &features,
        &cfg.clone().without_semantic(),
    );
    let wo_str = run_with_features(&task.dataset.pair, &features, &cfg.clone().without_string());
    assert!(
        wo_sem.accuracy < full.accuracy,
        "dropping semantics must hurt ZH-EN: {} vs {}",
        wo_sem.accuracy,
        full.accuracy
    );
    assert!(
        wo_sem.accuracy < wo_str.accuracy,
        "on ZH-EN the semantic feature must matter more than string: {} vs {}",
        wo_sem.accuracy,
        wo_str.accuracy
    );
}

#[test]
fn string_feature_matters_on_close_language_pair() {
    // Paper Table V, EN-FR column: removing the string feature costs
    // accuracy on a closely-related language pair. (The stricter claim —
    // string mattering *more* than semantics — holds at scale 1.0 but is
    // noisy on the tiny CI-sized split, so the integration test asserts
    // the direction only; EXPERIMENTS.md records the full-scale ordering.)
    let task = DatasetTask::from_preset(Preset::SrprsEnFr, 0.3, 32);
    let cfg = tiny_cfg();
    let features = FeatureSet::compute_all(&task.input(), &cfg);
    let full = run_with_features(&task.dataset.pair, &features, &cfg);
    let wo_str = run_with_features(&task.dataset.pair, &features, &cfg.clone().without_string());
    assert!(
        wo_str.accuracy < full.accuracy,
        "removing string must hurt EN-FR: w/o string {} vs full {}",
        wo_str.accuracy,
        full.accuracy
    );
}

#[test]
fn adaptive_fusion_weights_follow_language_distance() {
    // The textual-stage weights should favour semantics on distant pairs
    // and string on close/mono pairs.
    let distant = tiny_task(Preset::Dbp15kZhEn);
    let cfg = tiny_cfg();
    let f = FeatureSet::compute_all(&distant.input(), &cfg);
    let out = run_with_features(&distant.dataset.pair, &f, &cfg);
    let distant_weights = out.textual_fusion.expect("textual stage ran").weights;
    assert!(
        distant_weights[0] > distant_weights[1],
        "ZH-EN textual weights should favour semantics: {distant_weights:?}"
    );

    let mono = tiny_task(Preset::SrprsDbpYg);
    let f = FeatureSet::compute_all(&mono.input(), &cfg);
    let out = run_with_features(&mono.dataset.pair, &f, &cfg);
    let mono_weights = out.textual_fusion.expect("textual stage ran").weights;
    assert!(
        mono_weights[1] >= mono_weights[0] - 0.3,
        "mono-lingual textual weights should not bury the string feature: {mono_weights:?}"
    );
}

#[test]
fn lr_weighting_is_competitive_but_not_better_than_adaptive() {
    // §VII-E: the LR baseline is close to (but not better than) adaptive
    // fusion. We assert the weaker, robust direction: LR does not beat
    // adaptive by a wide margin.
    let task = tiny_task(Preset::SrprsEnFr);
    let cfg = tiny_cfg();
    let features = FeatureSet::compute_all(&task.input(), &cfg);
    let adaptive = run_with_features(&task.dataset.pair, &features, &cfg);
    let lr = run_with_features(
        &task.dataset.pair,
        &features,
        &cfg.clone().with_lr_weighting(ceaff::LrConfig::default()),
    );
    assert!(
        lr.accuracy <= adaptive.accuracy + 0.05,
        "LR {} should not significantly beat adaptive {}",
        lr.accuracy,
        adaptive.accuracy
    );
    assert!(lr.accuracy > 0.3, "LR should still work: {}", lr.accuracy);
}

#[test]
fn hungarian_and_stable_agree_on_easy_instances() {
    let task = tiny_task(Preset::SrprsDbpWd);
    let mut cfg = tiny_cfg();
    let features = FeatureSet::compute_all(&task.input(), &cfg);
    let stable = run_with_features(&task.dataset.pair, &features, &cfg);
    cfg.matcher = MatcherKind::Hungarian;
    let hungarian = run_with_features(&task.dataset.pair, &features, &cfg);
    assert!(
        (stable.accuracy - hungarian.accuracy).abs() < 0.1,
        "stable {} vs hungarian {}",
        stable.accuracy,
        hungarian.accuracy
    );
    // §VI: Hungarian maximises total utility.
    assert!(
        hungarian.matching.total_weight(&hungarian.fused)
            >= stable.matching.total_weight(&stable.fused) - 1e-4
    );
}
