//! End-to-end telemetry: a full pipeline run with an active event stream
//! must trace every stage the ISSUE's observability story names — GCN
//! epoch losses, adaptive-fusion weights, matcher counters — and the
//! JSON-lines sink must serialize the same stream losslessly.

use ceaff::prelude::*;
use ceaff::telemetry::{EventKind, InMemorySink, JsonLinesSink, TraceEvent};
use std::sync::Arc;

fn tiny_cfg() -> CeaffConfig {
    let mut cfg = CeaffConfig::default();
    cfg.gcn.dim = 16;
    cfg.gcn.epochs = 25;
    cfg.embed_dim = 32;
    cfg
}

#[test]
fn run_trace_covers_gcn_fusion_and_matcher() {
    let task = DatasetTask::from_preset(Preset::SrprsDbpWd, 0.1, 32);
    let sink = Arc::new(InMemorySink::default());
    let input = task
        .input()
        .with_telemetry(Telemetry::with_sink(sink.clone()));
    let cfg = tiny_cfg();
    let out = try_run(&input, &cfg).expect("pipeline runs");

    // Stage timings for every phase of the run.
    for stage in ["gcn", "semantic", "string", "fusion", "matcher"] {
        assert!(
            out.trace.stage_seconds(stage).is_some(),
            "missing stage '{stage}': {:?}",
            out.trace.stages
        );
    }

    // GCN training streamed one loss gauge per epoch.
    let losses: Vec<&TraceEvent> = out
        .trace
        .events_of(EventKind::Gauge, "gcn")
        .filter(|e| e.name == "epoch_loss")
        .collect();
    assert_eq!(losses.len(), cfg.gcn.epochs);
    assert!(losses.iter().all(|e| e.value.is_finite()));
    // Steps are the epoch indices, in order.
    let steps: Vec<u64> = losses.iter().filter_map(|e| e.step).collect();
    assert_eq!(steps, (0..cfg.gcn.epochs as u64).collect::<Vec<_>>());

    // Adaptive fusion gauged its chosen weights and counted confident
    // correspondences.
    let weight_events: Vec<&TraceEvent> = out
        .trace
        .events_of(EventKind::Gauge, "fusion")
        .filter(|e| e.name.ends_with("_weight"))
        .collect();
    assert!(!weight_events.is_empty(), "fusion weights must be gauged");
    let weight_sum: f64 = weight_events
        .iter()
        .filter(|e| e.name == "textual_weight")
        .map(|e| e.value)
        .sum();
    assert!(
        (weight_sum - 1.0).abs() < 1e-3,
        "textual weights should form a simplex: {weight_sum}"
    );
    assert!(out
        .trace
        .counter("fusion", "confident_candidates")
        .is_some());

    // The matcher reported its work.
    let iterations = out
        .trace
        .counter("matcher", "iterations")
        .expect("matcher iterations counted");
    assert!(iterations > 0);

    // The sink saw exactly the events the trace kept, in sequence order.
    let streamed = sink.snapshot();
    assert_eq!(streamed.len(), out.trace.events.len());
    assert!(streamed.windows(2).all(|w| w[0].seq < w[1].seq));
}

#[test]
fn jsonl_sink_round_trips_at_least_three_event_kinds() {
    let dir = std::env::temp_dir().join(format!("ceaff-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("trace.jsonl");

    let task = DatasetTask::from_preset(Preset::SrprsDbpWd, 0.1, 32);
    let sink = JsonLinesSink::create(&path).expect("create trace file");
    let input = task
        .input()
        .with_telemetry(Telemetry::with_sink(Arc::new(sink)));
    let out = try_run(&input, &tiny_cfg()).expect("pipeline runs");

    let text = std::fs::read_to_string(&path).expect("read trace file");
    let events: Vec<TraceEvent> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("valid JSONL event"))
        .collect();
    assert_eq!(events.len(), out.trace.events.len());

    // The acceptance bar: at least three distinct kinds of observability
    // in one default run — stage timings (Span), GCN epoch losses (Gauge)
    // and matcher/fusion counters (Counter).
    assert!(events
        .iter()
        .any(|e| e.kind == EventKind::Span && e.stage == "gcn"));
    assert!(events
        .iter()
        .any(|e| e.kind == EventKind::Gauge && e.name == "epoch_loss"));
    assert!(events.iter().any(|e| e.kind == EventKind::Counter));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disabled_telemetry_still_times_stages_but_streams_nothing() {
    let task = DatasetTask::from_preset(Preset::SrprsDbpWd, 0.1, 32);
    let out = try_run(&task.input(), &tiny_cfg()).expect("pipeline runs");
    assert!(out.trace.total_seconds() > 0.0);
    assert!(out.trace.events.is_empty());
    assert!(out.trace.counter("matcher", "iterations").is_some());
}
