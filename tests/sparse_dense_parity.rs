//! Sparse/dense parity on *real* fused matrices: a complete
//! `SparseTopK` (`k >= targets`) must be indistinguishable from the dense
//! matrix it was built from — the determinism contract that lets the
//! blocked candidate pipeline claim the dense path's semantics.

use ceaff::matching::{Greedy, GreedyOneToOne, Hungarian, Matcher, StableMarriage};
use ceaff::prelude::*;
use ceaff::sim::{csls_adjusted, csls_adjusted_sparse};

fn fused_dense(preset: Preset) -> ceaff::sim::SimilarityMatrix {
    let task = DatasetTask::from_preset(preset, 0.1, 32);
    let mut cfg = CeaffConfig::default();
    cfg.gcn.dim = 16;
    cfg.gcn.epochs = 25;
    let out = ceaff::try_run(&task.input(), &cfg).expect("pipeline runs");
    out.fused.into_dense()
}

#[test]
fn complete_sparse_store_reproduces_dense_matchers_bitwise_at_any_thread_count() {
    let m = fused_dense(Preset::SrprsEnDe);
    let complete = SimStore::Sparse(SparseTopK::from_dense(&m, m.targets()));
    let matchers: [(&str, &dyn Matcher); 4] = [
        ("stable-marriage", &StableMarriage),
        ("hungarian", &Hungarian),
        ("greedy", &Greedy),
        ("greedy-1to1", &GreedyOneToOne),
    ];
    // The dense reference, computed once outside any thread override.
    let reference: Vec<_> = matchers.iter().map(|(_, mm)| mm.matching(&m)).collect();
    for threads in [1usize, 2, 8] {
        ceaff_parallel::with_threads(threads, || {
            for ((name, mm), exact) in matchers.iter().zip(&reference) {
                let sparse = mm.matching_store(&complete);
                assert_eq!(
                    sparse.pairs(),
                    exact.pairs(),
                    "{name} diverged on a complete sparse store at {threads} thread(s)"
                );
            }
        });
    }
}

#[test]
fn truncated_sparse_store_keeps_matchers_one_to_one() {
    // Not a parity claim — with k < n the stores differ by design — but
    // the structural invariants must survive truncation.
    let m = fused_dense(Preset::SrprsEnDe);
    let store = SimStore::Sparse(SparseTopK::from_dense(&m, 10));
    for mm in [&StableMarriage as &dyn Matcher, &Hungarian, &GreedyOneToOne] {
        let matching = mm.matching_store(&store);
        assert!(matching.is_one_to_one());
        assert!(!matching.pairs().is_empty());
    }
}

#[test]
fn csls_on_complete_sparse_matches_dense_on_kept_entries() {
    let m = fused_dense(Preset::SrprsEnFr);
    let sp = SparseTopK::from_dense(&m, m.targets());
    for k in [1usize, 5, 10] {
        let dense = csls_adjusted(&m, k);
        let sparse = csls_adjusted_sparse(&sp, k);
        assert_eq!(sparse.nnz(), m.sources() * m.targets(), "store is complete");
        for i in 0..m.sources() {
            let (cols, scores) = sparse.row_entries(i);
            for (&c, &v) in cols.iter().zip(scores) {
                let d = dense.get(i, c as usize);
                // The neighbourhood means may differ in f32 summation
                // order (dense uses an unstable top-k partition), so the
                // contract is approximate on values …
                assert!(
                    (v - d).abs() <= 1e-5 * d.abs().max(1.0),
                    "csls(k={k}) diverged at ({i}, {c}): sparse {v} vs dense {d}"
                );
            }
        }
    }
}

#[test]
fn csls_on_truncated_sparse_touches_only_stored_cells() {
    let m = fused_dense(Preset::SrprsEnFr);
    let sp = SparseTopK::from_dense(&m, 10);
    let adjusted = csls_adjusted_sparse(&sp, 10);
    assert_eq!(adjusted.nnz(), sp.nnz());
    for i in 0..sp.sources() {
        let (before, _) = sp.row_entries(i);
        let (after, _) = adjusted.row_entries(i);
        let mut b: Vec<u32> = before.to_vec();
        let mut a: Vec<u32> = after.to_vec();
        b.sort_unstable();
        a.sort_unstable();
        assert_eq!(a, b, "row {i}: a non-candidate appeared or vanished");
    }
}
