//! Integration tests over the baseline suite: every method runs end to end
//! on a shared benchmark, produces well-formed matrices, and the paper's
//! group-level orderings hold.

use ceaff::baselines::*;
use ceaff::prelude::*;

fn task() -> DatasetTask {
    DatasetTask::from_preset(Preset::Dbp15kFrEn, 0.12, 32)
}

/// All eleven baselines with debug-CI-sized training budgets.
fn all_methods() -> Vec<Box<dyn AlignmentMethod>> {
    let transe = TranseConfig {
        dim: 32,
        epochs: 120,
        ..TranseConfig::default()
    };
    let gcn = ceaff::GcnConfig {
        dim: 16,
        epochs: 30,
        ..ceaff::GcnConfig::default()
    };
    vec![
        Box::new(MTransE {
            transe,
            ..MTransE::default()
        }),
        Box::new(IpTransE {
            transe,
            ..IpTransE::default()
        }),
        Box::new(BootEa {
            transe,
            ..BootEa::default()
        }),
        Box::new(RsnLite {
            config: RsnLiteConfig {
                dim: 32,
                epochs: 1,
                ..RsnLiteConfig::default()
            },
        }),
        Box::new(MuGnnLite { gcn }),
        Box::new(NaeaLite {
            gcn,
            ..NaeaLite::default()
        }),
        Box::new(Jape {
            transe,
            ..Jape::default()
        }),
        Box::new(GcnAlign {
            gcn,
            ..GcnAlign::default()
        }),
        Box::new(RdgcnLite {
            gcn,
            ..RdgcnLite::default()
        }),
        Box::new(GmAlignLite::default()),
        Box::new(MultiKeLite {
            transe,
            ..MultiKeLite::default()
        }),
    ]
}

#[test]
fn every_baseline_runs_and_produces_well_formed_matrices() {
    let task = task();
    let input = task.baseline_input();
    let n = task.dataset.pair.test_pairs().len();
    let mut names = std::collections::HashSet::new();
    for method in all_methods() {
        let m = method.align(&input);
        assert_eq!(m.sources(), n, "{}: wrong row count", method.name());
        assert_eq!(m.targets(), n, "{}: wrong column count", method.name());
        // Scores must be finite.
        for i in 0..n.min(10) {
            for &v in m.row(i) {
                assert!(v.is_finite(), "{}: non-finite score", method.name());
            }
        }
        assert!(names.insert(method.name()), "duplicate method name");
    }
    assert_eq!(names.len(), 11);
}

#[test]
fn name_based_methods_beat_structure_only_methods_when_names_help() {
    // The paper's group-level story (Tables III/IV): RDGCN/GM-Align
    // (name-initialised) clearly outperform the structure-only group when
    // entity names carry signal.
    let task = task();
    let input = task.baseline_input();
    let gcn = ceaff::GcnConfig {
        dim: 16,
        epochs: 30,
        ..ceaff::GcnConfig::default()
    };
    let rdgcn = evaluate(
        &RdgcnLite {
            gcn,
            ..RdgcnLite::default()
        },
        &input,
    );
    let gm = evaluate(&GmAlignLite::default(), &input);
    let mtranse = evaluate(
        &MTransE {
            transe: TranseConfig {
                dim: 32,
                epochs: 120,
                ..TranseConfig::default()
            },
            ..MTransE::default()
        },
        &input,
    );
    assert!(
        rdgcn.accuracy > mtranse.accuracy,
        "RDGCN {} must beat MTransE {}",
        rdgcn.accuracy,
        mtranse.accuracy
    );
    assert!(
        gm.accuracy > mtranse.accuracy,
        "GM-Align {} must beat MTransE {}",
        gm.accuracy,
        mtranse.accuracy
    );
}

#[test]
fn ceaff_beats_every_baseline_on_a_close_lingual_pair() {
    // The paper's headline claim (Tables III/IV): CEAFF consistently
    // outperforms all baselines.
    let task = task();
    let input = task.baseline_input();
    let mut cfg = CeaffConfig::default();
    cfg.gcn.dim = 16;
    cfg.gcn.epochs = 30;
    let ceaff_out = ceaff::try_run(&task.input(), &cfg).expect("pipeline runs");
    for method in all_methods() {
        let res = evaluate(method.as_ref(), &input);
        assert!(
            ceaff_out.accuracy >= res.accuracy,
            "CEAFF {} lost to {} at {}",
            ceaff_out.accuracy,
            res.method,
            res.accuracy
        );
    }
}

#[test]
fn structure_only_methods_degrade_on_sparse_real_life_kgs() {
    // §VII-B: "the overall performance on SRPRS are worse than DBP15K, as
    // the KGs in DBP15K are much denser".
    let dense = DatasetTask::from_preset(Preset::Dbp15kFrEn, 0.12, 32);
    let sparse = DatasetTask::from_preset(Preset::SrprsEnFr, 0.12, 32);
    let transe = TranseConfig {
        dim: 32,
        epochs: 150,
        ..TranseConfig::default()
    };
    let method = BootEa {
        transe,
        ..BootEa::default()
    };
    let on_dense = evaluate(&method, &dense.baseline_input());
    let on_sparse = evaluate(&method, &sparse.baseline_input());
    assert!(
        on_dense.accuracy > on_sparse.accuracy,
        "BootEA should degrade on sparse KGs: dense {} vs sparse {}",
        on_dense.accuracy,
        on_sparse.accuracy
    );
}
